"""Row-to-sentence textual encoder."""

from __future__ import annotations

import random
from collections.abc import Mapping, Sequence
from dataclasses import dataclass

import numpy as np

from repro.frame.table import Table


@dataclass(frozen=True)
class EncoderConfig:
    """Textual-encoding options.

    Parameters
    ----------
    permute_features:
        When true (GReaT's default), the feature order of each encoded row is
        randomly permuted so the model does not overfit to column position.
    pair_separator / key_value_separator:
        The literal strings between ``column: value`` pairs and between a
        column name and its value.  The defaults reproduce the paper's
        ``"Name: Grace, Lunch: 1"`` format.
    missing_token:
        Surface form used for missing values.
    """

    permute_features: bool = True
    pair_separator: str = ", "
    key_value_separator: str = ": "
    missing_token: str = "None"
    seed: int = 0


class TextualEncoder:
    """Encode table rows as 'Column: value' sentences."""

    def __init__(self, config: EncoderConfig | None = None):
        self.config = config or EncoderConfig()
        self._rng = random.Random(self.config.seed)

    def reseed(self, seed: int) -> None:
        """Reset the permutation stream (one stream per trial in the harness)."""
        self._rng = random.Random(seed)

    def encode_value(self, value) -> str:
        """Render a single cell value as text."""
        if value is None:
            return self.config.missing_token
        if isinstance(value, float) and value.is_integer():
            return str(int(value))
        return str(value)

    def encode_row(self, row: Mapping, columns: Sequence[str] | None = None,
                   permute: bool | None = None) -> str:
        """Encode one row dict as a sentence."""
        names = list(columns) if columns is not None else list(row.keys())
        do_permute = self.config.permute_features if permute is None else permute
        if do_permute:
            names = list(names)
            self._rng.shuffle(names)
        pairs = [
            "{}{}{}".format(name, self.config.key_value_separator, self.encode_value(row.get(name)))
            for name in names
        ]
        return self.config.pair_separator.join(pairs)

    def _column_pairs(self, table: Table, name: str) -> list[str]:
        """Per-row ``'name: value'`` strings for one column.

        Each distinct value is rendered once (categories come back in
        first-seen order from ``factorize``) and the per-row strings are a
        single object-array gather; code ``-1`` lands on the trailing
        missing-token slot.
        """
        column = table.column(name)
        prefix = name + self.config.key_value_separator
        codes, categories = column.factorize()
        rendered = np.asarray(
            [prefix + self.encode_value(value) for value in categories]
            + [prefix + self.config.missing_token],
            dtype=object,
        )
        return rendered[codes].tolist()

    def encode_table(self, table: Table, permute: bool | None = None) -> list[str]:
        """Encode every row of a table; one sentence per row.

        Works column-wise: each column's ``'name: value'`` pair strings are
        rendered once per distinct value (via ``factorize``) and gathered per
        row, then joined — permuted rows draw the same shuffle sequence from
        the encoder RNG as the per-row path, so output is unchanged.
        """
        names = table.column_names
        if not names:
            return ["" for _ in range(table.num_rows)]
        separator = self.config.pair_separator
        pairs_by_column = {name: self._column_pairs(table, name) for name in names}
        do_permute = self.config.permute_features if permute is None else permute
        if not do_permute:
            return [separator.join(row_pairs)
                    for row_pairs in zip(*(pairs_by_column[name] for name in names))]
        sentences: list[str] = []
        for index in range(table.num_rows):
            permuted = list(names)
            self._rng.shuffle(permuted)
            sentences.append(separator.join(
                pairs_by_column[name][index] for name in permuted))
        return sentences

    def conditional_prompt(self, partial_row: Mapping, columns: Sequence[str] | None = None) -> str:
        """Encode a partial row as a generation prompt.

        REaLTabFormer-style child generation conditions on the sampled parent
        observation; the prompt is the encoded parent columns followed by the
        pair separator so the model continues with the remaining columns.
        """
        sentence = self.encode_row(partial_row, columns=columns, permute=False)
        return sentence + self.config.pair_separator

    def conditional_prompts(self, partial_rows: Sequence[Mapping],
                            columns: Sequence[str] | None = None) -> list[str]:
        """Encode a batch of partial rows as generation prompts.

        The batched synthesis path conditions whole prompt groups at once
        (e.g. every child of every sampled parent); this is the one-call
        counterpart of :meth:`conditional_prompt`.
        """
        return [self.conditional_prompt(row, columns=columns) for row in partial_rows]
