"""GReaT-style textual encoding of table rows.

The textual encoder turns a row ``{"Name": "Grace", "Lunch": 1, ...}`` into
the sentence ``"Name: Grace, Lunch: 1, ..."`` (Fig. 2), optionally permuting
the feature order per row as the original GReaT does to remove positional
bias.  The decoder parses generated sentences back into rows against a known
schema, rejecting sentences that do not cover the schema or contain values of
the wrong type.
"""

from repro.textenc.encoder import EncoderConfig, TextualEncoder
from repro.textenc.decoder import DecodeError, TextualDecoder
from repro.textenc.corpus import CorpusBuilder

__all__ = [
    "TextualEncoder",
    "EncoderConfig",
    "TextualDecoder",
    "DecodeError",
    "CorpusBuilder",
]
