"""Sentence-to-row textual decoder.

Generated sentences are free text; the decoder parses them back into rows
against a known schema, coercing values to the column dtypes observed in the
training table and rejecting sentences that are missing columns or contain
values that cannot be coerced.  GReaT applies the same filter: only sentences
that round-trip to valid rows become synthetic observations.
"""

from __future__ import annotations

import re
from collections.abc import Mapping, Sequence

from repro.frame.table import Table


class DecodeError(ValueError):
    """A generated sentence could not be parsed into a valid row."""


class TextualDecoder:
    """Parse 'Column: value' sentences back into row dicts."""

    def __init__(self, columns: Sequence[str], dtypes: Mapping[str, str] | None = None,
                 pair_separator: str = ", ", key_value_separator: str = ": ",
                 missing_token: str = "None"):
        if not columns:
            raise ValueError("decoder requires at least one column")
        self.columns = list(columns)
        self.dtypes = dict(dtypes or {})
        self.pair_separator = pair_separator
        self.key_value_separator = key_value_separator
        self.missing_token = missing_token
        # column names may themselves contain the separator characters, so the
        # parser anchors on known column names rather than splitting blindly.
        escaped = sorted((re.escape(name) for name in self.columns), key=len, reverse=True)
        self._pair_pattern = re.compile(
            r"(?P<column>" + "|".join(escaped) + r")\s*"
            + re.escape(key_value_separator.strip() or ":")
            + r"\s*(?P<value>.*?)(?=(?:,\s*(?:" + "|".join(escaped) + r")\s*"
            + re.escape(key_value_separator.strip() or ":") + r")|$)",
            re.DOTALL,
        )
        # the validity filter decodes each candidate sentence in full; the
        # last successful decode is memoised so the accept-then-decode
        # pattern (is_valid followed by decode_row) parses only once
        self._row_memo: tuple[str, dict] | None = None

    @classmethod
    def for_table(cls, table: Table, **kwargs) -> "TextualDecoder":
        """Build a decoder whose schema and dtypes come from a training table."""
        return cls(table.column_names, dtypes=table.dtypes(), **kwargs)

    # -- parsing -------------------------------------------------------------------

    def parse_pairs(self, sentence: str) -> dict[str, str]:
        """Extract raw ``column -> value text`` pairs from a sentence."""
        pairs: dict[str, str] = {}
        for match in self._pair_pattern.finditer(sentence):
            column = match.group("column")
            value = match.group("value").strip().rstrip(",").strip()
            if column not in pairs:  # first occurrence wins
                pairs[column] = value
        return pairs

    def coerce(self, column: str, text: str):
        """Coerce a value string to the column's dtype; raise DecodeError on failure."""
        if text == self.missing_token or text == "":
            return None
        dtype = self.dtypes.get(column, "str")
        if dtype == "int":
            try:
                return int(text)
            except ValueError:
                try:
                    as_float = float(text)
                except ValueError:
                    raise DecodeError(
                        "column {!r} expects an integer, got {!r}".format(column, text)
                    ) from None
                if as_float.is_integer():
                    return int(as_float)
                raise DecodeError("column {!r} expects an integer, got {!r}".format(column, text))
        if dtype == "float":
            try:
                return float(text)
            except ValueError:
                raise DecodeError(
                    "column {!r} expects a number, got {!r}".format(column, text)
                ) from None
        return text

    def decode_row(self, sentence: str, require_all: bool = True) -> dict:
        """Parse a sentence into a full row dict.

        Raises :class:`DecodeError` when columns are missing (and
        *require_all* is true) or a value cannot be coerced.
        """
        if require_all:
            memo = self._row_memo
            if memo is not None and memo[0] == sentence:
                return dict(memo[1])
        pairs = self.parse_pairs(sentence)
        row: dict = {}
        for column in self.columns:
            if column not in pairs:
                if require_all:
                    raise DecodeError("sentence is missing column {!r}: {!r}".format(column, sentence))
                row[column] = None
                continue
            row[column] = self.coerce(column, pairs[column])
        if require_all:
            self._row_memo = (sentence, dict(row))
        return row

    def is_valid(self, sentence: str) -> bool:
        """True when the sentence parses into a complete, type-correct row."""
        try:
            self.decode_row(sentence, require_all=True)
        except DecodeError:
            return False
        return True

    def decode_table(self, sentences: Sequence[str], skip_invalid: bool = True) -> Table:
        """Parse many sentences into a table, optionally skipping invalid ones."""
        records = []
        for sentence in sentences:
            try:
                records.append(self.decode_row(sentence, require_all=True))
            except DecodeError:
                if skip_invalid:
                    continue
                raise
        return Table.from_records(records, columns=self.columns)
