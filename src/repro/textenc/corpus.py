"""Corpus construction for fine-tuning.

A thin orchestration layer: given a table, produce the textual-encoded corpus
(optionally with several permutation passes, which is GReaT's data
augmentation) and keep the matching decoder so synthetic sentences can be
parsed back against the same schema.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.frame.table import Table
from repro.textenc.decoder import TextualDecoder
from repro.textenc.encoder import EncoderConfig, TextualEncoder


@dataclass
class CorpusBuilder:
    """Build the fine-tuning corpus and matching decoder for a table."""

    encoder: TextualEncoder = field(default_factory=TextualEncoder)
    permutation_passes: int = 2

    def __post_init__(self):
        if self.permutation_passes < 1:
            raise ValueError("permutation_passes must be at least 1")

    def build(self, table: Table) -> tuple[list[str], TextualDecoder]:
        """Return ``(corpus, decoder)`` for the table.

        The corpus contains ``permutation_passes`` encodings of every row.
        The first pass keeps the natural column order so the model always sees
        at least one canonical ordering; later passes permute (when the
        encoder's config enables permutation).
        """
        if table.num_rows == 0 or table.num_columns == 0:
            raise ValueError("cannot build a corpus from an empty table")
        corpus: list[str] = []
        corpus.extend(self.encoder.encode_table(table, permute=False))
        for _ in range(self.permutation_passes - 1):
            corpus.extend(self.encoder.encode_table(table))
        decoder = TextualDecoder.for_table(
            table,
            pair_separator=self.encoder.config.pair_separator,
            key_value_separator=self.encoder.config.key_value_separator,
            missing_token=self.encoder.config.missing_token,
        )
        return corpus, decoder
