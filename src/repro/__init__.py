"""GReaTER reproduction library.

This package reproduces the system described in *GReaTER: Generate Realistic
Tabular data after data Enhancement and Reduction* (ICDE 2025).  It contains:

* ``repro.frame`` — a lightweight column-oriented tabular substrate (the role
  pandas plays in the original pipeline).
* ``repro.stats`` — the statistical toolkit the paper relies on (Cramer's V,
  Kolmogorov-Smirnov test, Wasserstein distance, hierarchical clustering, ...).
* ``repro.llm`` — an offline language-model substrate standing in for the
  GPT-2 backbone used by GReaT / REaLTabFormer.
* ``repro.textenc`` — GReaT-style textual encoding of table rows.
* ``repro.great`` — the single-table GReaT baseline synthesizer.
* ``repro.relational`` — contextual-variable parent extraction and the
  parent/child (REaLTabFormer-style) synthesizer.
* ``repro.enhancement`` — the Data Semantic Enhancement System (Sec. 3.2).
* ``repro.connecting`` — the Cross-table Connecting Method (Sec. 3.3).
* ``repro.pipelines`` — end-to-end GReaTER, DEREC and direct-flattening
  pipelines.
* ``repro.evaluation`` — the distribution-of-distribution fidelity metrics
  (Algorithm 1) and the ablation reports.
* ``repro.datasets`` — the DIGIX-like synthetic dataset generator and the toy
  tables used in the paper's figures.
* ``repro.store`` — the artifact store: a binary columnar table format and
  versioned, pickle-free bundles for fitted synthesizers and pipelines.
* ``repro.serving`` — the synthesis serving layer: load a bundle once and
  answer sampling requests (sharded, coalesced, cached) without retraining.
"""

from repro.frame import Table, Column
from repro.pipelines import (
    FittedPipeline,
    GReaTERPipeline,
    DERECPipeline,
    DirectFlattenPipeline,
    PipelineConfig,
)
from repro.enhancement import (
    DataSemanticEnhancer,
    DifferentiabilityTransform,
    UnderstandabilityTransform,
    MappingSystem,
)
from repro.connecting import CrossTableConnector, ConnectorConfig
from repro.evaluation import FidelityEvaluator, FidelityReport

__version__ = "1.0.0"

__all__ = [
    "Table",
    "Column",
    "FittedPipeline",
    "GReaTERPipeline",
    "DERECPipeline",
    "DirectFlattenPipeline",
    "PipelineConfig",
    "DataSemanticEnhancer",
    "DifferentiabilityTransform",
    "UnderstandabilityTransform",
    "MappingSystem",
    "CrossTableConnector",
    "ConnectorConfig",
    "FidelityEvaluator",
    "FidelityReport",
    "__version__",
]
