"""Relational schema graph: infer multi-table schemas, synthesize whole databases.

The subsystem has three layers:

* :mod:`repro.schema.graph` — the typed, JSON-serializable
  :class:`SchemaGraph` (tables, primary keys, foreign-key edges) with cycle
  detection and a deterministic topological order;
* :mod:`repro.schema.inference` — :func:`infer_schema`: primary keys from
  uniqueness/coverage heuristics, foreign keys from an
  inclusion-dependency scan over the columnar backend;
* :mod:`repro.schema.multitable` — :class:`MultiTableSynthesizer`: one
  GReaT/parent-child style synthesizer per root table and per foreign-key
  edge, sampling referentially-intact synthetic databases of arbitrary
  depth from one seed.
"""

from repro.schema.graph import (
    ForeignKey,
    SchemaCycleError,
    SchemaGraph,
    SchemaGraphError,
    TableSchema,
)
from repro.schema.inference import (
    InferenceConfig,
    infer_primary_key,
    infer_schema,
    infer_schema_from_directory,
    load_tables,
)
from repro.schema.multitable import (
    EdgeSynthesizer,
    MultiTableConfig,
    MultiTableSynthesizer,
)

__all__ = [
    "EdgeSynthesizer",
    "ForeignKey",
    "InferenceConfig",
    "MultiTableConfig",
    "MultiTableSynthesizer",
    "SchemaCycleError",
    "SchemaGraph",
    "SchemaGraphError",
    "TableSchema",
    "infer_primary_key",
    "infer_schema",
    "infer_schema_from_directory",
    "load_tables",
]
