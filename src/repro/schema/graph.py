"""Typed relational schema graph.

A :class:`SchemaGraph` describes a whole database: one :class:`TableSchema`
per table (column names, logical dtypes and the primary key) plus the
:class:`ForeignKey` edges that connect them.  The graph is the contract
between schema inference (:mod:`repro.schema.inference`), the multi-table
synthesizer (:mod:`repro.schema.multitable`) and the artifact store: it is
JSON-serializable through the typed codec (:meth:`SchemaGraph.to_json` /
:meth:`SchemaGraph.from_json`), validates itself against concrete tables,
detects reference cycles and yields a deterministic topological order
(parents before children) that every consumer — fitting, sampling, serving
— walks identically.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.frame.table import Table


class SchemaGraphError(RuntimeError):
    """The schema graph is malformed or inconsistent with the data."""


class SchemaCycleError(SchemaGraphError):
    """The foreign-key edges contain a reference cycle."""


@dataclass(frozen=True)
class ForeignKey:
    """One directed edge: ``table.column`` references ``parent_table.parent_column``.

    ``coverage`` records the inclusion fraction observed at inference time
    (the share of distinct non-missing child values present in the parent
    key column); hand-written graphs can leave it at 1.0.
    """

    table: str
    column: str
    parent_table: str
    parent_column: str
    coverage: float = 1.0

    @property
    def edge_name(self) -> str:
        """Stable human-readable label, used in bundles and reports."""
        return "{}.{}->{}.{}".format(self.table, self.column,
                                     self.parent_table, self.parent_column)

    def to_dict(self) -> dict:
        return {"table": self.table, "column": self.column,
                "parent_table": self.parent_table,
                "parent_column": self.parent_column,
                "coverage": float(self.coverage)}

    @classmethod
    def from_dict(cls, d: dict) -> "ForeignKey":
        return cls(table=d["table"], column=d["column"],
                   parent_table=d["parent_table"],
                   parent_column=d["parent_column"],
                   coverage=float(d.get("coverage", 1.0)))


@dataclass(frozen=True)
class TableSchema:
    """The typed shape of one table: ordered columns, dtypes, primary key."""

    name: str
    columns: tuple[str, ...]
    dtypes: tuple[str, ...]
    primary_key: str | None = None

    def __post_init__(self):
        if len(self.columns) != len(self.dtypes):
            raise SchemaGraphError(
                "table {!r} has {} columns but {} dtypes".format(
                    self.name, len(self.columns), len(self.dtypes)))
        if len(set(self.columns)) != len(self.columns):
            raise SchemaGraphError("table {!r} has duplicate columns".format(self.name))
        if self.primary_key is not None and self.primary_key not in self.columns:
            raise SchemaGraphError(
                "primary key {!r} is not a column of table {!r}".format(
                    self.primary_key, self.name))

    @classmethod
    def from_table(cls, name: str, table: Table,
                   primary_key: str | None = None) -> "TableSchema":
        dtypes = table.dtypes()
        return cls(name=name, columns=tuple(table.column_names),
                   dtypes=tuple(dtypes[c] for c in table.column_names),
                   primary_key=primary_key)

    def dtype_of(self, column: str) -> str:
        try:
            return self.dtypes[self.columns.index(column)]
        except ValueError:
            raise SchemaGraphError(
                "table {!r} has no column {!r}".format(self.name, column)) from None

    def to_dict(self) -> dict:
        return {"name": self.name, "columns": list(self.columns),
                "dtypes": list(self.dtypes), "primary_key": self.primary_key}

    @classmethod
    def from_dict(cls, d: dict) -> "TableSchema":
        return cls(name=d["name"], columns=tuple(d["columns"]),
                   dtypes=tuple(d["dtypes"]), primary_key=d.get("primary_key"))


@dataclass(frozen=True)
class SchemaGraph:
    """A whole-database schema: tables plus foreign-key edges."""

    tables: tuple[TableSchema, ...]
    foreign_keys: tuple[ForeignKey, ...] = ()

    def __post_init__(self):
        names = [t.name for t in self.tables]
        if len(set(names)) != len(names):
            raise SchemaGraphError("duplicate table names in schema graph")
        by_name = {t.name: t for t in self.tables}
        seen_columns: set[tuple[str, str]] = set()
        for fk in self.foreign_keys:
            if fk.table not in by_name:
                raise SchemaGraphError("foreign key {} names unknown table {!r}".format(
                    fk.edge_name, fk.table))
            if fk.parent_table not in by_name:
                raise SchemaGraphError(
                    "foreign key {} names unknown parent table {!r}".format(
                        fk.edge_name, fk.parent_table))
            if fk.table == fk.parent_table:
                raise SchemaGraphError(
                    "self-referencing foreign key {} is not supported".format(fk.edge_name))
            # one generated value per key column: a foreign key sharing its
            # column with the table's primary key (1:1 extension tables) or
            # with another foreign key would be silently overwritten at
            # sampling time, breaking referential integrity
            if fk.column == by_name[fk.table].primary_key:
                raise SchemaGraphError(
                    "foreign key {} reuses the primary key column of {!r}; "
                    "1:1 extension keys are not supported".format(fk.edge_name, fk.table))
            if (fk.table, fk.column) in seen_columns:
                raise SchemaGraphError(
                    "column {}.{} carries more than one foreign key".format(
                        fk.table, fk.column))
            seen_columns.add((fk.table, fk.column))
            by_name[fk.table].dtype_of(fk.column)
            parent = by_name[fk.parent_table]
            parent.dtype_of(fk.parent_column)
            if parent.primary_key != fk.parent_column:
                raise SchemaGraphError(
                    "foreign key {} must reference the parent's primary key "
                    "({!r} has primary key {!r})".format(
                        fk.edge_name, fk.parent_table, parent.primary_key))

    # -- lookups -----------------------------------------------------------------

    @property
    def table_names(self) -> list[str]:
        return [t.name for t in self.tables]

    def table(self, name: str) -> TableSchema:
        for t in self.tables:
            if t.name == name:
                return t
        raise SchemaGraphError("schema graph has no table {!r}".format(name))

    def parents_of(self, name: str) -> list[ForeignKey]:
        """Foreign keys *out of* table *name* (its references to parents)."""
        return [fk for fk in self.foreign_keys if fk.table == name]

    def children_of(self, name: str) -> list[ForeignKey]:
        """Foreign keys *into* table *name* (its children's references)."""
        return [fk for fk in self.foreign_keys if fk.parent_table == name]

    def primary_parent(self, name: str) -> ForeignKey | None:
        """The edge that *generates* rows of table *name*.

        Tables with several foreign keys are grown along the first edge in
        deterministic ``(column, parent_table)`` order; the remaining keys
        are filled by sampling from the referenced parent's synthetic keys.
        """
        parents = sorted(self.parents_of(name),
                         key=lambda fk: (fk.column, fk.parent_table))
        return parents[0] if parents else None

    def roots(self) -> list[str]:
        """Tables with no foreign key, in topological (here: name) order."""
        return [name for name in sorted(self.table_names) if not self.parents_of(name)]

    def key_columns(self, name: str) -> list[str]:
        """The surrogate-key columns of *name*: its primary key + foreign keys."""
        schema = self.table(name)
        keys = [schema.primary_key] if schema.primary_key else []
        for fk in self.parents_of(name):
            if fk.column not in keys:
                keys.append(fk.column)
        return keys

    def feature_columns(self, name: str) -> list[str]:
        """The non-key columns of *name*, in schema order."""
        keys = set(self.key_columns(name))
        return [c for c in self.table(name).columns if c not in keys]

    # -- ordering ----------------------------------------------------------------

    def topological_order(self) -> list[str]:
        """Table names, parents before children, deterministically.

        Kahn's algorithm with a lexicographically sorted ready set, so the
        order is a pure function of the graph — every fit/sample/serve walk
        visits tables identically.  Raises :class:`SchemaCycleError` when
        the foreign keys contain a cycle.
        """
        remaining = {name: {fk.parent_table for fk in self.parents_of(name)}
                     for name in self.table_names}
        order: list[str] = []
        while remaining:
            ready = sorted(name for name, deps in remaining.items() if not deps)
            if not ready:
                raise SchemaCycleError(
                    "foreign keys form a reference cycle among tables {}".format(
                        sorted(remaining)))
            for name in ready:
                order.append(name)
                del remaining[name]
            for deps in remaining.values():
                deps.difference_update(ready)
        return order

    def depth_levels(self) -> list[list[str]]:
        """Topological order grouped into levels of mutually independent tables.

        Tables in one level share no ancestor/descendant relation given the
        previous levels, so they can be sampled concurrently with identical
        output (the serving layer's database sharding unit).
        """
        placed: dict[str, int] = {}
        levels: list[list[str]] = []
        for name in self.topological_order():
            level = 0
            for fk in self.parents_of(name):
                level = max(level, placed[fk.parent_table] + 1)
            placed[name] = level
            while len(levels) <= level:
                levels.append([])
            levels[level].append(name)
        return levels

    # -- validation against concrete tables --------------------------------------

    def validate_tables(self, tables: dict[str, Table]) -> None:
        """Check the concrete *tables* against this graph.

        Verifies that every schema table is present with the declared
        columns, that primary keys are unique and fully populated, and that
        every foreign-key value appears in its referenced key column.
        """
        for schema in self.tables:
            if schema.name not in tables:
                raise SchemaGraphError("missing table {!r}".format(schema.name))
            table = tables[schema.name]
            if tuple(table.column_names) != schema.columns:
                raise SchemaGraphError(
                    "table {!r} has columns {} but the schema declares {}".format(
                        schema.name, table.column_names, list(schema.columns)))
            if schema.primary_key is not None:
                column = table.column(schema.primary_key)
                if column.missing_count():
                    raise SchemaGraphError(
                        "primary key {}.{} has missing values".format(
                            schema.name, schema.primary_key))
                if column.nunique() != len(column):
                    raise SchemaGraphError(
                        "primary key {}.{} is not unique ({} rows, {} distinct)".format(
                            schema.name, schema.primary_key, len(column), column.nunique()))
        for fk in self.foreign_keys:
            parent_keys = set(tables[fk.parent_table].column(fk.parent_column).unique())
            child_values = [v for v in tables[fk.table].column(fk.column).unique()
                            if v is not None]
            dangling = [v for v in child_values if v not in parent_keys]
            if dangling:
                raise SchemaGraphError(
                    "foreign key {} has {} dangling value(s), e.g. {!r}".format(
                        fk.edge_name, len(dangling), dangling[0]))

    # -- JSON codec ---------------------------------------------------------------

    def to_dict(self) -> dict:
        return {"tables": [t.to_dict() for t in self.tables],
                "foreign_keys": [fk.to_dict() for fk in self.foreign_keys]}

    @classmethod
    def from_dict(cls, d: dict) -> "SchemaGraph":
        return cls(tables=tuple(TableSchema.from_dict(t) for t in d["tables"]),
                   foreign_keys=tuple(ForeignKey.from_dict(fk)
                                      for fk in d.get("foreign_keys", [])))

    def to_json(self) -> str:
        import json

        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "SchemaGraph":
        import json

        return cls.from_dict(json.loads(text))

    # -- reporting ----------------------------------------------------------------

    def describe(self) -> list[dict]:
        """One row per table, the shape the CLI prints."""
        order = self.topological_order()
        rows = []
        for name in order:
            schema = self.table(name)
            parents = sorted(self.parents_of(name), key=lambda fk: fk.column)
            rows.append({
                "table": name,
                "columns": len(schema.columns),
                "primary_key": schema.primary_key or "",
                "references": ", ".join(
                    "{}->{}.{}".format(fk.column, fk.parent_table, fk.parent_column)
                    for fk in parents),
                "children": len({fk.table for fk in self.children_of(name)}),
            })
        return rows
