"""Schema inference: discover primary and foreign keys from raw tables.

Given a directory (or dict) of tables, :func:`infer_schema` produces a
:class:`~repro.schema.graph.SchemaGraph` in two passes:

* **primary keys** — per table, the best column that is fully populated and
  unique on every row.  Candidates are ranked by a key-likeness heuristic
  (``id``-style names beat arbitrary unique columns, integer/string dtypes
  beat floats, leftmost wins ties), so the choice is deterministic.
* **foreign keys** — an inclusion-dependency scan over the columnar
  backend: a child column is a foreign-key candidate for a parent's primary
  key when its distinct non-missing values are covered by the parent's key
  set (``min_coverage``, default 1.0).  Pure inclusion over-matches badly —
  a binary flag is "included" in any integer key column — so a candidate
  must also *look* like a reference: either its name matches the parent
  (``user_id`` -> ``users.user_id``) or it uses a substantial fraction of
  the parent's keys (``min_unnamed_key_ratio``).  Each child column keeps
  only its best-scoring parent.

Both passes read distinct-value sets through ``Column.unique`` /
``Column.nunique``, which the typed storage backends serve from vectorized
factorizations.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.frame.table import Table
from repro.schema.graph import ForeignKey, SchemaGraph, SchemaGraphError, TableSchema


@dataclass(frozen=True)
class InferenceConfig:
    """Knobs of the schema-inference heuristics.

    ``min_coverage`` is the inclusion threshold: the fraction of a child
    column's distinct non-missing values that must appear in the parent key
    column.  ``min_unnamed_key_ratio`` guards the no-name-hint case: a
    column whose name does not resemble the parent only counts as a foreign
    key when its values use at least this fraction of the parent's keys.
    ``min_parent_rows`` skips degenerate parents whose key set is too small
    for inclusion to mean anything.
    """

    min_coverage: float = 1.0
    min_unnamed_key_ratio: float = 0.5
    min_parent_rows: int = 2

    def __post_init__(self):
        if not 0.0 < self.min_coverage <= 1.0:
            raise ValueError("min_coverage must be in (0, 1]")
        if not 0.0 <= self.min_unnamed_key_ratio <= 1.0:
            raise ValueError("min_unnamed_key_ratio must be in [0, 1]")
        if self.min_parent_rows < 1:
            raise ValueError("min_parent_rows must be at least 1")


#: dtypes that make plausible key columns; floats are excluded outright.
_KEY_DTYPES = ("int", "str")


def _name_key_score(column: str) -> int:
    """How much a column *name* looks like a key (2 id-style, 1 key-style, 0)."""
    lowered = column.lower()
    if lowered == "id" or lowered.endswith("_id") or lowered.endswith("id"):
        return 2
    if lowered.endswith("_key") or lowered.endswith("_code") or lowered == "key":
        return 1
    return 0


def _name_references(column: str, parent_table: str, parent_key: str) -> bool:
    """Does the child column *name* plausibly reference ``parent_table.parent_key``?"""
    lowered = column.lower()
    if lowered == parent_key.lower():
        return True
    stem = parent_table.lower().rstrip("s")  # "users" -> "user"
    return stem != "" and lowered.startswith(stem) and _name_key_score(column) > 0


def infer_primary_key(table: Table) -> str | None:
    """The most key-like fully-populated unique column of *table*, if any."""
    best: tuple | None = None
    for position, name in enumerate(table.column_names):
        column = table.column(name)
        if len(column) == 0 or column.missing_count():
            continue
        if column.dtype not in _KEY_DTYPES:
            continue
        if column.nunique() != len(column):
            continue
        # higher name score wins, then leftmost position
        rank = (-_name_key_score(name), position)
        if best is None or rank < best[0]:
            best = (rank, name)
    return best[1] if best else None


def _foreign_key_candidates(name: str, table: Table, primary_key: str | None,
                            parents: dict[str, tuple[Table, str]],
                            config: InferenceConfig) -> list[ForeignKey]:
    """Best foreign-key edge per column of *table* (inclusion + heuristics)."""
    edges: list[ForeignKey] = []
    for column_name in table.column_names:
        if column_name == primary_key:
            continue
        column = table.column(column_name)
        if column.dtype not in _KEY_DTYPES:
            continue
        distinct = [v for v in column.unique() if v is not None]
        if not distinct:
            continue
        best: tuple | None = None
        for parent_name in sorted(parents):
            if parent_name == name:
                continue
            parent_table, parent_key = parents[parent_name]
            key_column = parent_table.column(parent_key)
            if key_column.dtype != column.dtype:
                continue
            if len(key_column) < config.min_parent_rows:
                continue
            keys = set(key_column.unique())
            covered = sum(1 for v in distinct if v in keys)
            coverage = covered / len(distinct)
            if coverage < config.min_coverage:
                continue
            named = _name_references(column_name, parent_name, parent_key)
            key_ratio = covered / len(keys)
            if not named and key_ratio < config.min_unnamed_key_ratio:
                continue
            # prefer name-matched parents, then higher coverage, then the
            # parent whose key set the column uses most densely
            rank = (-int(named), -coverage, -key_ratio, parent_name)
            if best is None or rank < best[0]:
                best = (rank, ForeignKey(table=name, column=column_name,
                                         parent_table=parent_name,
                                         parent_column=parent_key,
                                         coverage=coverage))
        if best is not None:
            edges.append(best[1])
    return edges


def infer_schema(tables: dict[str, Table],
                 config: InferenceConfig | None = None) -> SchemaGraph:
    """Infer a :class:`SchemaGraph` (primary keys + foreign keys) from *tables*.

    Table order in the graph follows the (insertion) order of *tables*; the
    result is a pure function of the data and the config.  Raises
    :class:`SchemaGraphError` when the inferred edges contain a cycle —
    genuinely cyclic schemas must be described by hand with the offending
    edge removed.
    """
    config = config or InferenceConfig()
    if not tables:
        raise SchemaGraphError("cannot infer a schema from zero tables")
    primary_keys = {name: infer_primary_key(table) for name, table in tables.items()}
    parents = {name: (table, primary_keys[name])
               for name, table in tables.items() if primary_keys[name] is not None}
    foreign_keys: list[ForeignKey] = []
    for name, table in tables.items():
        foreign_keys.extend(_foreign_key_candidates(
            name, table, primary_keys[name], parents, config))
    graph = SchemaGraph(
        tables=tuple(TableSchema.from_table(name, table, primary_keys[name])
                     for name, table in tables.items()),
        foreign_keys=tuple(sorted(foreign_keys, key=lambda fk: fk.edge_name)),
    )
    graph.topological_order()  # surfaces cycles at inference time
    return graph


def load_tables(directory) -> dict[str, Table]:
    """Read every ``*.csv`` in *directory* as a table keyed by file stem."""
    from repro.frame.io import read_csv

    directory = Path(directory)
    if not directory.is_dir():
        raise SchemaGraphError("no such data directory: {}".format(directory))
    paths = sorted(directory.glob("*.csv"))
    if not paths:
        raise SchemaGraphError("no CSV files in {}".format(directory))
    return {path.stem: read_csv(path) for path in paths}


def infer_schema_from_directory(directory,
                                config: InferenceConfig | None = None) -> SchemaGraph:
    """:func:`infer_schema` over every CSV file in *directory*."""
    return infer_schema(load_tables(directory), config)
