"""Whole-database synthesis over a schema graph.

:class:`MultiTableSynthesizer` generalizes the parent/child pair of
:mod:`repro.relational.parent_child` to arbitrary acyclic multi-table
schemas: root tables get a plain GReaT synthesizer over their feature
columns, and every foreign-key edge gets an :class:`EdgeSynthesizer` — the
child's feature columns learned *conditioned on* the parent's feature
columns, plus the empirical children-per-parent distribution (zero-children
parents included).  Sampling walks the graph root-to-leaf and returns one
coherent database: every parent row gets fresh surrogate keys, every child
row carries its sampled parent's key, so depth > 2 (grandchildren),
multiple child tables per parent and standalone tables all come out
referentially intact from one seed.

Determinism is structural: each table's draws come from a seed derived
from ``(database seed, position in the deterministic topological order)``
via :func:`derive_seed`, and a table's output depends only on its own seed
and its parent's sampled rows — never on *when* it is sampled.  Sampling
tables of one depth level concurrently (the serving layer does) therefore
produces bit-identical output to the serial walk.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from pathlib import Path

from repro.frame.ops import value_counts
from repro.frame.table import Table
from repro.great.synthesizer import GReaTConfig, GReaTSynthesizer
from repro.llm.engine import derive_seed
from repro.schema.graph import ForeignKey, SchemaGraph, SchemaGraphError
from repro.schema.inference import InferenceConfig, infer_schema

#: Named sub-streams of a table's derived seed (see
#: :func:`repro.llm.engine.derive_seed`).
_TABLE_STREAM = 17   # (database seed, table index) -> table seed
_COUNTS_STREAM = 1   # children-per-parent draws
_VALUES_STREAM = 2   # the edge/root synthesizer's generation pass
_SECONDARY_STREAM = 3  # secondary foreign-key assignment


@dataclass(frozen=True)
class MultiTableConfig:
    """Hyper-parameters of the whole-database synthesizer.

    ``backbone`` is the GReaT configuration shared by every per-table and
    per-edge synthesizer; ``children_per_parent`` matches the empirical
    distribution by default or pins a fixed count; ``key_format`` shapes the
    surrogate keys; ``inference`` configures schema inference when
    :meth:`MultiTableSynthesizer.fit` is not handed an explicit graph.
    """

    backbone: GReaTConfig = field(default_factory=GReaTConfig)
    children_per_parent: int | str = "match"
    key_format: str = "{table}_{index}"
    inference: InferenceConfig = field(default_factory=InferenceConfig)
    seed: int = 0

    def __post_init__(self):
        if isinstance(self.children_per_parent, str):
            if self.children_per_parent != "match":
                raise ValueError("children_per_parent must be an integer or 'match'")
        elif self.children_per_parent < 0:
            raise ValueError("children_per_parent must be non-negative")
        if "{table}" not in self.key_format or "{index}" not in self.key_format:
            raise ValueError("key_format must contain {table} and {index}")


class EdgeSynthesizer:
    """One foreign-key edge: the child's features conditioned on the parent's.

    The conditioned training table prepends the parent's feature columns to
    every child row (joined through the key columns of the edge), exactly
    like the parent/child synthesizer's child half — but keyed by an
    arbitrary primary-key/foreign-key pair and aware of zero-children
    parents, so the sampled child-per-parent counts reproduce the full
    empirical distribution, gaps included.
    """

    def __init__(self, config: GReaTConfig, fk: ForeignKey,
                 children_per_parent: int | str = "match"):
        self.fk = fk
        self.children_per_parent = children_per_parent
        self._synth = GReaTSynthesizer(config)
        self._parent_features: list[str] = []
        self._child_features: list[str] = []
        self._prompt_names: dict[str, str] = {}
        self._children_per_parent_counts: list[int] = []

    @property
    def is_fitted(self) -> bool:
        return self._synth.is_fitted

    @classmethod
    def _from_fitted_state(cls, config: GReaTConfig, fk: ForeignKey,
                           children_per_parent: int | str,
                           synth: GReaTSynthesizer,
                           parent_features: list[str], child_features: list[str],
                           prompt_names: dict[str, str],
                           counts: list[int]) -> "EdgeSynthesizer":
        """Reconstruct a fitted edge from persisted state (see :mod:`repro.store`)."""
        edge = cls(config, fk, children_per_parent)
        edge._synth = synth
        edge._parent_features = list(parent_features)
        edge._child_features = list(child_features)
        edge._prompt_names = dict(prompt_names)
        edge._children_per_parent_counts = [int(c) for c in counts]
        return edge

    def fit(self, parent: Table, child: Table, parent_features: list[str],
            child_features: list[str]) -> "EdgeSynthesizer":
        fk = self.fk
        if child.num_rows == 0:
            raise SchemaGraphError("table {!r} has no rows to fit on".format(fk.table))
        if not parent_features and not child_features:
            raise SchemaGraphError(
                "edge {} has no feature columns on either side".format(fk.edge_name))
        self._parent_features = list(parent_features)
        self._child_features = list(child_features)
        # parent features colliding with child feature names are prefixed in
        # the conditioned encoding, deterministically
        self._prompt_names = {
            name: ("{}.{}".format(fk.parent_table, name)
                   if name in set(child_features) else name)
            for name in parent_features
        }

        keys = parent.column(fk.parent_column).values
        if len(set(keys)) != len(keys):
            raise SchemaGraphError(
                "key column {}.{} is not unique ({} rows, {} distinct)".format(
                    fk.parent_table, fk.parent_column, len(keys), len(set(keys))))
        parent_row_index = {key: index for index, key in enumerate(keys)}

        # empirical children-per-parent distribution, *including* parents
        # with zero children, pinned by stringified key for cross-backend
        # determinism (cf. ParentChildSynthesizer)
        counts = value_counts(child, fk.column)
        per_parent = {key: 0 for key in keys}
        for value, count in counts.items():
            if value in per_parent:
                per_parent[value] += count
        self._children_per_parent_counts = [
            count for _, count in sorted(per_parent.items(), key=lambda item: str(item[0]))
        ] or [1]

        child_parents = [parent_row_index.get(value)
                         for value in child.column(fk.column).values]
        kept = [row for row, parent_idx in enumerate(child_parents)
                if parent_idx is not None]
        if not kept:
            raise SchemaGraphError(
                "no rows of {!r} reference a key of {!r}; cannot fit edge {}".format(
                    fk.table, fk.parent_table, fk.edge_name))
        columns: dict = {}
        for name in self._parent_features:
            values = parent.column(name).values
            columns[self._prompt_names[name]] = [values[child_parents[row]] for row in kept]
        for name in self._child_features:
            values = child.column(name).values
            columns[name] = [values[row] for row in kept]
        self._synth.fit(Table(columns))
        return self

    def draw_counts(self, n_parents: int, rng: random.Random) -> list[int]:
        """Children-per-parent counts for *n_parents* sampled parent rows."""
        if isinstance(self.children_per_parent, int):
            return [self.children_per_parent] * n_parents
        return [rng.choice(self._children_per_parent_counts) for _ in range(n_parents)]

    def sample_children(self, parent_rows: list[dict], counts: list[int],
                        seed: int) -> list[dict]:
        """One conditioned row per child slot, flattened in parent order.

        ``parent_rows`` are the sampled parent feature rows; every parent's
        children ride in one conditioned mega-batch through the engine.
        """
        prompts: list[dict] = []
        for parent_row, n_children in zip(parent_rows, counts):
            prompt = {self._prompt_names[name]: parent_row[name]
                      for name in self._parent_features}
            prompts.extend([prompt] * n_children)
        if not prompts:
            return []
        generated = self._synth.sample_conditional(prompts, seed=seed)
        return [{name: row[name] for name in self._child_features}
                for row in generated.iter_rows()]


class _SampledStore:
    """Accessor for the already-sampled tables of one database walk.

    In-memory mode (``spool=None``) keeps the tables in a dict — the
    historical behaviour.  Spill mode writes each completed table as an
    uncompressed NPZ part directory under *spool* and re-reads only the
    columns a downstream table actually needs (foreign keys, parent
    features), memory-mapped via :func:`repro.store.stream.
    part_table_column` — so a database walk holds at most one full table
    in RAM.  Both modes return identical values: the part round trip is
    lossless by construction.
    """

    def __init__(self, spool=None, resume: bool = False):
        self.spool = Path(spool) if spool is not None else None
        self.resume = bool(resume) and self.spool is not None
        self._tables: dict[str, Table] = {}
        if self.spool is not None:
            self.spool.mkdir(parents=True, exist_ok=True)

    def is_complete(self, name: str) -> bool:
        """Whether *name* already holds a completed (manifest-certified) spill."""
        if self.spool is None:
            return False
        from repro.store.stream import part_table_is_complete

        return part_table_is_complete(self.spool / name)

    def put(self, name: str, table: Table) -> None:
        if self.spool is None:
            self._tables[name] = table
            return
        from repro.store.stream import PartTableSink

        directory = self.spool / name
        if self.resume and directory.exists():
            # a crash mid-write can leave manifest-less part files; the table
            # regenerates deterministically from its own seed, so the safe
            # resume is to clear the torn remains and rewrite whole
            for stray in sorted(directory.glob("part-*.npz")):
                stray.unlink()
        with PartTableSink(directory) as sink:
            sink.write(table)

    def table(self, name: str) -> Table:
        if self.spool is None:
            return self._tables[name]
        from repro.store.stream import read_part_table

        return read_part_table(self.spool / name)

    def num_rows(self, name: str) -> int:
        if self.spool is None:
            return self._tables[name].num_rows
        from repro.store.stream import part_table_num_rows

        return part_table_num_rows(self.spool / name)

    def column_values(self, name: str, column: str) -> list:
        if self.spool is None:
            return self._tables[name].column(column).values
        from repro.store.stream import part_table_column

        return part_table_column(self.spool / name, column)

    def feature_rows(self, name: str, features: list[str]) -> list[dict]:
        """One dict per row holding just *features* (conditioning prompts)."""
        if not features:
            return [{} for _ in range(self.num_rows(name))]
        if self.spool is None:
            table = self._tables[name]
            return [{feature: row[feature] for feature in features}
                    for row in table.iter_rows()]
        values = [self.column_values(name, feature) for feature in features]
        return [dict(zip(features, row)) for row in zip(*values)]


class MultiTableSynthesizer:
    """Fit on a whole database; sample a whole coherent synthetic database."""

    def __init__(self, config: MultiTableConfig | None = None):
        self.config = config or MultiTableConfig()
        self._graph: SchemaGraph | None = None
        self._root_synths: dict[str, GReaTSynthesizer] = {}
        self._edges: dict[str, EdgeSynthesizer] = {}
        self._training_rows: dict[str, int] = {}

    @property
    def is_fitted(self) -> bool:
        return self._graph is not None

    @property
    def graph(self) -> SchemaGraph:
        self._require_fitted()
        return self._graph

    @classmethod
    def _from_fitted_state(cls, config: MultiTableConfig, graph: SchemaGraph,
                           root_synths: dict[str, GReaTSynthesizer],
                           edges: dict[str, EdgeSynthesizer],
                           training_rows: dict[str, int]) -> "MultiTableSynthesizer":
        """Reconstruct a fitted synthesizer from persisted state (see :mod:`repro.store`)."""
        synth = cls(config)
        synth._graph = graph
        synth._root_synths = dict(root_synths)
        synth._edges = dict(edges)
        synth._training_rows = {name: int(n) for name, n in training_rows.items()}
        return synth

    def _require_fitted(self):
        if not self.is_fitted:
            raise RuntimeError("call fit() before sampling")

    # -- fitting ---------------------------------------------------------------------

    def fit(self, tables: dict[str, Table],
            graph: SchemaGraph | None = None) -> "MultiTableSynthesizer":
        """Fit one synthesizer per root table and per foreign-key edge.

        When *graph* is omitted it is inferred from the data
        (:func:`repro.schema.inference.infer_schema`).  The graph is
        validated against the tables first — unique fully-populated primary
        keys, no dangling foreign keys, no cycles.
        """
        graph = graph or infer_schema(tables, self.config.inference)
        graph.validate_tables(tables)
        order = graph.topological_order()

        root_synths: dict[str, GReaTSynthesizer] = {}
        edges: dict[str, EdgeSynthesizer] = {}
        for name in order:
            table = tables[name]
            features = graph.feature_columns(name)
            fk = graph.primary_parent(name)
            if fk is None:
                if not features:
                    raise SchemaGraphError(
                        "root table {!r} has no feature columns to synthesize".format(name))
                if table.num_rows == 0:
                    raise SchemaGraphError("table {!r} has no rows to fit on".format(name))
                root_synths[name] = GReaTSynthesizer(self.config.backbone).fit(
                    table.select(features))
            else:
                edge = EdgeSynthesizer(self.config.backbone, fk,
                                       self.config.children_per_parent)
                edge.fit(tables[fk.parent_table], table,
                         parent_features=graph.feature_columns(fk.parent_table),
                         child_features=features)
                edges[name] = edge

        self._graph = graph
        self._root_synths = root_synths
        self._edges = edges
        self._training_rows = {name: tables[name].num_rows for name in order}
        return self

    # -- sampling --------------------------------------------------------------------

    def _resolve_root_n(self, name: str, n: int | dict | None) -> int:
        if isinstance(n, dict):
            resolved = n.get(name, self._training_rows[name])
        elif n is not None:
            resolved = n
        else:
            resolved = self._training_rows[name]
        if resolved <= 0:
            raise ValueError("root table {!r} needs a positive row count".format(name))
        return int(resolved)

    def _surrogate_keys(self, name: str, n: int) -> list[str]:
        return [self.config.key_format.format(table=name, index=i) for i in range(n)]

    def _sample_table(self, name: str, table_seed: int, sampled: _SampledStore,
                      n: int | dict | None) -> Table:
        """One table's synthetic rows given its (already sampled) parents."""
        graph = self._graph
        schema = graph.table(name)
        features = graph.feature_columns(name)
        fk = graph.primary_parent(name)

        columns: dict[str, list] = {}
        if fk is None:
            n_rows = self._resolve_root_n(name, n)
            generated = self._root_synths[name].sample(
                n_rows, seed=derive_seed(table_seed, _VALUES_STREAM))
            for feature in features:
                columns[feature] = generated.column(feature).values
        else:
            edge = self._edges[name]
            parent_features = graph.feature_columns(fk.parent_table)
            parent_rows = sampled.feature_rows(fk.parent_table, parent_features)
            counts = edge.draw_counts(
                len(parent_rows), random.Random(derive_seed(table_seed, _COUNTS_STREAM)))
            child_rows = edge.sample_children(
                parent_rows, counts, seed=derive_seed(table_seed, _VALUES_STREAM))
            n_rows = len(child_rows)
            parent_keys = sampled.column_values(fk.parent_table, fk.parent_column)
            columns[fk.column] = [key for key, count in zip(parent_keys, counts)
                                  for _ in range(count)]
            for feature in features:
                columns[feature] = [row[feature] for row in child_rows]

        if schema.primary_key is not None:
            columns[schema.primary_key] = self._surrogate_keys(name, n_rows)

        # secondary foreign keys: referentially-intact draws from the
        # referenced parent's sampled keys, on their own named stream
        secondary = [other for other in sorted(graph.parents_of(name),
                                               key=lambda f: (f.column, f.parent_table))
                     if fk is None or other != fk]
        for index, other in enumerate(secondary):
            rng = random.Random(derive_seed(table_seed, _SECONDARY_STREAM, index))
            keys = sampled.column_values(other.parent_table, other.parent_column)
            columns[other.column] = [rng.choice(keys) for _ in range(n_rows)]

        return Table({name_: columns[name_] for name_ in schema.columns})

    def sample_database(self, n: int | dict | None = None, seed: int | None = None,
                        map_fn=None) -> dict[str, Table]:
        """Sample a whole synthetic database, keyed like the training tables.

        *n* sets the root-table row counts: an integer applies to every
        root, a dict maps root names to counts, ``None`` matches the
        training sizes.  Child-table sizes follow the learned
        children-per-parent distributions.  *map_fn* (signature of ``map``)
        runs the tables of one depth level — mutually independent by
        construction — and exists so the serving layer can shard levels
        across workers; every ``map_fn`` yields the identical database.
        """
        self._require_fitted()
        seed = self.config.seed if seed is None else seed
        order = self._graph.topological_order()
        table_seeds = {name: derive_seed(seed, _TABLE_STREAM, index)
                       for index, name in enumerate(order)}
        run = map_fn or map
        sampled = _SampledStore()
        for level in self._graph.depth_levels():
            parts = list(run(
                lambda name: (name, self._sample_table(name, table_seeds[name],
                                                       sampled, n)),
                level,
            ))
            for name, table in parts:
                sampled.put(name, table)
        return {name: sampled.table(name) for name in self._graph.table_names}

    def iter_sample_database(self, n: int | dict | None = None,
                             seed: int | None = None, spool=None,
                             resume: bool = False):
        """Yield ``(name, table)`` pairs of :meth:`sample_database` level by level.

        With *spool* (a fresh directory path), each completed table is
        spilled to disk as uncompressed NPZ parts and immediately dropped
        from RAM; downstream tables re-read the foreign keys and parent
        features they condition on via memory-mapped column reads.  The walk
        then holds at most one table in memory, and
        ``dict(iter_sample_database(n, seed))`` equals
        ``sample_database(n, seed)`` exactly — spilled or not, the per-table
        seeds are the same named streams.  Validation is eager.

        ``resume=True`` (requires *spool*) restarts an interrupted spill:
        tables whose spill completed (manifest present) are **not**
        regenerated — they are read back from disk and yielded as-is — and
        only the missing suffix of the walk is sampled.  Each table's seed
        is derived from ``(seed, its topological position)`` alone and
        conditioning reads parent rows from the spool, so the resumed run's
        spill directory is byte-identical to an uninterrupted one with the
        same arguments.
        """
        self._require_fitted()
        if resume and spool is None:
            raise ValueError("resume=True requires a spool directory")
        seed = self.config.seed if seed is None else seed
        order = self._graph.topological_order()
        table_seeds = {name: derive_seed(seed, _TABLE_STREAM, index)
                       for index, name in enumerate(order)}
        sampled = _SampledStore(spool, resume=resume)

        def tables():
            for level in self._graph.depth_levels():
                for name in level:
                    if sampled.resume and sampled.is_complete(name):
                        yield name, sampled.table(name)
                        continue
                    table = self._sample_table(name, table_seeds[name], sampled, n)
                    sampled.put(name, table)
                    yield name, table
        return tables()

    # -- persistence ------------------------------------------------------------------

    def save(self, path, compress: bool = False) -> str:
        """Persist this fitted synthesizer as a bundle; returns the digest."""
        from repro.store.bundle import save_multitable

        return save_multitable(self, path, compress=compress)

    @staticmethod
    def load(path) -> "MultiTableSynthesizer":
        """Load a fitted multi-table synthesizer bundle saved by :meth:`save`."""
        from repro.store.bundle import load_multitable

        return load_multitable(path)
