"""Dataset-specific transformation (Sec. 4.4.2).

Four DIGIX columns hold values like ``20^35^42^15^5`` — caret-separated lists
of product-category codes the user is interested (or uninterested) in.
Replacing the '^' separator with the word 'and' makes the value read like
natural language ("20 and 35 and 42"), which the paper shows improves the
lower end of the fidelity distribution.  The transform is invertible so the
synthetic output can be returned in the original caret format.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.frame.table import Table

_SEPARATOR = "^"
_JOIN_WORD = " and "


def caret_to_and(value) -> str:
    """Rewrite '20^35^42' as '20 and 35 and 42' (non-strings pass through)."""
    if not isinstance(value, str) or _SEPARATOR not in value:
        return value
    parts = [part.strip() for part in value.split(_SEPARATOR) if part.strip() != ""]
    return _JOIN_WORD.join(parts)


def and_to_caret(value) -> str:
    """Inverse of :func:`caret_to_and` (non-strings and plain values pass through)."""
    if not isinstance(value, str) or _JOIN_WORD not in value:
        return value
    parts = [part.strip() for part in value.split(_JOIN_WORD) if part.strip() != ""]
    return _SEPARATOR.join(parts)


@dataclass
class CaretToAndTransform:
    """Apply the caret→'and' rewrite to an explicit set of columns.

    The columns default to ``None`` meaning "every string column containing a
    caret in at least one value" — which matches how the four interest columns
    were found in the original dataset.
    """

    columns: tuple[str, ...] | None = None

    def select_columns(self, table: Table) -> list[str]:
        """Columns to rewrite."""
        if self.columns is not None:
            missing = [name for name in self.columns if name not in table.column_names]
            if missing:
                raise KeyError("columns not in table: {}".format(missing))
            return list(self.columns)
        selected = []
        for name in table.column_names:
            column = table.column(name)
            if column.dtype == "str" and any(
                isinstance(v, str) and _SEPARATOR in v for v in column
            ):
                selected.append(name)
        return selected

    def transform(self, table: Table) -> Table:
        """Rewrite the selected columns of *table*."""
        out = table
        for name in self.select_columns(table):
            out = out.map_column(name, caret_to_and)
        return out

    def inverse_transform(self, table: Table) -> Table:
        """Restore the caret format on every column containing 'and'-joined lists."""
        out = table
        names = self.columns if self.columns is not None else table.column_names
        for name in names:
            if name in out.column_names:
                out = out.map_column(name, and_to_caret)
        return out
