"""Differentiability-based transformation module (Sec. 3.2.1).

Count the categories across all selected columns (n = n_col1 + n_col2 + ...),
mint exactly that many unique representations, and map each (column, category)
pair to its own representation.  The representations need not relate to the
actual semantics — the point is only that no category label repeats anywhere
in the transformed table, so the tokenizer can no longer conflate them.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.enhancement.mapping import ColumnMapping, MappingSystem
from repro.enhancement.names_db import UniqueNameGenerator
from repro.frame.table import Table


@dataclass
class DifferentiabilityTransform:
    """Automatic unique-representation mapping for selected categorical columns.

    Parameters
    ----------
    seed:
        Seed of the unique-name generator so experiments are repeatable.
    max_categories:
        Safety valve: refuse to map columns with more distinct values than
        this (they are effectively identifiers, not categories, and mapping
        them would explode the vocabulary without any benefit).
    """

    seed: int = 0
    max_categories: int = 200

    def select_columns(self, table: Table, columns: Sequence[str] | None = None) -> list[str]:
        """Columns to transform: the caller's selection, or every categorical-like column."""
        if columns is not None:
            missing = [name for name in columns if name not in table.column_names]
            if missing:
                raise KeyError("columns not in table: {}".format(missing))
            return list(columns)
        selected = []
        for name in table.column_names:
            column = table.column(name)
            if column.is_categorical_like() and column.nunique() <= self.max_categories:
                selected.append(name)
        return selected

    def total_categories(self, table: Table, columns: Sequence[str]) -> int:
        """n = n_column1 + n_column2 + ... over the selected columns."""
        return sum(table.column(name).nunique() for name in columns)

    def build_mapping(self, table: Table, columns: Sequence[str] | None = None) -> MappingSystem:
        """Create the mapping system for *table*.

        Existing string values in the table are reserved so a minted
        representation can never collide with a value already present.
        """
        selected = self.select_columns(table, columns)
        reserved = set()
        for name in table.column_names:
            for value in table.column(name).unique():
                if isinstance(value, str):
                    reserved.add(value)
        generator = UniqueNameGenerator(seed=self.seed, reserved=reserved)

        system = MappingSystem()
        for name in selected:
            categories = table.column(name).unique()
            if len(categories) > self.max_categories:
                continue
            forward = {category: generator.next_name() for category in categories}
            system.add(ColumnMapping(column=name, forward=forward))
        return system

    def fit_transform(self, table: Table, columns: Sequence[str] | None = None) -> tuple[Table, MappingSystem]:
        """Build the mapping and return ``(transformed_table, mapping_system)``."""
        system = self.build_mapping(table, columns)
        return system.transform(table), system
