"""Mapping system and inverse mapping (Sec. 3.2.3).

The mapping system records, per column, the bijection from original category
values to their semantically enhanced representations.  Transformation applies
it forward to the training table; after synthesis the inverse mapping restores
the original label space so the synthetic data always comes back "in the same
format as the original data".  To prevent privacy leakage through the mapping
itself, the system supports explicit destruction after use.
"""

from __future__ import annotations

import json
from collections.abc import Mapping as MappingABC
from dataclasses import dataclass, field
from pathlib import Path

from repro.frame.table import Table


class MappingError(ValueError):
    """A mapping is invalid (not a bijection) or used after destruction."""


@dataclass
class ColumnMapping:
    """Bijective mapping for a single column."""

    column: str
    forward: dict = field(default_factory=dict)

    def __post_init__(self):
        self._check_bijective(self.forward)
        self._inverse = {v: k for k, v in self.forward.items()}

    @staticmethod
    def _check_bijective(forward: MappingABC) -> None:
        targets = list(forward.values())
        if len(set(map(str, targets))) != len(targets):
            raise MappingError("mapping targets must be unique within a column")

    @property
    def inverse(self) -> dict:
        """Enhanced value -> original value."""
        return dict(self._inverse)

    def apply(self, value):
        """Forward-map one value (unknown values pass through unchanged)."""
        return self.forward.get(value, value)

    def invert(self, value):
        """Inverse-map one value (unknown values pass through unchanged)."""
        return self._inverse.get(value, value)

    def covers(self, values) -> bool:
        """True when every non-missing value in *values* has a forward mapping."""
        return all(v in self.forward for v in values if v is not None)


class MappingSystem:
    """Collection of per-column mappings with forward/inverse table transforms."""

    def __init__(self):
        self._mappings: dict[str, ColumnMapping] = {}
        self._destroyed = False

    # -- construction ----------------------------------------------------------------

    def add(self, mapping: ColumnMapping) -> "MappingSystem":
        """Register a column mapping (replacing any existing one for the column)."""
        self._require_alive()
        self._mappings[mapping.column] = mapping
        return self

    def add_column(self, column: str, forward: MappingABC) -> "MappingSystem":
        """Convenience: register a mapping from a plain dict."""
        return self.add(ColumnMapping(column=column, forward=dict(forward)))

    # -- introspection ----------------------------------------------------------------

    @property
    def columns(self) -> list[str]:
        """Columns that have a registered mapping."""
        self._require_alive()
        return list(self._mappings.keys())

    @property
    def is_destroyed(self) -> bool:
        return self._destroyed

    def mapping_for(self, column: str) -> ColumnMapping:
        self._require_alive()
        if column not in self._mappings:
            raise MappingError("no mapping registered for column {!r}".format(column))
        return self._mappings[column]

    def all_targets(self) -> set:
        """Every enhanced representation across all columns.

        The differentiability guarantee is exactly that this set has one entry
        per (column, category) pair — no repeats.
        """
        self._require_alive()
        targets = []
        for mapping in self._mappings.values():
            targets.extend(mapping.forward.values())
        return set(targets)

    def guarantees_differentiability(self) -> bool:
        """True when no enhanced representation is shared across (column, category) pairs."""
        self._require_alive()
        targets = []
        for mapping in self._mappings.values():
            targets.extend(str(v) for v in mapping.forward.values())
        return len(set(targets)) == len(targets)

    # -- table transforms ----------------------------------------------------------------

    def transform(self, table: Table) -> Table:
        """Forward-map every registered column of *table*."""
        self._require_alive()
        out = table
        for column, mapping in self._mappings.items():
            if column in out.column_names:
                out = out.map_column(column, mapping.apply)
        return out

    def inverse_transform(self, table: Table) -> Table:
        """Inverse-map every registered column of *table* back to the original labels."""
        self._require_alive()
        out = table
        for column, mapping in self._mappings.items():
            if column in out.column_names:
                out = out.map_column(column, mapping.invert)
        return out

    # -- persistence & destruction ----------------------------------------------------------

    def to_dict(self) -> dict:
        """Serialisable representation (keys stringified for JSON round-trips)."""
        self._require_alive()
        return {
            column: {str(k): v for k, v in mapping.forward.items()}
            for column, mapping in self._mappings.items()
        }

    def save(self, path) -> Path:
        """Persist the mapping system as JSON (for audit before destruction)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2, default=str))
        return path

    @classmethod
    def load(cls, path) -> "MappingSystem":
        """Load a mapping system saved by :meth:`save`.

        JSON stringifies keys; integer-looking keys are parsed back to ints so
        label-encoded columns round-trip.
        """
        data = json.loads(Path(path).read_text())
        system = cls()
        for column, forward in data.items():
            parsed = {}
            for key, value in forward.items():
                try:
                    parsed_key = int(key)
                except (TypeError, ValueError):
                    parsed_key = key
                parsed[parsed_key] = value
            system.add_column(column, parsed)
        return system

    def destroy(self) -> None:
        """Erase all mappings (Sec. 3.2.3's post-synthesis privacy step).

        After destruction every operation raises :class:`MappingError`, so a
        leaked reference cannot be used to invert synthetic data back to the
        original label space.
        """
        self._mappings.clear()
        self._destroyed = True

    def _require_alive(self):
        if self._destroyed:
            raise MappingError("the mapping system has been destroyed after synthesis")
