"""Facade over the Data Semantic Enhancement System.

One object that (1) builds the requested mapping (none / differentiability /
understandability), (2) optionally applies the dataset-specific caret→'and'
rewrite, (3) transforms the training table, and (4) inverse-transforms the
synthetic table — then can destroy the mapping per Sec. 3.2.3.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.enhancement.differentiability import DifferentiabilityTransform
from repro.enhancement.mapping import MappingError, MappingSystem
from repro.enhancement.special import CaretToAndTransform
from repro.enhancement.understandability import UnderstandabilityTransform
from repro.frame.table import Table

#: Supported semantic levels, in increasing order of semantics.
SEMANTIC_LEVELS = ("none", "differentiability", "understandability")


@dataclass(frozen=True)
class EnhancerConfig:
    """Configuration of the enhancement facade.

    Parameters
    ----------
    semantic_level:
        ``"none"`` (GReaT baseline behaviour), ``"differentiability"``
        (Sec. 3.2.1) or ``"understandability"`` (Sec. 3.2.2).
    apply_special_transform:
        Whether to also apply the caret→'and' rewrite of Sec. 4.4.2.
    columns:
        Explicit columns to enhance; ``None`` selects categorical-like columns
        automatically.
    """

    semantic_level: str = "understandability"
    apply_special_transform: bool = False
    columns: tuple[str, ...] | None = None
    seed: int = 0

    def __post_init__(self):
        if self.semantic_level not in SEMANTIC_LEVELS:
            raise ValueError(
                "semantic_level must be one of {}, got {!r}".format(SEMANTIC_LEVELS, self.semantic_level)
            )


class DataSemanticEnhancer:
    """Fit a mapping on a training table, transform it, and invert synthetic output."""

    def __init__(self, config: EnhancerConfig | None = None,
                 designed_mappings: dict | None = None):
        self.config = config or EnhancerConfig()
        self._designed_mappings = designed_mappings
        self._mapping: MappingSystem | None = None
        self._special = CaretToAndTransform(columns=None)
        self._special_columns: list[str] = []

    # -- fitting / forward --------------------------------------------------------------

    @property
    def is_fitted(self) -> bool:
        return self._mapping is not None

    @property
    def mapping(self) -> MappingSystem:
        """The fitted mapping system (raises before fit)."""
        self._require_fitted()
        return self._mapping

    def fit_transform(self, table: Table, columns: Sequence[str] | None = None) -> Table:
        """Build the mapping from *table* and return the enhanced table."""
        columns = columns if columns is not None else self.config.columns
        level = self.config.semantic_level
        if level == "none":
            self._mapping = MappingSystem()
            enhanced = table
        elif level == "differentiability":
            transform = DifferentiabilityTransform(seed=self.config.seed)
            enhanced, self._mapping = transform.fit_transform(table, columns)
        else:
            kwargs = {}
            if self._designed_mappings is not None:
                kwargs["designed_mappings"] = self._designed_mappings
            transform = UnderstandabilityTransform(seed=self.config.seed, **kwargs)
            enhanced, self._mapping = transform.fit_transform(table, columns)

        if self.config.apply_special_transform:
            self._special_columns = self._special.select_columns(enhanced)
            enhanced = self._special.transform(enhanced)
        return enhanced

    def transform(self, table: Table) -> Table:
        """Apply the already fitted mapping to another table (e.g. a held-out split)."""
        self._require_fitted()
        out = self._mapping.transform(table)
        if self.config.apply_special_transform:
            present = tuple(name for name in self._special_columns if name in out.column_names)
            special = CaretToAndTransform(columns=present if present else ())
            if present:
                out = special.transform(out)
        return out

    # -- inverse ---------------------------------------------------------------------

    def inverse_transform(self, table: Table) -> Table:
        """Map a synthetic table back to the original label space."""
        self._require_fitted()
        out = table
        if self.config.apply_special_transform:
            out = self._special.inverse_transform(out)
        return self._mapping.inverse_transform(out)

    def destroy_mapping(self) -> None:
        """Erase the mapping after synthesis (privacy step of Sec. 3.2.3)."""
        self._require_fitted()
        self._mapping.destroy()

    def _require_fitted(self):
        if self._mapping is None:
            raise MappingError("call fit_transform() before using the enhancer")
