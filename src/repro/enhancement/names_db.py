"""Embedded names database.

The paper uses the ``names`` Python package to mint unique human-readable
representations for the differentiability-based transformation (Sec. 4.1.5).
That package just samples from US-census first/last-name lists; this module
embeds a sufficient subset and generates deterministic, collision-free
"First Last" names (falling back to numbered suffixes once the combination
space is exhausted, so the generator never fails).
"""

from __future__ import annotations

import random

FIRST_NAMES = (
    "James", "Mary", "Robert", "Patricia", "John", "Jennifer", "Michael", "Linda",
    "David", "Elizabeth", "William", "Barbara", "Richard", "Susan", "Joseph", "Jessica",
    "Thomas", "Sarah", "Charles", "Karen", "Christopher", "Lisa", "Daniel", "Nancy",
    "Matthew", "Betty", "Anthony", "Margaret", "Mark", "Sandra", "Donald", "Ashley",
    "Steven", "Kimberly", "Paul", "Emily", "Andrew", "Donna", "Joshua", "Michelle",
    "Kenneth", "Carol", "Kevin", "Amanda", "Brian", "Dorothy", "George", "Melissa",
    "Timothy", "Deborah", "Ronald", "Stephanie", "Edward", "Rebecca", "Jason", "Sharon",
    "Jeffrey", "Laura", "Ryan", "Cynthia", "Jacob", "Kathleen", "Gary", "Amy",
    "Nicholas", "Angela", "Eric", "Shirley", "Jonathan", "Anna", "Stephen", "Brenda",
    "Larry", "Pamela", "Justin", "Emma", "Scott", "Nicole", "Brandon", "Helen",
    "Benjamin", "Samantha", "Samuel", "Katherine", "Gregory", "Christine", "Alexander", "Debra",
    "Patrick", "Rachel", "Frank", "Carolyn", "Raymond", "Janet", "Jack", "Catherine",
    "Dennis", "Maria", "Jerry", "Heather", "Tyler", "Diane", "Aaron", "Ruth",
    "Jose", "Julie", "Adam", "Olivia", "Nathan", "Joyce", "Henry", "Virginia",
    "Douglas", "Victoria", "Zachary", "Kelly", "Peter", "Lauren", "Kyle", "Christina",
    "Ethan", "Joan", "Walter", "Evelyn", "Noah", "Judith", "Jeremy", "Megan",
    "Christian", "Andrea", "Keith", "Cheryl", "Roger", "Hannah", "Terry", "Jacqueline",
    "Gerald", "Martha", "Harold", "Gloria", "Sean", "Teresa", "Austin", "Ann",
    "Carl", "Sara", "Arthur", "Madison", "Lawrence", "Frances", "Dylan", "Kathryn",
    "Jesse", "Janice", "Jordan", "Jean", "Bryan", "Abigail", "Billy", "Alice",
    "Joe", "Julia", "Bruce", "Judy", "Gabriel", "Sophia", "Logan", "Grace",
    "Albert", "Denise", "Willie", "Amber", "Alan", "Doris", "Juan", "Marilyn",
    "Wayne", "Danielle", "Elijah", "Beverly", "Randy", "Isabella", "Roy", "Theresa",
    "Vincent", "Diana", "Ralph", "Natalie", "Eugene", "Brittany", "Russell", "Charlotte",
    "Bobby", "Marie", "Mason", "Kayla", "Philip", "Alexis", "Louis", "Lori",
)

LAST_NAMES = (
    "Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller", "Davis",
    "Rodriguez", "Martinez", "Hernandez", "Lopez", "Gonzalez", "Wilson", "Anderson", "Thomas",
    "Taylor", "Moore", "Jackson", "Martin", "Lee", "Perez", "Thompson", "White",
    "Harris", "Sanchez", "Clark", "Ramirez", "Lewis", "Robinson", "Walker", "Young",
    "Allen", "King", "Wright", "Scott", "Torres", "Nguyen", "Hill", "Flores",
    "Green", "Adams", "Nelson", "Baker", "Hall", "Rivera", "Campbell", "Mitchell",
    "Carter", "Roberts", "Gomez", "Phillips", "Evans", "Turner", "Diaz", "Parker",
    "Cruz", "Edwards", "Collins", "Reyes", "Stewart", "Morris", "Morales", "Murphy",
    "Cook", "Rogers", "Gutierrez", "Ortiz", "Morgan", "Cooper", "Peterson", "Bailey",
    "Reed", "Kelly", "Howard", "Ramos", "Kim", "Cox", "Ward", "Richardson",
    "Watson", "Brooks", "Chavez", "Wood", "James", "Bennett", "Gray", "Mendoza",
    "Ruiz", "Hughes", "Price", "Alvarez", "Castillo", "Sanders", "Patel", "Myers",
    "Long", "Ross", "Foster", "Jimenez", "Powell", "Jenkins", "Perry", "Russell",
    "Sullivan", "Bell", "Coleman", "Butler", "Henderson", "Barnes", "Gonzales", "Fisher",
    "Vasquez", "Simmons", "Romero", "Jordan", "Patterson", "Alexander", "Hamilton", "Graham",
    "Reynolds", "Griffin", "Wallace", "Moreno", "West", "Cole", "Hayes", "Bryant",
)


class UniqueNameGenerator:
    """Deterministically mint unique 'First_Last' names.

    The generator never repeats a name: it walks a seeded permutation of the
    first-by-last product and, once exhausted, appends a numeric suffix.  It
    also never emits a name in the caller-supplied ``reserved`` set, so names
    already appearing in the table cannot collide with minted ones (the paper
    requires the unique representations to not appear in the table).

    Names are joined with an underscore so the word tokenizer treats each one
    as a single token; multi-token labels would push the previous column's
    value out of the n-gram context window and weaken exactly the cross-column
    modelling the transformation is meant to improve.
    """

    def __init__(self, seed: int = 0, reserved: set[str] | None = None):
        self._rng = random.Random(seed)
        self._reserved = set(reserved or ())
        self._issued: set[str] = set()
        self._order = [
            (i, j) for i in range(len(FIRST_NAMES)) for j in range(len(LAST_NAMES))
        ]
        self._rng.shuffle(self._order)
        self._cursor = 0
        self._suffix = 1

    @property
    def issued(self) -> set[str]:
        """Names handed out so far."""
        return set(self._issued)

    def next_name(self) -> str:
        """Return the next unused, unreserved name."""
        while self._cursor < len(self._order):
            i, j = self._order[self._cursor]
            self._cursor += 1
            name = "{}_{}".format(FIRST_NAMES[i], LAST_NAMES[j])
            if name not in self._reserved and name not in self._issued:
                self._issued.add(name)
                return name
        # combination space exhausted: fall back to suffixed names
        while True:
            i, j = self._order[self._suffix % len(self._order)]
            name = "{}_{}_{}".format(FIRST_NAMES[i], LAST_NAMES[j], self._suffix)
            self._suffix += 1
            if name not in self._reserved and name not in self._issued:
                self._issued.add(name)
                return name

    def generate(self, count: int) -> list[str]:
        """Return *count* distinct names."""
        if count < 0:
            raise ValueError("count must be non-negative")
        return [self.next_name() for _ in range(count)]
