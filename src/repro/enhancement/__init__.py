"""Data Semantic Enhancement System (Sec. 3.2).

Numerical category labels ('1', '2', ...) reused across columns collapse to
identical tokens in the textual encoding, confusing the LLM backbone (Fig. 2).
This subpackage rewrites those labels before encoding and restores them after
synthesis:

* :class:`DifferentiabilityTransform` (Sec. 3.2.1) — map every category of
  every selected column to a globally unique representation (random names from
  the embedded names database), guaranteeing no repeated categories.
* :class:`UnderstandabilityTransform` (Sec. 3.2.2) — map categories to
  semantically meaningful labels designed per column (gender codes to
  'male'/'female'/'others', age codes to age groups, province codes to city
  names, ...), which also guarantees differentiability.
* :class:`MappingSystem` / inverse mapping (Sec. 3.2.3) — record every
  per-column mapping so synthetic output is transformed back to the original
  label space, and support deletion after synthesis to prevent privacy
  leakage through the mapping itself.
* :func:`caret_to_and` (Sec. 4.4.2) — the dataset-specific transformation that
  rewrites '20^35^42' interest lists as natural-language 'and'-joined lists.
"""

from repro.enhancement.mapping import ColumnMapping, MappingSystem, MappingError
from repro.enhancement.differentiability import DifferentiabilityTransform
from repro.enhancement.understandability import (
    UnderstandabilityTransform,
    default_digix_semantic_mappings,
)
from repro.enhancement.special import CaretToAndTransform, caret_to_and, and_to_caret
from repro.enhancement.enhancer import DataSemanticEnhancer, EnhancerConfig
from repro.enhancement.names_db import UniqueNameGenerator

__all__ = [
    "MappingSystem",
    "ColumnMapping",
    "MappingError",
    "DifferentiabilityTransform",
    "UnderstandabilityTransform",
    "default_digix_semantic_mappings",
    "CaretToAndTransform",
    "caret_to_and",
    "and_to_caret",
    "DataSemanticEnhancer",
    "EnhancerConfig",
    "UniqueNameGenerator",
]
