"""Understandability-based transformation module (Sec. 3.2.2 / 4.1.5).

Categories are mapped to labels "expected to occur in the given column":
gender codes become 'male'/'female'/'others', age codes become age-group
strings, province codes become city names, boolean-ish codes become
'yes'/'no'.  The mapping is designed per column by a data scientist (the paper
notes automating it with an LLM is future work); this module ships the
designed mappings for the DIGIX-like schema plus a rule-based fallback that
guarantees differentiability for any column lacking a designed mapping.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

from repro.enhancement.mapping import ColumnMapping, MappingSystem
from repro.enhancement.names_db import UniqueNameGenerator
from repro.frame.table import Table

#: 71 US cities used to relabel the DIGIX 'residence' province codes (Sec. 4.1.5).
#: Single-word city names are used so every mapped label is a single token for
#: the word tokenizer (multi-token labels would dilute the n-gram context).
US_CITIES = (
    "Chicago", "Houston", "Phoenix", "Philadelphia", "Dallas", "Austin",
    "Jacksonville", "Columbus", "Charlotte", "Indianapolis", "Seattle", "Denver",
    "Washington", "Boston", "Nashville", "Detroit", "Portland", "Memphis",
    "Louisville", "Baltimore", "Milwaukee", "Albuquerque", "Tucson", "Fresno",
    "Mesa", "Sacramento", "Atlanta", "Omaha", "Raleigh", "Miami",
    "Oakland", "Minneapolis", "Tulsa", "Tampa", "Arlington", "Wichita",
    "Bakersfield", "Cleveland", "Aurora", "Anaheim", "Honolulu", "Riverside",
    "Lexington", "Henderson", "Stockton", "Cincinnati", "Pittsburgh", "Greensboro",
    "Lincoln", "Anchorage", "Plano", "Orlando", "Irvine", "Newark",
    "Durham", "Chandler", "Gilbert", "Reno", "Hialeah", "Garland",
    "Chesapeake", "Irving", "Scottsdale", "Fremont", "Madison", "Spokane",
    "Richmond", "Fontana", "Tacoma", "Modesto", "Glendale",
)

#: Age-group labels for codes '2'..'8' (Sec. 4.1.5: ages 20 through 89).
AGE_GROUPS = {
    2: "twenties",
    3: "thirties",
    4: "forties",
    5: "fifties",
    6: "sixties",
    7: "seventies",
    8: "eighties",
}

#: Gender-code mapping (Sec. 4.1.5: '2', '3', '4' -> male / female / others).
GENDER_LABELS = {2: "male", 3: "female", 4: "others"}


def default_digix_semantic_mappings() -> dict[str, dict]:
    """The designed per-column mappings for the DIGIX-like schema.

    Keys are the generator's column names; callers with differently named
    columns can rename or supply their own designs.
    """
    return {
        "gender": dict(GENDER_LABELS),
        "age": dict(AGE_GROUPS),
        "residence": {code: city for code, city in enumerate(US_CITIES, start=1)},
        "device_size": {
            1: "phone", 2: "phablet", 3: "tablet", 4: "laptop", 5: "desktop",
        },
        "net_type": {1: "wifi", 2: "cellular", 3: "fiber", 4: "wired"},
        "label": {0: "unclicked", 1: "clicked"},
    }


@dataclass
class UnderstandabilityTransform:
    """Designed semantic mapping with a rule-based fallback.

    Parameters
    ----------
    designed_mappings:
        Column -> {original category -> meaningful label}.  Defaults to the
        DIGIX-like designs of Sec. 4.1.5.
    fallback:
        What to do with selected columns lacking a design: ``"template"``
        builds '<column> category <value>' labels (still differentiable and
        mildly semantic), ``"names"`` falls back to unique names (pure
        differentiability), ``"skip"`` leaves the column untouched.
    """

    designed_mappings: dict[str, Mapping] = field(default_factory=default_digix_semantic_mappings)
    fallback: str = "template"
    seed: int = 0
    max_categories: int = 200

    def __post_init__(self):
        if self.fallback not in ("template", "names", "skip"):
            raise ValueError("fallback must be 'template', 'names' or 'skip'")

    def select_columns(self, table: Table, columns: Sequence[str] | None = None) -> list[str]:
        """Columns to transform (designed columns plus categorical-like ones)."""
        if columns is not None:
            missing = [name for name in columns if name not in table.column_names]
            if missing:
                raise KeyError("columns not in table: {}".format(missing))
            return list(columns)
        selected = []
        for name in table.column_names:
            column = table.column(name)
            if name in self.designed_mappings or (
                column.is_categorical_like() and column.nunique() <= self.max_categories
            ):
                selected.append(name)
        return selected

    def build_mapping(self, table: Table, columns: Sequence[str] | None = None) -> MappingSystem:
        """Create the mapping system, preferring designed mappings per column."""
        selected = self.select_columns(table, columns)
        reserved = set()
        for name in table.column_names:
            for value in table.column(name).unique():
                if isinstance(value, str):
                    reserved.add(value)
        generator = UniqueNameGenerator(seed=self.seed, reserved=reserved)

        system = MappingSystem()
        for name in selected:
            categories = table.column(name).unique()
            if len(categories) > self.max_categories:
                continue
            designed = self.designed_mappings.get(name, {})
            forward = {}
            used_labels = set()
            for category in categories:
                label = designed.get(category)
                if label is None:
                    label = self._fallback_label(name, category, generator)
                # guarantee uniqueness within the column even if a design repeats a label
                base_label = label
                suffix = 2
                while label in used_labels:
                    label = "{} ({})".format(base_label, suffix)
                    suffix += 1
                used_labels.add(label)
                forward[category] = label
            if self.fallback == "skip" and not designed:
                continue
            system.add(ColumnMapping(column=name, forward=forward))
        return system

    def _fallback_label(self, column: str, category, generator: UniqueNameGenerator) -> str:
        if self.fallback == "names":
            return generator.next_name()
        # underscore-joined so the label stays a single token for the tokenizer
        return "{}_{}".format(column, category)

    def fit_transform(self, table: Table, columns: Sequence[str] | None = None) -> tuple[Table, MappingSystem]:
        """Build the mapping and return ``(transformed_table, mapping_system)``."""
        system = self.build_mapping(table, columns)
        return system.transform(table), system
