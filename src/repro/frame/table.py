"""Column-oriented in-memory table.

The :class:`Table` is the central data container of the reproduction: every
stage of the GReaTER pipeline (semantic enhancement, cross-table connecting,
textual encoding, fidelity evaluation) consumes and produces tables.  It is a
deliberately small, explicit subset of a DataFrame API — only the operations
the pipeline actually needs.

Row-level operations (filtering, sorting, grouping, de-duplication) take a
vectorized fast path when the involved columns live on a typed storage
backend (see :mod:`repro.frame.backend`) and fall back to the original
per-value Python code otherwise, so ``mixed`` columns and the forced
``"object"`` backend keep their exact legacy behaviour.
"""

from __future__ import annotations

import random
from collections import OrderedDict
from collections.abc import Iterable, Mapping, Sequence

import numpy as np

from repro.frame.column import Column, coerce_value, is_missing
from repro.frame.errors import (
    ColumnNotFoundError,
    DuplicateColumnError,
    LengthMismatchError,
    SchemaError,
)


class Table:
    """An ordered collection of equally long named columns.

    Construct a table from columns::

        Table({"name": ["Grace", "Yin"], "lunch": [1, 2]})

    or from records::

        Table.from_records([{"name": "Grace", "lunch": 1}])
    """

    def __init__(self, columns: Mapping[str, Iterable] | Sequence[Column] | None = None):
        self._columns: "OrderedDict[str, Column]" = OrderedDict()
        if columns is None:
            return
        if isinstance(columns, Mapping):
            items = [(name, values) for name, values in columns.items()]
        else:
            items = [(col.name, col) for col in columns]
        for name, values in items:
            column = values if isinstance(values, Column) else Column(name, values)
            if column.name != name:
                column = column.rename(name)
            self._add_column_checked(column)

    def _add_column_checked(self, column: Column) -> None:
        if column.name in self._columns:
            raise DuplicateColumnError(column.name)
        if self._columns:
            expected = self.num_rows
            if len(column) != expected:
                raise LengthMismatchError(expected, len(column), name=column.name)
        self._columns[column.name] = column

    # -- constructors -------------------------------------------------------------

    @classmethod
    def from_records(cls, records: Sequence[Mapping], columns: Sequence[str] | None = None) -> "Table":
        """Build a table from a sequence of row dictionaries.

        Column order follows *columns* when given, otherwise the key order of
        the first record.  Missing keys become ``None``.
        """
        records = list(records)
        if columns is None:
            names: list[str] = []
            seen = set()
            for record in records:
                for key in record:
                    if key not in seen:
                        seen.add(key)
                        names.append(key)
        else:
            names = list(columns)
        data = {name: [record.get(name) for record in records] for name in names}
        return cls(data)

    @classmethod
    def from_columns(cls, columns: Sequence[Column]) -> "Table":
        """Build a table from :class:`Column` objects."""
        return cls(columns)

    def copy(self) -> "Table":
        """Return a deep-enough copy (new column objects, new storage)."""
        return Table([
            Column._from_backend(name, col._backend.copy(), col.dtype)
            for name, col in self._columns.items()
        ])

    # -- introspection ------------------------------------------------------------

    @property
    def column_names(self) -> list[str]:
        """Column names in order."""
        return list(self._columns.keys())

    @property
    def columns(self) -> list[Column]:
        """Column objects in order."""
        return list(self._columns.values())

    @property
    def num_rows(self) -> int:
        """Number of rows."""
        if not self._columns:
            return 0
        return len(next(iter(self._columns.values())))

    @property
    def num_columns(self) -> int:
        """Number of columns."""
        return len(self._columns)

    @property
    def shape(self) -> tuple[int, int]:
        """(rows, columns)."""
        return (self.num_rows, self.num_columns)

    def dtypes(self) -> dict[str, str]:
        """Mapping from column name to logical dtype."""
        return {name: col.dtype for name, col in self._columns.items()}

    def __len__(self) -> int:
        return self.num_rows

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    def __getitem__(self, key):
        if isinstance(key, str):
            return self.column(key)
        if isinstance(key, (list, tuple)) and all(isinstance(k, str) for k in key):
            return self.select(key)
        if isinstance(key, slice):
            indices = range(*key.indices(self.num_rows))
            return self.take(list(indices))
        raise TypeError(
            "table indices must be a column name, a list of column names or a slice, "
            "got {!r}".format(key)
        )

    def __eq__(self, other) -> bool:
        if not isinstance(other, Table):
            return NotImplemented
        if self.column_names != other.column_names:
            return False
        return all(self._columns[name] == other._columns[name] for name in self._columns)

    def __repr__(self) -> str:
        return "Table(rows={}, columns={})".format(self.num_rows, self.column_names)

    def column(self, name: str) -> Column:
        """Return the column called *name* or raise :class:`ColumnNotFoundError`."""
        try:
            return self._columns[name]
        except KeyError:
            raise ColumnNotFoundError(name, self.column_names) from None

    def row(self, index: int) -> dict:
        """Return row *index* as an ordered dict of ``{column: value}``."""
        if index < -self.num_rows or index >= self.num_rows:
            raise IndexError("row index {} out of range for {} rows".format(index, self.num_rows))
        return {name: col[index] for name, col in self._columns.items()}

    def iter_rows(self):
        """Yield each row as a dict, in order."""
        names = self.column_names
        value_lists = [col.values for col in self._columns.values()]
        for row in zip(*value_lists):
            yield dict(zip(names, row))

    def to_records(self) -> list[dict]:
        """All rows as a list of dicts."""
        return list(self.iter_rows())

    def to_dict(self) -> dict[str, list]:
        """Column-oriented dict of value lists."""
        return {name: col.values for name, col in self._columns.items()}

    def head(self, n: int = 5) -> "Table":
        """The first *n* rows."""
        return self[:n]

    # -- column-level manipulation -------------------------------------------------

    def select(self, names: Sequence[str]) -> "Table":
        """Return a new table containing only *names*, in the given order."""
        return Table([self.column(name) for name in names])

    def drop(self, names: Sequence[str] | str) -> "Table":
        """Return a new table without the given column(s)."""
        if isinstance(names, str):
            names = [names]
        for name in names:
            if name not in self._columns:
                raise ColumnNotFoundError(name, self.column_names)
        keep = [name for name in self.column_names if name not in set(names)]
        return self.select(keep)

    def rename(self, mapping: Mapping[str, str]) -> "Table":
        """Return a new table with columns renamed according to *mapping*."""
        for old in mapping:
            if old not in self._columns:
                raise ColumnNotFoundError(old, self.column_names)
        new_names = [mapping.get(name, name) for name in self.column_names]
        if len(set(new_names)) != len(new_names):
            raise DuplicateColumnError(
                next(n for n in new_names if new_names.count(n) > 1)
            )
        return Table([
            self._columns[old].rename(new) for old, new in zip(self.column_names, new_names)
        ])

    def with_column(self, name: str, values: Iterable) -> "Table":
        """Return a new table with column *name* added or replaced."""
        column = values if isinstance(values, Column) and values.name == name else Column(name, values)
        if self._columns and len(column) != self.num_rows:
            raise LengthMismatchError(self.num_rows, len(column), name=name)
        columns = [column if existing == name else self._columns[existing]
                   for existing in self.column_names]
        if name not in self._columns:
            columns.append(column)
        return Table(columns)

    def map_column(self, name: str, func) -> "Table":
        """Return a new table with *func* applied to every value of column *name*."""
        return self.with_column(name, [func(v) for v in self.column(name)])

    def reorder(self, names: Sequence[str]) -> "Table":
        """Return a new table with columns ordered as *names* (must be a permutation)."""
        if sorted(names) != sorted(self.column_names):
            raise SchemaError(
                "reorder requires a permutation of the existing columns; "
                "got {} for table with {}".format(list(names), self.column_names)
            )
        return self.select(names)

    # -- row-level manipulation ----------------------------------------------------

    def take(self, indices: Sequence[int]) -> "Table":
        """Return a new table with the rows at *indices* (in the given order)."""
        if not isinstance(indices, np.ndarray):
            indices = np.asarray(list(indices), dtype=np.intp)
        return Table([col.take(indices) for col in self._columns.values()])

    def filter(self, predicate) -> "Table":
        """Return the rows for which ``predicate(row_dict)`` is truthy."""
        indices = [i for i, row in enumerate(self.iter_rows()) if predicate(row)]
        return self.take(indices)

    def where(self, name: str, value) -> "Table":
        """Return the rows whose column *name* equals *value*.

        Missing values (``None``/NaN) match each other, in line with the
        substrate's single missing-value definition.
        """
        column = self.column(name)
        if is_missing(value):
            value = None
        indices = column._indices_equal(value)
        if indices is None:
            indices = [i for i, v in enumerate(column) if v == value]
        return self.take(indices)

    def where_in(self, name: str, values: Iterable) -> "Table":
        """Return the rows whose column *name* is a member of *values*."""
        allowed = {None if is_missing(v) else v for v in values}
        column = self.column(name)
        indices = column._indices_isin(allowed)
        if indices is None:
            indices = [i for i, v in enumerate(column) if v in allowed]
        return self.take(indices)

    def sort_by(self, name: str, reverse: bool = False) -> "Table":
        """Return a new table sorted by column *name* (stable sort, missing last —
        or first when *reverse* is true, matching the previous tuple-key sort)."""
        column = self.column(name)
        indices = column._argsort_indices(reverse)
        if indices is None:
            indices = sorted(
                range(self.num_rows),
                key=lambda i: (column[i] is None, column[i]),
                reverse=reverse,
            )
        return self.take(indices)

    def drop_duplicates(self, subset: Sequence[str] | None = None) -> "Table":
        """Return a new table with duplicate rows removed (first occurrence kept).

        This is the "reduce dimension" primitive of the Cross-table Connecting
        Method (Sec. 3.3.2): once an independent column is removed, repeated
        rows collapse and the flattened table shrinks.
        """
        names = list(subset) if subset is not None else self.column_names
        for name in names:
            if name not in self._columns:
                raise ColumnNotFoundError(name, self.column_names)
        cols = [self.column(name) for name in names]
        if cols and self.num_rows and all(col.is_vectorized for col in cols):
            indices = _first_occurrence_indices(cols)
            if indices is not None:
                return self.take(indices)
        seen = set()
        indices = []
        for i in range(self.num_rows):
            key = tuple(col[i] for col in cols)
            if key not in seen:
                seen.add(key)
                indices.append(i)
        return self.take(indices)

    def sample_rows(self, n: int, rng: random.Random | None = None, replace: bool = True) -> "Table":
        """Return *n* rows sampled uniformly (with replacement by default)."""
        rng = rng or random.Random()
        if self.num_rows == 0:
            raise ValueError("cannot sample from an empty table")
        if replace:
            indices = [rng.randrange(self.num_rows) for _ in range(n)]
        else:
            if n > self.num_rows:
                raise ValueError(
                    "cannot sample {} rows without replacement from {} rows".format(n, self.num_rows)
                )
            indices = rng.sample(range(self.num_rows), n)
        return self.take(indices)

    def shuffle(self, rng: random.Random | None = None) -> "Table":
        """Return a new table with the rows in random order."""
        rng = rng or random.Random()
        indices = list(range(self.num_rows))
        rng.shuffle(indices)
        return self.take(indices)

    # -- grouping -----------------------------------------------------------------

    def group_by(self, name: str) -> "OrderedDict":
        """Group rows by the value of column *name*.

        Returns an ordered mapping from group key to sub-:class:`Table`, with
        keys in first-seen order.  This is the primitive behind contextual
        variable detection and per-subject bootstrap pools.
        """
        return OrderedDict(
            (key, self.take(indices)) for key, indices in self.group_indices(name).items()
        )

    def group_indices(self, name: str) -> "OrderedDict":
        """Like :meth:`group_by` but returning row indices instead of sub-tables.

        Index lists are ascending; keys (including ``None`` for missing
        values) appear in first-seen order, like a dict keyed on raw values.
        """
        column = self.column(name)
        groups: "OrderedDict[object, list[int]]" = OrderedDict()
        if column.is_vectorized and self.num_rows:
            codes, keys = column._codes_with_missing()
            # numpy's radix sort is ~8x faster on 16-bit keys, and group
            # cardinality rarely exceeds the uint16 range
            sort_codes = codes.astype(np.uint16) if len(keys) <= 0xFFFF else codes
            order = np.argsort(sort_codes, kind="stable")
            # every key occurs at least once and codes are first-seen
            # ordered, so the sorted codes split into len(keys) runs whose
            # boundaries np.unique hands back directly
            starts = np.unique(codes[order], return_index=True)[1]
            flat = order.tolist()
            bounds = starts.tolist() + [len(flat)]
            for index, key in enumerate(keys):
                groups[key] = flat[bounds[index]:bounds[index + 1]]
            return groups
        for i, value in enumerate(column):
            groups.setdefault(value, []).append(i)
        return groups

    def unique_values(self, name: str) -> list:
        """Distinct non-missing values of column *name*, in first-seen order."""
        return self.column(name).unique()

    # -- equality helpers ----------------------------------------------------------

    def equals_ignoring_order(self, other: "Table") -> bool:
        """True when both tables contain the same multiset of rows and columns."""
        if not isinstance(other, Table):
            return False
        if sorted(self.column_names) != sorted(other.column_names):
            return False
        names = sorted(self.column_names)
        mine = sorted(tuple(row[n] for n in names) for row in self.iter_rows())
        theirs = sorted(tuple(row[n] for n in names) for row in other.iter_rows())
        return mine == theirs


def _first_occurrence_indices(cols: Sequence[Column]) -> np.ndarray | None:
    """Ascending indices of the first occurrence of each distinct row.

    Dictionary-encodes every column (missing values get their own key, like a
    Python dict keyed on raw values) and combines the per-column codes into a
    single mixed-radix row key.  Returns ``None`` when the key space is too
    large for an int64 radix encoding.
    """
    combined = None
    radix = 1
    for col in cols:
        codes, keys = col._codes_with_missing()
        cardinality = max(len(keys), 1)
        if radix * cardinality >= 2 ** 62:
            return None
        radix *= cardinality
        combined = codes if combined is None else combined * cardinality + codes
    first = np.unique(combined, return_index=True)[1]
    first.sort()
    return first
