"""CSV input/output for :class:`~repro.frame.Table`.

The DIGIX-like dataset generator can persist its tables so experiments are
repeatable across processes; this module provides the round-trip.
"""

from __future__ import annotations

import csv
from pathlib import Path

from repro.frame.table import Table
from repro.store.atomic import atomic_path


def _parse_cell(text: str):
    """Parse a CSV cell back into int, float, None or str.

    Python's ``int()``/``float()`` accept underscore digit separators, so a
    cell like ``"1_000"`` would silently round-trip as the integer ``1000``
    — a lossy rewrite of what was a string.  Underscore-containing cells are
    therefore never parsed as numbers; the writer only ever emits canonical
    ``str()`` forms, which contain no underscores.
    """
    if text == "":
        return None
    if "_" not in text:
        try:
            return int(text)
        except ValueError:
            pass
        try:
            return float(text)
        except ValueError:
            pass
    return text


def read_csv(path, parse_types: bool = True) -> Table:
    """Read a CSV file into a :class:`Table`.

    When *parse_types* is true (the default), cells are parsed into ints and
    floats where possible and empty cells become ``None``.
    """
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            return Table()
        data = {name: [] for name in header}
        for row in reader:
            for name, cell in zip(header, row):
                data[name].append(_parse_cell(cell) if parse_types else cell)
            # ragged rows: pad missing cells
            for name in header[len(row):]:
                data[name].append(None)
    return Table(data)


def write_csv(table: Table, path) -> Path:
    """Write a :class:`Table` to a CSV file and return the path.

    The write is atomic: rows land in a temporary sibling file which is
    renamed over *path* on success, so a crashed or concurrent writer never
    leaves a torn file for a reader (e.g. the serving layer) to load.
    """
    path = Path(path)
    with atomic_path(path) as tmp:
        with tmp.open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(table.column_names)
            for row in table.iter_rows():
                writer.writerow(
                    ["" if row[name] is None else row[name] for name in table.column_names]
                )
    return path
