"""CSV input/output for :class:`~repro.frame.Table`.

The DIGIX-like dataset generator can persist its tables so experiments are
repeatable across processes; this module provides the round-trip.
"""

from __future__ import annotations

import csv
from pathlib import Path

from repro.frame.table import Table


def _parse_cell(text: str):
    """Parse a CSV cell back into int, float, None or str."""
    if text == "":
        return None
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def read_csv(path, parse_types: bool = True) -> Table:
    """Read a CSV file into a :class:`Table`.

    When *parse_types* is true (the default), cells are parsed into ints and
    floats where possible and empty cells become ``None``.
    """
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            return Table()
        data = {name: [] for name in header}
        for row in reader:
            for name, cell in zip(header, row):
                data[name].append(_parse_cell(cell) if parse_types else cell)
            # ragged rows: pad missing cells
            for name in header[len(row):]:
                data[name].append(None)
    return Table(data)


def write_csv(table: Table, path) -> Path:
    """Write a :class:`Table` to a CSV file and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(table.column_names)
        for row in table.iter_rows():
            writer.writerow(["" if row[name] is None else row[name] for name in table.column_names])
    return path
