"""Relational operations over :class:`~repro.frame.Table`.

These are the primitives the Cross-table Connecting Method is built from:
joins (direct flattening of two child tables on the shared subject key),
row concatenation, value counts and contingency tables.

Each operation has a vectorized implementation used when the involved columns
live on typed storage backends, and falls back to the original record-based
code for ``mixed`` columns or the forced ``"object"`` backend.
"""

from __future__ import annotations

from collections import Counter, OrderedDict
from collections.abc import Sequence

import numpy as np

from repro.frame.backend import CategoricalBackend, NumericBackend
from repro.frame.column import Column
from repro.frame.errors import ColumnNotFoundError, SchemaError
from repro.frame.table import Table


def _disambiguate(names_left: Sequence[str], names_right: Sequence[str], on: str,
                  suffixes: tuple[str, str]) -> dict[str, str]:
    """Return a rename mapping for right-hand columns that clash with the left."""
    clash = (set(names_left) & set(names_right)) - {on}
    mapping = {}
    for name in names_right:
        if name == on:
            continue
        if name in clash:
            mapping[name] = name + suffixes[1]
        else:
            mapping[name] = name
    return mapping


# ---------------------------------------------------------------------------
# joins
# ---------------------------------------------------------------------------

def _join_row_indices(left_key: Column, right_key: Column,
                      keep_unmatched_left: bool) -> tuple[np.ndarray, np.ndarray] | None:
    """Row index pairs realising the join, or ``None`` when not vectorizable.

    Returns ``(left_indices, right_indices)`` where unmatched left rows (only
    present under *keep_unmatched_left*) carry ``-1`` on the right.  Matches
    within a key keep the right table's row order, and output rows follow the
    left table's row order — exactly like the record-based join.
    """
    if not (left_key.is_vectorized and right_key.is_vectorized):
        return None
    lcodes, lkeys = left_key._codes_with_missing()
    rcodes, rkeys = right_key._codes_with_missing()
    n_left = lcodes.shape[0]
    n_lkeys = max(len(lkeys), 1)

    lookup = {key: code for code, key in enumerate(lkeys)}
    try:
        key_map = np.asarray([lookup.get(key, -1) for key in rkeys], dtype=np.int64)
    except TypeError:
        return None
    rmapped = key_map[rcodes] if len(rkeys) else np.full(rcodes.shape, -1, dtype=np.int64)

    matched = rmapped >= 0
    counts = np.bincount(rmapped[matched], minlength=n_lkeys)
    right_order = np.argsort(rmapped, kind="stable")
    right_sorted = right_order[int(np.count_nonzero(~matched)):]
    group_starts = np.concatenate([[0], np.cumsum(counts)[:-1]])

    per_left = counts[lcodes]
    out_counts = np.maximum(per_left, 1) if keep_unmatched_left else per_left
    total = int(out_counts.sum())
    left_idx = np.repeat(np.arange(n_left, dtype=np.intp), out_counts)
    block_starts = np.concatenate([[0], np.cumsum(out_counts)[:-1]])
    ramp = np.arange(total, dtype=np.int64) - np.repeat(block_starts, out_counts)
    right_pos = np.repeat(group_starts[lcodes], out_counts) + ramp
    if right_sorted.size:
        gathered = right_sorted[np.clip(right_pos, 0, right_sorted.size - 1)]
    else:
        gathered = np.zeros(total, dtype=np.int64)
    right_idx = np.where(np.repeat(per_left, out_counts) > 0, gathered, -1)
    return left_idx, right_idx.astype(np.intp)


def _assemble_join(left: Table, right: Table, on: str, right_rename: dict[str, str],
                   left_idx: np.ndarray, right_idx: np.ndarray) -> Table:
    columns = [col.take(left_idx) for col in left.columns]
    for name in right.column_names:
        if name == on:
            continue
        columns.append(right.column(name).take_or_missing(right_idx).rename(right_rename[name]))
    return Table(columns)


def _join_records(left: Table, right: Table, on: str, right_rename: dict[str, str],
                  out_columns: list[str], keep_unmatched_left: bool) -> Table:
    """The original record-based join, kept as the mixed-dtype fallback."""
    right_groups = right.group_indices(on)
    right_rows = right.to_records()
    records = []
    for left_row in left.iter_rows():
        key = left_row[on]
        matches = right_groups.get(key, [])
        if not matches and keep_unmatched_left:
            record = dict(left_row)
            for renamed in right_rename.values():
                record[renamed] = None
            records.append(record)
            continue
        for right_index in matches:
            right_row = right_rows[right_index]
            record = dict(left_row)
            for name, renamed in right_rename.items():
                record[renamed] = right_row[name]
            records.append(record)
    return Table.from_records(records, columns=out_columns)


def _join(left: Table, right: Table, on: str, suffixes: tuple[str, str],
          keep_unmatched_left: bool) -> Table:
    if on not in left.column_names:
        raise ColumnNotFoundError(on, left.column_names)
    if on not in right.column_names:
        raise ColumnNotFoundError(on, right.column_names)
    right_rename = _disambiguate(left.column_names, right.column_names, on, suffixes)
    indices = _join_row_indices(left.column(on), right.column(on), keep_unmatched_left)
    if indices is not None:
        return _assemble_join(left, right, on, right_rename, *indices)
    out_columns = list(left.column_names) + [
        right_rename[n] for n in right.column_names if n != on
    ]
    return _join_records(left, right, on, right_rename, out_columns, keep_unmatched_left)


def inner_join(left: Table, right: Table, on: str,
               suffixes: tuple[str, str] = ("_x", "_y")) -> Table:
    """Inner join of two tables on the key column *on*.

    This is the "direct flattening" operation of Sec. 3.3 (Fig. 4, step 0):
    every left row is paired with every right row that shares the key, so a
    2x5 table flattened with a 2x7 table on a shared subject can blow up to a
    13x... table and over-represent engaged subjects.
    """
    return _join(left, right, on, suffixes, keep_unmatched_left=False)


def left_join(left: Table, right: Table, on: str,
              suffixes: tuple[str, str] = ("_x", "_y")) -> Table:
    """Left join of two tables on the key column *on*.

    Rows of *left* with no match keep ``None`` for the right-hand columns.
    """
    return _join(left, right, on, suffixes, keep_unmatched_left=True)


# ---------------------------------------------------------------------------
# concatenation
# ---------------------------------------------------------------------------

def _concat_column(name: str, parts: list[Column]) -> Column:
    """Stack column parts vertically, preserving typed storage when possible."""
    dtypes = {part.dtype for part in parts}
    if len(dtypes) == 1 and all(part.is_vectorized for part in parts):
        dtype = next(iter(dtypes))
        backends = [part._backend for part in parts]
        if all(isinstance(b, NumericBackend) for b in backends):
            data = np.concatenate([b.data for b in backends])
            if any(b.mask is not None for b in backends):
                mask = np.concatenate([b.validity() for b in backends])
                if data.dtype.kind == "f":
                    data[~mask] = np.nan
                    backend = NumericBackend(data)
                else:
                    backend = NumericBackend(data, mask)
            else:
                backend = NumericBackend(data)
            return Column._from_backend(name, backend, dtype)
        if all(isinstance(b, CategoricalBackend) for b in backends):
            categories: list = []
            index: dict = {}
            translated = []
            for b in backends:
                remap = np.empty(len(b.categories) + 1, dtype=np.int64)
                remap[-1] = -1
                for code, category in enumerate(b.categories):
                    unified = index.get(category)
                    if unified is None:
                        unified = len(categories)
                        index[category] = unified
                        categories.append(category)
                    remap[code] = unified
                translated.append(remap[b.codes])
            backend = CategoricalBackend(np.concatenate(translated), categories, index)
            return Column._from_backend(name, backend, dtype)
    merged: list = []
    for part in parts:
        merged.extend(part.values)
    return Column(name, merged)


def concat_rows(tables: Sequence[Table]) -> Table:
    """Stack tables that share the same column set vertically.

    Column order follows the first table; every subsequent table must have the
    same set of columns (order may differ).
    """
    tables = [t for t in tables if t.num_columns > 0]
    if not tables:
        return Table()
    reference = tables[0].column_names
    for table in tables[1:]:
        if sorted(table.column_names) != sorted(reference):
            raise SchemaError(
                "cannot concatenate tables with different columns: {} vs {}".format(
                    reference, table.column_names
                )
            )
    return Table([
        _concat_column(name, [table.column(name) for table in tables]) for name in reference
    ])


# ---------------------------------------------------------------------------
# counting
# ---------------------------------------------------------------------------

def ranked_value_counts(values, normalize: bool = False) -> "OrderedDict":
    """Occurrence counts of a value sequence, most frequent first.

    Ties keep first-seen order, exactly like ``Counter.most_common``.  Accepts
    any iterable; :class:`~repro.frame.column.Column` inputs on a typed
    backend count via their dictionary codes instead of hashing every value.
    """
    if getattr(values, "is_vectorized", False):
        codes, categories = values.factorize()
        counts = np.bincount(codes[codes >= 0], minlength=len(categories))
        order = np.argsort(-counts, kind="stable")
        ordered = OrderedDict((categories[i], int(counts[i])) for i in order)
    else:
        counter = Counter(v for v in values if v is not None)
        ordered = OrderedDict(counter.most_common())
    total = sum(ordered.values())
    if normalize and total > 0:
        return OrderedDict((k, v / total) for k, v in ordered.items())
    return ordered


def value_counts(table: Table, name: str, normalize: bool = False) -> "OrderedDict":
    """Occurrence counts (or frequencies) of column *name*, most frequent first."""
    return ranked_value_counts(table.column(name), normalize=normalize)


def crosstab(table: Table, row_name: str, col_name: str) -> tuple[np.ndarray, list, list]:
    """Contingency table of two columns.

    Returns ``(matrix, row_categories, col_categories)`` where ``matrix[i, j]``
    counts rows with ``row_name == row_categories[i]`` and
    ``col_name == col_categories[j]``.  This feeds Cramer's V and the chi-square
    test used to determine cross-table independence.
    """
    rows = table.column(row_name)
    cols = table.column(col_name)
    if rows.is_vectorized and cols.is_vectorized:
        row_codes, row_cats = rows.factorize()
        col_codes, col_cats = cols.factorize()
        valid = (row_codes >= 0) & (col_codes >= 0)
        n_cols = len(col_cats)
        flat = np.bincount(
            row_codes[valid] * n_cols + col_codes[valid],
            minlength=len(row_cats) * n_cols,
        )
        return flat.astype(float).reshape(len(row_cats), n_cols), row_cats, col_cats
    row_cats = rows.unique()
    col_cats = cols.unique()
    row_index = {value: i for i, value in enumerate(row_cats)}
    col_index = {value: j for j, value in enumerate(col_cats)}
    matrix = np.zeros((len(row_cats), len(col_cats)), dtype=float)
    for r, c in zip(rows, cols):
        if r is None or c is None:
            continue
        matrix[row_index[r], col_index[c]] += 1.0
    return matrix, row_cats, col_cats
