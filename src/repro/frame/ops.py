"""Relational operations over :class:`~repro.frame.Table`.

These are the primitives the Cross-table Connecting Method is built from:
joins (direct flattening of two child tables on the shared subject key),
row concatenation, value counts and contingency tables.
"""

from __future__ import annotations

from collections import Counter, OrderedDict
from collections.abc import Sequence

import numpy as np

from repro.frame.errors import ColumnNotFoundError, SchemaError
from repro.frame.table import Table


def _disambiguate(names_left: Sequence[str], names_right: Sequence[str], on: str,
                  suffixes: tuple[str, str]) -> dict[str, str]:
    """Return a rename mapping for right-hand columns that clash with the left."""
    clash = (set(names_left) & set(names_right)) - {on}
    mapping = {}
    for name in names_right:
        if name == on:
            continue
        if name in clash:
            mapping[name] = name + suffixes[1]
        else:
            mapping[name] = name
    return mapping


def inner_join(left: Table, right: Table, on: str,
               suffixes: tuple[str, str] = ("_x", "_y")) -> Table:
    """Inner join of two tables on the key column *on*.

    This is the "direct flattening" operation of Sec. 3.3 (Fig. 4, step 0):
    every left row is paired with every right row that shares the key, so a
    2x5 table flattened with a 2x7 table on a shared subject can blow up to a
    13x... table and over-represent engaged subjects.
    """
    if on not in left.column_names:
        raise ColumnNotFoundError(on, left.column_names)
    if on not in right.column_names:
        raise ColumnNotFoundError(on, right.column_names)

    right_rename = _disambiguate(left.column_names, right.column_names, on, suffixes)
    out_columns = list(left.column_names) + [right_rename[n] for n in right.column_names if n != on]

    right_groups = right.group_indices(on)
    right_rows = right.to_records()
    records = []
    for left_row in left.iter_rows():
        key = left_row[on]
        for right_index in right_groups.get(key, []):
            right_row = right_rows[right_index]
            record = dict(left_row)
            for name, renamed in right_rename.items():
                record[renamed] = right_row[name]
            records.append(record)
    return Table.from_records(records, columns=out_columns)


def left_join(left: Table, right: Table, on: str,
              suffixes: tuple[str, str] = ("_x", "_y")) -> Table:
    """Left join of two tables on the key column *on*.

    Rows of *left* with no match keep ``None`` for the right-hand columns.
    """
    if on not in left.column_names:
        raise ColumnNotFoundError(on, left.column_names)
    if on not in right.column_names:
        raise ColumnNotFoundError(on, right.column_names)

    right_rename = _disambiguate(left.column_names, right.column_names, on, suffixes)
    out_columns = list(left.column_names) + [right_rename[n] for n in right.column_names if n != on]

    right_groups = right.group_indices(on)
    right_rows = right.to_records()
    records = []
    for left_row in left.iter_rows():
        key = left_row[on]
        matches = right_groups.get(key, [])
        if not matches:
            record = dict(left_row)
            for renamed in right_rename.values():
                record[renamed] = None
            records.append(record)
            continue
        for right_index in matches:
            right_row = right_rows[right_index]
            record = dict(left_row)
            for name, renamed in right_rename.items():
                record[renamed] = right_row[name]
            records.append(record)
    return Table.from_records(records, columns=out_columns)


def concat_rows(tables: Sequence[Table]) -> Table:
    """Stack tables that share the same column set vertically.

    Column order follows the first table; every subsequent table must have the
    same set of columns (order may differ).
    """
    tables = [t for t in tables if t.num_columns > 0]
    if not tables:
        return Table()
    reference = tables[0].column_names
    for table in tables[1:]:
        if sorted(table.column_names) != sorted(reference):
            raise SchemaError(
                "cannot concatenate tables with different columns: {} vs {}".format(
                    reference, table.column_names
                )
            )
    data = {name: [] for name in reference}
    for table in tables:
        for name in reference:
            data[name].extend(table.column(name).values)
    return Table(data)


def value_counts(table: Table, name: str, normalize: bool = False) -> "OrderedDict":
    """Occurrence counts (or frequencies) of column *name*, most frequent first."""
    counter = Counter(v for v in table.column(name) if v is not None)
    total = sum(counter.values())
    ordered = OrderedDict(counter.most_common())
    if normalize and total > 0:
        return OrderedDict((k, v / total) for k, v in ordered.items())
    return ordered


def crosstab(table: Table, row_name: str, col_name: str) -> tuple[np.ndarray, list, list]:
    """Contingency table of two columns.

    Returns ``(matrix, row_categories, col_categories)`` where ``matrix[i, j]``
    counts rows with ``row_name == row_categories[i]`` and
    ``col_name == col_categories[j]``.  This feeds Cramer's V and the chi-square
    test used to determine cross-table independence.
    """
    rows = table.column(row_name)
    cols = table.column(col_name)
    row_cats = table.unique_values(row_name)
    col_cats = table.unique_values(col_name)
    row_index = {value: i for i, value in enumerate(row_cats)}
    col_index = {value: j for j, value in enumerate(col_cats)}
    matrix = np.zeros((len(row_cats), len(col_cats)), dtype=float)
    for r, c in zip(rows, cols):
        if r is None or c is None:
            continue
        matrix[row_index[r], col_index[c]] += 1.0
    return matrix, row_cats, col_cats
