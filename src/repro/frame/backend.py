"""Pluggable column storage backends.

The substrate historically stored every column as a plain Python object list.
That is the right representation for genuinely mixed data, but it makes every
hot path — fidelity metrics, cross-table connecting, sampling — pay per-value
Python overhead.  This module introduces a small storage-backend layer:

* :class:`ObjectBackend` — the original object-list storage, kept as the
  compatibility default for ``mixed``/``empty`` columns and available
  everywhere via :func:`set_default_backend`.
* :class:`NumericBackend` — ``int``/``float``/``bool`` columns as typed
  ndarrays with a validity mask for missing values.
* :class:`CategoricalBackend` — ``str`` (and other hashable, low-cardinality)
  columns as dictionary-encoded arrays: an ``int64`` code per row plus the
  list of categories in first-seen order.

Which storage a new :class:`~repro.frame.column.Column` gets is controlled by
the process-wide default backend (``"auto"``, ``"numpy"`` or ``"object"``,
also settable through the ``REPRO_FRAME_BACKEND`` environment variable).
Under ``"auto"``/``"numpy"`` typed columns use the vectorized backends and
only ``mixed``/``empty`` columns fall back to object lists; ``"object"``
forces the legacy storage everywhere (used by the perf harness as the
before/after contrast).

Missing values have a single definition shared by every backend: ``None`` and
float NaN both count as missing (:func:`is_missing`, :data:`MISSING_VALUES`)
and are normalised to ``None`` when values are surfaced back to Python.
"""

from __future__ import annotations

import math
import os
from collections import Counter
from contextlib import contextmanager

import numpy as np

#: Logical dtypes understood by the substrate.
DTYPES = ("int", "float", "str", "bool", "mixed", "empty")

#: Values treated as missing when inferring dtypes and computing statistics.
#: ``None`` and float NaN are the two spellings of "missing"; backends store
#: a validity mask derived from :func:`is_missing` and surface every missing
#: slot as ``None``.
MISSING_VALUES = (None, math.nan)

#: Storage policies accepted by :func:`set_default_backend`.
BACKEND_KINDS = ("auto", "numpy", "object")

_ENV_VAR = "REPRO_FRAME_BACKEND"
_default_backend = os.environ.get(_ENV_VAR, "auto")
if _default_backend not in BACKEND_KINDS:
    _default_backend = "auto"


def is_missing(value) -> bool:
    """Return True when *value* counts as missing (``None`` or NaN)."""
    if value is None:
        return True
    if isinstance(value, (float, np.floating)) and math.isnan(value):
        return True
    return False


def infer_dtype(values) -> str:
    """Infer the logical dtype of a sequence of values.

    The inference ignores missing values.  A column with both ints and floats
    is ``"float"``; any other mixture is ``"mixed"``.

    >>> infer_dtype([1, 2, 3])
    'int'
    >>> infer_dtype([1, 2.5])
    'float'
    >>> infer_dtype(["a", "b"])
    'str'
    >>> infer_dtype([1, "a"])
    'mixed'
    >>> infer_dtype([None, None])
    'empty'
    """
    seen = set()
    for value in values:
        if is_missing(value):
            continue
        if isinstance(value, (bool, np.bool_)):
            seen.add("bool")
        elif isinstance(value, (int, np.integer)):
            seen.add("int")
        elif isinstance(value, (float, np.floating)):
            seen.add("float")
        elif isinstance(value, str):
            seen.add("str")
        else:
            seen.add("mixed")
    if not seen:
        return "empty"
    if seen == {"int"}:
        return "int"
    if seen <= {"int", "float"}:
        return "float"
    if seen == {"str"}:
        return "str"
    if seen == {"bool"}:
        return "bool"
    return "mixed"


def coerce_value(value):
    """Normalise NumPy scalars to plain Python values.

    Keeping plain Python objects at the API boundary makes equality, hashing
    and CSV round-trips predictable regardless of which library produced the
    value.
    """
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.str_):
        return str(value)
    return value


# ---------------------------------------------------------------------------
# backend selection
# ---------------------------------------------------------------------------

def get_default_backend() -> str:
    """The process-wide storage policy (``"auto"``, ``"numpy"`` or ``"object"``)."""
    return _default_backend


def set_default_backend(kind: str) -> None:
    """Set the process-wide storage policy for newly built columns."""
    global _default_backend
    if kind not in BACKEND_KINDS:
        raise ValueError("backend must be one of {}, got {!r}".format(BACKEND_KINDS, kind))
    _default_backend = kind


@contextmanager
def using_backend(kind: str):
    """Temporarily switch the default storage policy (used by the perf harness)."""
    previous = get_default_backend()
    set_default_backend(kind)
    try:
        yield
    finally:
        set_default_backend(previous)


# ---------------------------------------------------------------------------
# backends
# ---------------------------------------------------------------------------

class ColumnBackend:
    """Storage protocol shared by all column backends.

    Backends are value containers only: they know nothing about column names
    or relational logic.  All of them surface missing entries as ``None`` and
    agree on :func:`is_missing` as the single missing-value definition.
    """

    kind = "abstract"
    #: True when the backend exposes zero-copy arrays the vectorized kernels
    #: can run on; consumers check this before taking a numpy fast path.
    vectorized = False

    def __len__(self):  # pragma: no cover - abstract
        raise NotImplementedError

    def get(self, index):  # pragma: no cover - abstract
        raise NotImplementedError

    def tolist(self) -> list:  # pragma: no cover - abstract
        raise NotImplementedError

    def take(self, indices) -> "ColumnBackend":  # pragma: no cover - abstract
        raise NotImplementedError

    def take_or_missing(self, indices) -> "ColumnBackend":  # pragma: no cover - abstract
        raise NotImplementedError

    def slice(self, sl: slice) -> "ColumnBackend":  # pragma: no cover - abstract
        raise NotImplementedError

    def copy(self) -> "ColumnBackend":  # pragma: no cover - abstract
        raise NotImplementedError

    def validity(self) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    def equals(self, other: "ColumnBackend") -> bool:
        """Value equality across backend kinds (missing == missing)."""
        if len(self) != len(other):
            return False
        return self.tolist() == other.tolist()

    def missing_count(self) -> int:
        return int(len(self) - np.count_nonzero(self.validity()))

    # -- statistics ---------------------------------------------------------------

    def unique(self) -> list:
        """Distinct non-missing values in first-seen order."""
        return list(self.factorize()[1])

    def value_counts(self) -> dict:
        """Mapping from value to occurrence count, keys in first-seen order."""
        codes, categories = self.factorize()
        counts = np.bincount(codes[codes >= 0], minlength=len(categories))
        return {category: int(count) for category, count in zip(categories, counts)}

    def factorize(self):  # pragma: no cover - abstract
        """Return ``(codes, categories)``.

        ``codes`` is an ``int64`` array with one code per row (``-1`` for
        missing); ``categories`` lists the distinct non-missing values in
        first-seen order.
        """
        raise NotImplementedError

    def as_float_array(self) -> np.ndarray:
        """Values as a float64 array with NaN for missing entries."""
        return np.asarray(
            [float("nan") if v is None else float(v) for v in self.tolist()], dtype=float
        )


class ObjectBackend(ColumnBackend):
    """The legacy storage: a plain Python list of (coerced) values."""

    kind = "object"
    vectorized = False

    __slots__ = ("values", "_factorized")

    def __init__(self, values: list):
        self.values = values
        self._factorized = None

    def __len__(self):
        return len(self.values)

    def get(self, index):
        return self.values[index]

    def tolist(self) -> list:
        return list(self.values)

    def iter(self):
        return iter(self.values)

    def take(self, indices) -> "ObjectBackend":
        return ObjectBackend([self.values[i] for i in indices])

    def take_or_missing(self, indices) -> "ObjectBackend":
        return ObjectBackend([self.values[i] if i >= 0 else None for i in indices])

    def slice(self, sl: slice) -> "ObjectBackend":
        return ObjectBackend(self.values[sl])

    def copy(self) -> "ObjectBackend":
        return ObjectBackend(list(self.values))

    def equals(self, other: ColumnBackend) -> bool:
        if isinstance(other, ObjectBackend):
            return self.values == other.values
        return super().equals(other)

    def validity(self) -> np.ndarray:
        return np.asarray([v is not None for v in self.values], dtype=bool)

    def missing_count(self) -> int:
        return sum(1 for v in self.values if v is None)

    def unique(self) -> list:
        seen = set()
        out = []
        for value in self.values:
            if value is None:
                continue
            if value not in seen:
                seen.add(value)
                out.append(value)
        return out

    def value_counts(self) -> dict:
        return dict(Counter(v for v in self.values if v is not None))

    def factorize(self):
        if self._factorized is not None:
            return self._factorized
        codes = np.empty(len(self.values), dtype=np.int64)
        categories: list = []
        index: dict = {}
        for position, value in enumerate(self.values):
            if value is None:
                codes[position] = -1
                continue
            code = index.get(value)
            if code is None:
                code = len(categories)
                index[value] = code
                categories.append(value)
            codes[position] = code
        self._factorized = (codes, categories)
        return self._factorized


class NumericBackend(ColumnBackend):
    """Typed ndarray storage for int/float/bool columns.

    ``data`` holds the raw values; ``mask`` is True where a value is present.
    Float columns encode missing entries as NaN directly (``mask`` is derived
    and kept in sync); int/bool columns keep a zero placeholder at missing
    slots and rely on the mask.
    """

    kind = "numpy"
    vectorized = True

    __slots__ = ("data", "mask", "_factorized")

    def __init__(self, data: np.ndarray, mask: np.ndarray | None = None):
        self.data = data
        if mask is None and data.dtype.kind == "f":
            isnan = np.isnan(data)
            mask = ~isnan if isnan.any() else None
        self.mask = mask  # None means every value is present
        self._factorized = None

    # -- construction helpers -----------------------------------------------------

    @classmethod
    def from_values(cls, values: list, logical_dtype: str) -> "NumericBackend | None":
        """Build from an already-coerced value list; None when unrepresentable."""
        if logical_dtype == "float":
            data = np.asarray([math.nan if v is None else v for v in values], dtype=np.float64)
            return cls(data)
        if logical_dtype == "int":
            np_dtype = np.int64
        elif logical_dtype == "bool":
            np_dtype = np.bool_
        else:
            return None
        has_missing = any(v is None for v in values)
        try:
            if has_missing:
                mask = np.asarray([v is not None for v in values], dtype=bool)
                data = np.asarray([0 if v is None else v for v in values], dtype=np_dtype)
            else:
                mask = None
                data = np.asarray(values, dtype=np_dtype)
        except (OverflowError, TypeError, ValueError):
            return None
        return cls(data, mask)

    @property
    def logical_dtype(self) -> str:
        kind = self.data.dtype.kind
        if kind == "b":
            return "bool"
        if kind in "iu":
            return "int"
        return "float"

    def _python(self, value):
        return coerce_value(value.item() if isinstance(value, np.generic) else value)

    # -- container protocol -------------------------------------------------------

    def __len__(self):
        return self.data.shape[0]

    def get(self, index):
        if self.mask is not None and not self.mask[index]:
            return None
        value = self.data[index]
        if self.data.dtype.kind == "f" and np.isnan(value):
            return None
        return self._python(value)

    def tolist(self) -> list:
        values = self.data.tolist()
        if self.mask is not None:
            return [v if ok else None for v, ok in zip(values, self.mask.tolist())]
        if self.data.dtype.kind == "f":
            return [None if v != v else v for v in values]
        return values

    def iter(self):
        return iter(self.tolist())

    def take(self, indices) -> "NumericBackend":
        indices = np.asarray(indices, dtype=np.intp)
        mask = self.mask[indices] if self.mask is not None else None
        return NumericBackend(self.data[indices], mask)

    def take_or_missing(self, indices) -> "NumericBackend":
        indices = np.asarray(indices, dtype=np.intp)
        present = indices >= 0
        if self.data.shape[0] == 0:
            # gathering from empty storage: every index must be the missing
            # sentinel (a non-negative index would be out of bounds anyway)
            if present.any():
                raise IndexError("index out of bounds for empty column storage")
            if self.data.dtype.kind == "f":
                return NumericBackend(np.full(indices.shape[0], math.nan))
            return NumericBackend(
                np.zeros(indices.shape[0], dtype=self.data.dtype),
                np.zeros(indices.shape[0], dtype=bool),
            )
        safe = np.where(present, indices, 0)
        data = self.data[safe]
        mask = self.mask[safe] & present if self.mask is not None else present
        if data.dtype.kind == "f":
            data = data.copy()
            data[~mask] = math.nan
            return NumericBackend(data)
        return NumericBackend(data, mask)

    def slice(self, sl: slice) -> "NumericBackend":
        mask = self.mask[sl] if self.mask is not None else None
        return NumericBackend(self.data[sl], mask)

    def copy(self) -> "NumericBackend":
        return NumericBackend(self.data.copy(), None if self.mask is None else self.mask.copy())

    def equals(self, other: ColumnBackend) -> bool:
        if isinstance(other, NumericBackend) and len(self) == len(other):
            mine, theirs = self.validity(), other.validity()
            if not np.array_equal(mine, theirs):
                return False
            return bool(np.array_equal(self.data[mine], other.data[theirs]))
        return super().equals(other)

    def validity(self) -> np.ndarray:
        if self.mask is not None:
            return self.mask
        if self.data.dtype.kind == "f":
            return ~np.isnan(self.data)
        return np.ones(len(self), dtype=bool)

    def missing_count(self) -> int:
        return int(len(self) - np.count_nonzero(self.validity()))

    # -- statistics ---------------------------------------------------------------

    def factorize(self):
        if self._factorized is not None:
            return self._factorized
        valid = self.validity()
        codes = np.full(len(self), -1, dtype=np.int64)
        present = self.data[valid]
        if present.size == 0:
            self._factorized = (codes, [])
            return self._factorized
        uniq, first_index, inverse = np.unique(present, return_index=True, return_inverse=True)
        order = np.argsort(first_index, kind="stable")
        rank = np.empty(uniq.shape[0], dtype=np.int64)
        rank[order] = np.arange(uniq.shape[0])
        codes[valid] = rank[inverse]
        # ndarray.tolist() already yields plain Python scalars
        self._factorized = (codes, uniq[order].tolist())
        return self._factorized

    def as_float_array(self) -> np.ndarray:
        if self.data.dtype.kind == "f":
            return self.data
        data = self.data.astype(np.float64)
        if self.mask is not None:
            data[~self.mask] = math.nan
        return data


class CategoricalBackend(ColumnBackend):
    """Dictionary-encoded storage: int64 codes plus first-seen categories.

    Built for ``str`` columns but works for any hashable category values.
    Missing entries are encoded as code ``-1``.
    """

    kind = "numpy"
    vectorized = True

    __slots__ = ("codes", "categories", "_index", "_factorized")

    def __init__(self, codes: np.ndarray, categories: list, index: dict | None = None):
        self.codes = codes
        self.categories = categories
        self._index = index  # lazily built {category: code}
        self._factorized = None

    @classmethod
    def from_values(cls, values: list) -> "CategoricalBackend | None":
        codes = np.empty(len(values), dtype=np.int64)
        categories: list = []
        index: dict = {}
        try:
            for position, value in enumerate(values):
                if value is None:
                    codes[position] = -1
                    continue
                code = index.get(value)
                if code is None:
                    code = len(categories)
                    index[value] = code
                    categories.append(value)
                codes[position] = code
        except TypeError:  # unhashable values cannot be dictionary-encoded
            return None
        return cls(codes, categories, index)

    def category_index(self) -> dict:
        if self._index is None:
            self._index = {category: code for code, category in enumerate(self.categories)}
        return self._index

    # -- container protocol -------------------------------------------------------

    def __len__(self):
        return self.codes.shape[0]

    def get(self, index):
        code = self.codes[index]
        return None if code < 0 else self.categories[code]

    def tolist(self) -> list:
        categories = self.categories
        return [None if code < 0 else categories[code] for code in self.codes.tolist()]

    def iter(self):
        return iter(self.tolist())

    def take(self, indices) -> "CategoricalBackend":
        indices = np.asarray(indices, dtype=np.intp)
        return CategoricalBackend(self.codes[indices], self.categories, self._index)

    def take_or_missing(self, indices) -> "CategoricalBackend":
        indices = np.asarray(indices, dtype=np.intp)
        if self.codes.shape[0] == 0:
            if (indices >= 0).any():
                raise IndexError("index out of bounds for empty column storage")
            return CategoricalBackend(
                np.full(indices.shape[0], -1, dtype=np.int64), self.categories, self._index
            )
        safe = np.where(indices >= 0, indices, 0)
        codes = self.codes[safe].copy()
        codes[indices < 0] = -1
        return CategoricalBackend(codes, self.categories, self._index)

    def slice(self, sl: slice) -> "CategoricalBackend":
        return CategoricalBackend(self.codes[sl], self.categories, self._index)

    def copy(self) -> "CategoricalBackend":
        return CategoricalBackend(self.codes.copy(), list(self.categories))

    def equals(self, other: ColumnBackend) -> bool:
        if isinstance(other, CategoricalBackend) and len(self) == len(other):
            if self.categories is other.categories or self.categories == other.categories:
                return bool(np.array_equal(self.codes, other.codes))
        return super().equals(other)

    def validity(self) -> np.ndarray:
        return self.codes >= 0

    def missing_count(self) -> int:
        return int(np.count_nonzero(self.codes < 0))

    # -- statistics ---------------------------------------------------------------

    def factorize(self):
        if self._factorized is not None:
            return self._factorized
        used = np.zeros(len(self.categories), dtype=bool)
        valid_codes = self.codes[self.codes >= 0]
        used[valid_codes] = True
        if used.all():
            self._factorized = (self.codes, list(self.categories))
        else:
            # compact away categories that no longer occur (e.g. after a take)
            remap = np.cumsum(used, dtype=np.int64) - 1
            codes = np.where(self.codes >= 0, remap[np.maximum(self.codes, 0)], -1)
            categories = [c for c, keep in zip(self.categories, used) if keep]
            self._factorized = (codes, categories)
        return self._factorized

    def unique(self) -> list:
        return list(self.factorize()[1])

    def as_float_array(self) -> np.ndarray:
        return super().as_float_array()


# ---------------------------------------------------------------------------
# factory
# ---------------------------------------------------------------------------

def make_backend(values: list, dtype: str, policy: str | None = None) -> ColumnBackend:
    """Build the storage backend for an already-coerced value list.

    *values* must already have NumPy scalars coerced and missing entries
    normalised to ``None``; *dtype* is the column's logical dtype.  *policy*
    defaults to the process-wide setting.
    """
    policy = policy or get_default_backend()
    if policy == "object":
        return ObjectBackend(values)
    backend: ColumnBackend | None = None
    if dtype in ("int", "float", "bool"):
        backend = NumericBackend.from_values(values, dtype)
    elif dtype == "str":
        backend = CategoricalBackend.from_values(values)
    return backend if backend is not None else ObjectBackend(values)


def backend_from_array(array: np.ndarray) -> tuple[ColumnBackend, str] | None:
    """Zero-copy backend construction straight from a typed ndarray.

    Returns ``(backend, logical_dtype)`` or ``None`` when the array's dtype
    has no typed representation (object arrays, datetimes, ...).
    """
    if array.ndim != 1:
        return None
    kind = array.dtype.kind
    if kind == "b":
        return NumericBackend(array), "bool"
    if kind in "iu":
        return NumericBackend(array.astype(np.int64, copy=False)), "int"
    if kind == "f":
        data = array.astype(np.float64, copy=False)
        backend = NumericBackend(data)
        dtype = "float" if np.count_nonzero(backend.validity()) else "empty"
        return backend, dtype
    if kind in "US":
        values = [str(v) for v in array.tolist()]
        backend = CategoricalBackend.from_values(values)
        if backend is not None:
            return backend, "str" if values else "empty"
    return None
