"""Lightweight column-oriented tabular substrate.

The GReaTER pipeline is, at its heart, a sequence of relational operations on
in-memory tables: joins (flattening), group-bys (contextual-variable
detection), de-duplication (dimension reduction) and sampling (bootstrap
append).  This subpackage provides the :class:`Table` and :class:`Column`
containers those operations run on, playing the role pandas plays in the
original code base but with no external dependency beyond NumPy.
"""

from repro.frame.backend import (
    get_default_backend,
    is_missing,
    set_default_backend,
    using_backend,
)
from repro.frame.column import Column, infer_dtype
from repro.frame.errors import (
    ColumnNotFoundError,
    DuplicateColumnError,
    FrameError,
    LengthMismatchError,
    SchemaError,
)
from repro.frame.io import read_csv, write_csv
from repro.frame.ops import concat_rows, crosstab, inner_join, left_join, value_counts
from repro.frame.table import Table

__all__ = [
    "Table",
    "Column",
    "infer_dtype",
    "is_missing",
    "get_default_backend",
    "set_default_backend",
    "using_backend",
    "read_csv",
    "write_csv",
    "inner_join",
    "left_join",
    "concat_rows",
    "value_counts",
    "crosstab",
    "FrameError",
    "ColumnNotFoundError",
    "DuplicateColumnError",
    "LengthMismatchError",
    "SchemaError",
]
