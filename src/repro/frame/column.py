"""Column container and dtype inference.

A :class:`Column` is a named, immutable-length sequence of Python values with
an inferred logical dtype.  The GReaTER pipeline handles multi-modal data
(numbers, label-encoded categories and free strings side by side), so the
column keeps values as plain Python objects and exposes the dtype only as a
*description* of the data rather than a storage format.
"""

from __future__ import annotations

import math
from collections import Counter
from collections.abc import Iterable, Sequence

import numpy as np

#: Logical dtypes understood by the substrate.
DTYPES = ("int", "float", "str", "bool", "mixed", "empty")

#: Values treated as missing when inferring dtypes and computing statistics.
MISSING_VALUES = (None,)


def _is_missing(value) -> bool:
    """Return True when *value* counts as missing."""
    if value is None:
        return True
    if isinstance(value, float) and math.isnan(value):
        return True
    return False


def infer_dtype(values: Iterable) -> str:
    """Infer the logical dtype of a sequence of values.

    The inference ignores missing values.  A column with both ints and floats
    is ``"float"``; any other mixture is ``"mixed"``.

    >>> infer_dtype([1, 2, 3])
    'int'
    >>> infer_dtype([1, 2.5])
    'float'
    >>> infer_dtype(["a", "b"])
    'str'
    >>> infer_dtype([1, "a"])
    'mixed'
    >>> infer_dtype([None, None])
    'empty'
    """
    seen = set()
    for value in values:
        if _is_missing(value):
            continue
        if isinstance(value, bool):
            seen.add("bool")
        elif isinstance(value, (int, np.integer)):
            seen.add("int")
        elif isinstance(value, (float, np.floating)):
            seen.add("float")
        elif isinstance(value, str):
            seen.add("str")
        else:
            seen.add("mixed")
    if not seen:
        return "empty"
    if seen == {"int"}:
        return "int"
    if seen <= {"int", "float"}:
        return "float"
    if seen == {"str"}:
        return "str"
    if seen == {"bool"}:
        return "bool"
    return "mixed"


def coerce_value(value):
    """Normalise NumPy scalars to plain Python values.

    Keeping plain Python objects in columns makes equality, hashing and CSV
    round-trips predictable regardless of which library produced the value.
    """
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.str_):
        return str(value)
    return value


class Column(Sequence):
    """A named sequence of values with an inferred logical dtype.

    Columns are value containers; all relational logic lives on
    :class:`repro.frame.Table`.
    """

    __slots__ = ("name", "_values", "_dtype")

    def __init__(self, name: str, values: Iterable, dtype: str | None = None):
        if not isinstance(name, str) or not name:
            raise ValueError("column name must be a non-empty string")
        self.name = name
        self._values = [coerce_value(v) for v in values]
        if dtype is not None and dtype not in DTYPES:
            raise ValueError("unknown dtype {!r}; expected one of {}".format(dtype, DTYPES))
        self._dtype = dtype or infer_dtype(self._values)

    # -- basic container protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._values)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return Column(self.name, self._values[index], dtype=self._dtype)
        return self._values[index]

    def __iter__(self):
        return iter(self._values)

    def __eq__(self, other) -> bool:
        if not isinstance(other, Column):
            return NotImplemented
        return self.name == other.name and self._values == other._values

    def __hash__(self):
        raise TypeError("Column objects are unhashable; hash their values instead")

    def __repr__(self) -> str:
        preview = ", ".join(repr(v) for v in self._values[:5])
        suffix = ", ..." if len(self._values) > 5 else ""
        return "Column({!r}, dtype={!r}, n={}, [{}{}])".format(
            self.name, self._dtype, len(self._values), preview, suffix
        )

    # -- introspection ------------------------------------------------------------

    @property
    def dtype(self) -> str:
        """Logical dtype of the column (one of :data:`DTYPES`)."""
        return self._dtype

    @property
    def values(self) -> list:
        """A copy of the column values as a plain list."""
        return list(self._values)

    def is_numeric(self) -> bool:
        """True when every non-missing value is an int or a float."""
        return self._dtype in ("int", "float")

    def is_categorical_like(self) -> bool:
        """Heuristic used by the enhancement system.

        A column is "categorical-like" when the number of distinct values is
        small relative to the number of observations, which is the situation
        in which label-encoded categories become ambiguous for the LLM.
        """
        n = len(self._values)
        if n == 0:
            return False
        distinct = len(self.unique())
        return distinct <= max(20, int(0.05 * n))

    def missing_count(self) -> int:
        """Number of missing values in the column."""
        return sum(1 for v in self._values if _is_missing(v))

    # -- transformations ----------------------------------------------------------

    def rename(self, name: str) -> "Column":
        """Return a copy of the column under a new name."""
        return Column(name, self._values, dtype=self._dtype)

    def map(self, func) -> "Column":
        """Return a new column with *func* applied to every value."""
        return Column(self.name, [func(v) for v in self._values])

    def astype(self, dtype: str) -> "Column":
        """Cast the column values to the requested logical dtype.

        Missing values are preserved.  Casting to ``"str"`` uses ``str()``;
        casting to ``"int"``/``"float"`` parses strings when possible.
        """
        if dtype not in ("int", "float", "str"):
            raise ValueError("can only cast to 'int', 'float' or 'str', not {!r}".format(dtype))
        caster = {"int": int, "float": float, "str": str}[dtype]
        converted = []
        for value in self._values:
            if _is_missing(value):
                converted.append(None)
            else:
                converted.append(caster(value))
        return Column(self.name, converted, dtype=dtype)

    def take(self, indices: Iterable[int]) -> "Column":
        """Return a new column containing the values at *indices* (in order)."""
        return Column(self.name, [self._values[i] for i in indices], dtype=self._dtype)

    # -- statistics ---------------------------------------------------------------

    def unique(self) -> list:
        """Distinct non-missing values, in first-seen order."""
        seen = set()
        out = []
        for value in self._values:
            if _is_missing(value):
                continue
            key = value
            if key not in seen:
                seen.add(key)
                out.append(value)
        return out

    def nunique(self) -> int:
        """Number of distinct non-missing values."""
        return len(self.unique())

    def value_counts(self) -> dict:
        """Mapping from value to number of occurrences (missing excluded)."""
        counter = Counter(v for v in self._values if not _is_missing(v))
        return dict(counter)

    def to_numpy(self, dtype=None) -> np.ndarray:
        """Convert the values to a NumPy array.

        Numeric columns become float arrays (missing → NaN); everything else
        becomes an object array.
        """
        if dtype is not None:
            return np.asarray(self._values, dtype=dtype)
        if self.is_numeric():
            return np.asarray(
                [float("nan") if _is_missing(v) else float(v) for v in self._values],
                dtype=float,
            )
        return np.asarray(self._values, dtype=object)
