"""Column container and dtype inference.

A :class:`Column` is a named, immutable-length sequence of Python values with
an inferred logical dtype.  The GReaTER pipeline handles multi-modal data
(numbers, label-encoded categories and free strings side by side), so the
column exposes plain Python objects at its API boundary while delegating the
actual storage to a pluggable backend (:mod:`repro.frame.backend`): typed
ndarrays for ``int``/``float``/``bool``, dictionary-encoded arrays for
``str``, and the legacy object list for ``mixed`` data.

Missing values have one definition everywhere: ``None`` and float NaN both
count as missing (see :data:`MISSING_VALUES` and :func:`is_missing`) and are
surfaced as ``None``.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.frame.backend import (
    DTYPES,
    MISSING_VALUES,
    backend_from_array,
    coerce_value,
    get_default_backend,
    infer_dtype,
    is_missing,
    make_backend,
)

__all__ = [
    "Column",
    "DTYPES",
    "MISSING_VALUES",
    "coerce_value",
    "infer_dtype",
    "is_missing",
]

#: Backwards-compatible alias; :func:`is_missing` is the public name.
_is_missing = is_missing


class Column(Sequence):
    """A named sequence of values with an inferred logical dtype.

    Columns are value containers; all relational logic lives on
    :class:`repro.frame.Table`.
    """

    __slots__ = ("name", "_backend", "_dtype")

    def __init__(self, name: str, values: Iterable, dtype: str | None = None):
        if not isinstance(name, str) or not name:
            raise ValueError("column name must be a non-empty string")
        if dtype is not None and dtype not in DTYPES:
            raise ValueError("unknown dtype {!r}; expected one of {}".format(dtype, DTYPES))
        self.name = name

        if isinstance(values, np.ndarray):
            if dtype is None and get_default_backend() != "object":
                built = backend_from_array(values)
                if built is not None:
                    self._backend, self._dtype = built
                    return
            values = values.tolist()

        cleaned = [None if is_missing(v) else coerce_value(v) for v in values]
        self._dtype = dtype or infer_dtype(cleaned)
        self._backend = make_backend(cleaned, self._dtype)

    @classmethod
    def _from_backend(cls, name: str, backend, dtype: str) -> "Column":
        """Internal constructor that adopts an existing storage backend."""
        column = cls.__new__(cls)
        column.name = name
        column._backend = backend
        column._dtype = dtype
        return column

    # -- basic container protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._backend)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return Column._from_backend(self.name, self._backend.slice(index), self._dtype)
        return self._backend.get(index)

    def __iter__(self):
        return self._backend.iter()

    def __eq__(self, other) -> bool:
        if not isinstance(other, Column):
            return NotImplemented
        return self.name == other.name and self._backend.equals(other._backend)

    def __hash__(self):
        raise TypeError("Column objects are unhashable; hash their values instead")

    def __repr__(self) -> str:
        head = self._backend.slice(slice(0, 5)).tolist()
        preview = ", ".join(repr(v) for v in head)
        suffix = ", ..." if len(self) > 5 else ""
        return "Column({!r}, dtype={!r}, n={}, [{}{}])".format(
            self.name, self._dtype, len(self), preview, suffix
        )

    # -- introspection ------------------------------------------------------------

    @property
    def dtype(self) -> str:
        """Logical dtype of the column (one of :data:`DTYPES`)."""
        return self._dtype

    @property
    def values(self) -> list:
        """A copy of the column values as a plain list (missing as ``None``)."""
        return self._backend.tolist()

    @property
    def is_vectorized(self) -> bool:
        """True when the storage backend exposes typed arrays for fast kernels."""
        return self._backend.vectorized

    @property
    def backend_kind(self) -> str:
        """Storage backend kind: ``"numpy"`` or ``"object"``."""
        return self._backend.kind

    def is_numeric(self) -> bool:
        """True when every non-missing value is an int or a float."""
        return self._dtype in ("int", "float")

    def is_categorical_like(self) -> bool:
        """Heuristic used by the enhancement system.

        A column is "categorical-like" when the number of distinct values is
        small relative to the number of observations, which is the situation
        in which label-encoded categories become ambiguous for the LLM.
        """
        n = len(self)
        if n == 0:
            return False
        distinct = self.nunique()
        return distinct <= max(20, int(0.05 * n))

    def missing_count(self) -> int:
        """Number of missing values in the column."""
        return self._backend.missing_count()

    # -- transformations ----------------------------------------------------------

    def rename(self, name: str) -> "Column":
        """Return a copy of the column under a new name."""
        return Column._from_backend(name, self._backend, self._dtype)

    def map(self, func) -> "Column":
        """Return a new column with *func* applied to every value."""
        return Column(self.name, [func(v) for v in self])

    def astype(self, dtype: str) -> "Column":
        """Cast the column values to the requested logical dtype.

        Missing values are preserved.  Casting to ``"str"`` uses ``str()``;
        casting to ``"int"``/``"float"`` parses strings when possible.
        """
        if dtype not in ("int", "float", "str"):
            raise ValueError("can only cast to 'int', 'float' or 'str', not {!r}".format(dtype))
        caster = {"int": int, "float": float, "str": str}[dtype]
        converted = [None if v is None else caster(v) for v in self]
        return Column(self.name, converted, dtype=dtype)

    def take(self, indices: Iterable[int]) -> "Column":
        """Return a new column containing the values at *indices* (in order)."""
        return Column._from_backend(self.name, self._backend.take(indices), self._dtype)

    def take_or_missing(self, indices: Iterable[int]) -> "Column":
        """Like :meth:`take` but negative indices produce missing values.

        This is the gather primitive behind vectorized left joins: unmatched
        rows carry the sentinel ``-1`` and come back as ``None``.
        """
        return Column._from_backend(
            self.name, self._backend.take_or_missing(indices), self._dtype
        )

    # -- statistics ---------------------------------------------------------------

    def unique(self) -> list:
        """Distinct non-missing values, in first-seen order."""
        return self._backend.unique()

    def nunique(self) -> int:
        """Number of distinct non-missing values."""
        return len(self.unique())

    def value_counts(self) -> dict:
        """Mapping from value to number of occurrences (missing excluded)."""
        return self._backend.value_counts()

    def factorize(self) -> tuple[np.ndarray, list]:
        """Dictionary-encode the column: ``(codes, categories)``.

        ``codes`` is an int64 array with one entry per row (``-1`` marks a
        missing value); ``categories`` holds the distinct non-missing values
        in first-seen order.  Works on every backend; on dictionary-encoded
        columns it reuses the stored codes.
        """
        return self._backend.factorize()

    def codes(self) -> np.ndarray:
        """Integer codes of a dictionary-encoded view (``-1`` for missing)."""
        return self.factorize()[0]

    def categories(self) -> list:
        """Categories matching :meth:`codes`, in first-seen order."""
        return self.factorize()[1]

    def validity_mask(self) -> np.ndarray:
        """Boolean array, True where a value is present.

        The array may alias backend storage — treat it as read-only.
        """
        return self._backend.validity()

    def as_array(self) -> np.ndarray:
        """Typed ndarray view of a numeric/bool column.

        Float columns return their float64 storage zero-copy (NaN marks
        missing); int/bool columns without missing values return their typed
        storage zero-copy, and are promoted to float64 with NaN otherwise.
        Treat the result as read-only.  Raises ``TypeError`` on non-numeric
        columns — use :meth:`codes` for those.
        """
        from repro.frame.backend import NumericBackend

        if isinstance(self._backend, NumericBackend):
            if self._backend.mask is None:
                return self._backend.data
            return self._backend.as_float_array()
        if self._dtype in ("int", "float", "bool", "empty"):
            return self._backend.as_float_array()
        raise TypeError(
            "as_array() requires a numeric column; {!r} has dtype {!r} "
            "(use codes() for categorical data)".format(self.name, self._dtype)
        )

    def to_numpy(self, dtype=None) -> np.ndarray:
        """Convert the values to a fresh NumPy array.

        Numeric columns become float arrays (missing → NaN); everything else
        becomes an object array.  Unlike :meth:`as_array` the result never
        aliases column storage.
        """
        if dtype is not None:
            return np.asarray(self.values, dtype=dtype)
        if self.is_numeric():
            return self._backend.as_float_array().copy()
        return np.asarray(self.values, dtype=object)

    # -- vectorized helpers used by Table fast paths -------------------------------

    def _indices_equal(self, value) -> np.ndarray | None:
        """Row indices where the column equals *value* (None → fall back).

        *value* must already be normalised: missing is spelled ``None``.
        """
        from repro.frame.backend import CategoricalBackend, NumericBackend

        backend = self._backend
        if isinstance(backend, NumericBackend):
            if value is None:
                return np.flatnonzero(~backend.validity())
            if not isinstance(value, (int, float, bool, np.integer, np.floating, np.bool_)):
                return np.empty(0, dtype=np.intp)
            matches = backend.data == value
            if backend.mask is not None:
                matches &= backend.mask
            return np.flatnonzero(matches)
        if isinstance(backend, CategoricalBackend):
            if value is None:
                return np.flatnonzero(backend.codes < 0)
            try:
                code = backend.category_index().get(value)
            except TypeError:
                return None
            if code is None:
                return np.empty(0, dtype=np.intp)
            return np.flatnonzero(backend.codes == code)
        return None

    def _indices_isin(self, allowed: set) -> np.ndarray | None:
        """Row indices whose value is a member of *allowed* (None → fall back).

        *allowed* must already be normalised: missing is spelled ``None``.
        """
        from repro.frame.backend import CategoricalBackend, NumericBackend

        backend = self._backend
        include_missing = None in allowed
        if isinstance(backend, NumericBackend):
            members = [
                v for v in allowed
                if isinstance(v, (int, float, bool, np.integer, np.floating, np.bool_))
                and v is not None
            ]
            matches = (
                np.isin(backend.data, np.asarray(members)) & backend.validity()
                if members else np.zeros(len(backend), dtype=bool)
            )
            if include_missing:
                matches |= ~backend.validity()
            return np.flatnonzero(matches)
        if isinstance(backend, CategoricalBackend):
            index = backend.category_index()
            member_codes = []
            for value in allowed:
                if value is None:
                    continue
                try:
                    code = index.get(value)
                except TypeError:
                    continue
                if code is not None:
                    member_codes.append(code)
            matches = (
                np.isin(backend.codes, np.asarray(member_codes, dtype=np.int64))
                if member_codes else np.zeros(len(backend), dtype=bool)
            )
            if include_missing:
                matches |= backend.codes < 0
            return np.flatnonzero(matches)
        return None

    def _argsort_indices(self, reverse: bool = False) -> np.ndarray | None:
        """Stable argsort matching ``sorted(..., key=(is_missing, value))``.

        Missing values sort last (first under *reverse*); ties keep their
        original order exactly like Python's stable sort.  Returns ``None``
        when the backend has no vectorized ordering (mixed columns).
        """
        from repro.frame.backend import CategoricalBackend, NumericBackend

        backend = self._backend
        if isinstance(backend, NumericBackend):
            valid = backend.validity()
            data = backend.data
            if data.dtype.kind == "b":
                keys = data.astype(np.int8)
            elif data.dtype.kind == "f":
                keys = np.where(valid, data, 0.0)
            else:
                keys = np.where(valid, data, 0)
        elif isinstance(backend, CategoricalBackend):
            categories = backend.categories
            try:
                order = sorted(range(len(categories)), key=categories.__getitem__)
            except TypeError:
                return None
            valid = backend.codes >= 0
            if categories:
                rank = np.empty(len(categories), dtype=np.int64)
                rank[np.asarray(order, dtype=np.intp)] = np.arange(len(categories))
                keys = np.where(valid, rank[np.maximum(backend.codes, 0)], 0)
            else:
                keys = np.zeros(len(backend), dtype=np.int64)
        else:
            return None
        if not reverse:
            # primary: missing flag ascending (present first); secondary: value
            return np.lexsort((keys, (~valid).astype(np.int8)))
        # reverse sorts the (missing, value) tuple descending: missing rows
        # first, then values descending, ties in original order
        return np.lexsort((-keys, valid.astype(np.int8)))

    def _codes_with_missing(self) -> tuple[np.ndarray, list]:
        """Like :meth:`factorize` but giving missing values their own key.

        Returns ``(codes, keys)`` where ``keys`` lists every distinct value in
        first-seen order *including* ``None`` when the column has missing
        entries, and ``codes[i]`` indexes into ``keys``.  This matches the
        grouping semantics of a Python dict keyed on raw values.
        """
        codes, categories = self.factorize()
        missing = codes < 0
        if not missing.any():
            return codes, list(categories)
        first_missing = int(np.argmax(missing))
        if categories:
            # first occurrence of each code; codes are first-seen ordered so
            # the occurrence positions are ascending in code order
            first_seen = np.unique(codes[~missing], return_index=True)[1]
            positions = np.flatnonzero(~missing)[first_seen]
            insert_at = int(np.searchsorted(positions, first_missing))
        else:
            insert_at = 0
        keys = list(categories[:insert_at]) + [None] + list(categories[insert_at:])
        shifted = codes + (codes >= insert_at)
        shifted[missing] = insert_at
        return shifted, keys
