"""Exceptions raised by the tabular substrate."""


class FrameError(Exception):
    """Base class for all errors raised by :mod:`repro.frame`."""


class ColumnNotFoundError(FrameError, KeyError):
    """A column name was requested that does not exist in the table."""

    def __init__(self, name, available=()):
        self.name = name
        self.available = list(available)
        message = "column {!r} not found".format(name)
        if self.available:
            message += " (available: {})".format(", ".join(map(repr, self.available)))
        super().__init__(message)


class DuplicateColumnError(FrameError, ValueError):
    """Two columns with the same name were supplied to a table."""

    def __init__(self, name):
        self.name = name
        super().__init__("duplicate column name {!r}".format(name))


class LengthMismatchError(FrameError, ValueError):
    """Columns of differing lengths were supplied to a table."""

    def __init__(self, expected, got, name=None):
        self.expected = expected
        self.got = got
        self.name = name
        where = " for column {!r}".format(name) if name is not None else ""
        super().__init__(
            "length mismatch{}: expected {} values, got {}".format(where, expected, got)
        )


class SchemaError(FrameError, ValueError):
    """Two tables that must share a schema do not."""
