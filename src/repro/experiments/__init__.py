"""Experiment harness: one entry point per table / figure of the paper.

The benchmark suite, the CLI and the examples all drive the same functions in
:mod:`repro.experiments.figures`, so a figure's definition (which pipelines,
which metrics, which aggregation) lives in exactly one place.
"""

from repro.experiments.harness import (
    ExperimentConfig,
    TrialResult,
    run_pipeline_on_trial,
    run_trials,
)
from repro.experiments.figures import (
    fig2_token_ambiguity,
    fig4_flattening_bias,
    fig5_correlation_heatmap,
    fig7_overall_fidelity,
    fig8_semantic_enhancement,
    fig9_connecting_setups,
    fig10_ablation,
    dataset_statistics,
    sec442_special_transform,
)

__all__ = [
    "ExperimentConfig",
    "TrialResult",
    "run_pipeline_on_trial",
    "run_trials",
    "fig2_token_ambiguity",
    "fig4_flattening_bias",
    "fig5_correlation_heatmap",
    "fig7_overall_fidelity",
    "fig8_semantic_enhancement",
    "fig9_connecting_setups",
    "fig10_ablation",
    "dataset_statistics",
    "sec442_special_transform",
]
