"""Trial runner shared by every experiment.

A *trial* is one task-ID subgroup of the DIGIX-like dataset (Sec. 4.1.1: the
paper runs eight independent trials).  The harness runs a named set of
pipeline configurations on each trial, evaluates every synthetic output
against that trial's original flat reference, and returns the per-trial
fidelity reports keyed by configuration name.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.datasets.digix import DigixConfig, DigixDataset, generate_digix_like
from repro.evaluation.fidelity import FidelityEvaluator, FidelityReport
from repro.pipelines.base import MultiTablePipeline
from repro.pipelines.config import PipelineConfig

#: Environment variable that scales the experiment size (1 = default quick run).
SCALE_ENV_VAR = "REPRO_BENCH_SCALE"


def experiment_scale() -> int:
    """Integer scale factor taken from ``REPRO_BENCH_SCALE`` (default 1)."""
    try:
        return max(1, int(os.environ.get(SCALE_ENV_VAR, "1")))
    except ValueError:
        return 1


@dataclass(frozen=True)
class ExperimentConfig:
    """Size of an experiment run.

    The defaults are deliberately small so the full benchmark suite finishes
    in minutes; set ``REPRO_BENCH_SCALE`` (or pass explicit values) to move
    toward the paper's eight trials of 750+ observations.
    """

    n_trials: int = 2
    n_users_per_task: int = 12
    ads_rows_per_user: tuple[int, int] = (2, 4)
    feeds_rows_per_user: tuple[int, int] = (2, 4)
    seed: int = 7

    @classmethod
    def from_scale(cls, scale: int | None = None, seed: int = 7) -> "ExperimentConfig":
        """Build a config whose size grows with the scale factor."""
        scale = experiment_scale() if scale is None else max(1, int(scale))
        return cls(
            n_trials=min(8, 2 * scale),
            n_users_per_task=12 * scale,
            ads_rows_per_user=(2, 3 + scale),
            feeds_rows_per_user=(2, 3 + scale),
            seed=seed,
        )

    def dataset(self) -> DigixDataset:
        """Generate the DIGIX-like dataset for this experiment size."""
        return generate_digix_like(DigixConfig(
            n_tasks=self.n_trials,
            n_users_per_task=self.n_users_per_task,
            ads_rows_per_user=self.ads_rows_per_user,
            feeds_rows_per_user=self.feeds_rows_per_user,
            seed=self.seed,
        ))


@dataclass
class TrialResult:
    """Fidelity reports of every configuration on one trial."""

    trial_id: object
    reports: dict[str, FidelityReport] = field(default_factory=dict)


def run_pipeline_on_trial(pipeline: MultiTablePipeline, trial: DigixDataset,
                          evaluator: FidelityEvaluator | None = None,
                          label: str = "") -> FidelityReport:
    """Run one pipeline on one trial and return its fidelity report."""
    evaluator = evaluator or FidelityEvaluator()
    result = pipeline.run(trial.ads, trial.feeds)
    return evaluator.evaluate(result.original_flat, result.synthetic_flat,
                              label=label or pipeline.name)


def run_trials(pipelines: dict[str, MultiTablePipeline], dataset: DigixDataset,
               evaluator: FidelityEvaluator | None = None,
               max_trials: int | None = None) -> list[TrialResult]:
    """Run every named pipeline on every trial of the dataset."""
    evaluator = evaluator or FidelityEvaluator()
    results: list[TrialResult] = []
    for index, trial in enumerate(dataset.trials()):
        if max_trials is not None and index >= max_trials:
            break
        trial_result = TrialResult(trial_id=trial.ads.column("task_id")[0] if trial.ads.num_rows else index)
        for name, pipeline in pipelines.items():
            trial_result.reports[name] = run_pipeline_on_trial(
                pipeline, trial, evaluator=evaluator, label=name
            )
        results.append(trial_result)
    return results


def default_pipeline_config(seed: int = 0, drop_columns: tuple[str, ...] = ("task_id",),
                            **overrides) -> PipelineConfig:
    """The pipeline configuration the experiments share.

    ``task_id`` is dropped because it is constant within a trial; the noisy
    pseudo-ID columns are dropped by the pipelines themselves.
    """
    return PipelineConfig(seed=seed, drop_columns=drop_columns, **overrides)
