"""One function per table / figure in the paper's evaluation section.

Each function returns a dictionary with at least a ``"rows"`` key — a list of
flat dictionaries that print as the same rows/series the paper reports — plus
whatever raw objects the benchmarks and tests want to assert on.  See
EXPERIMENTS.md for the paper-vs-measured record.
"""

from __future__ import annotations

from statistics import mean

import numpy as np

from repro.connecting.connector import ConnectorConfig, CrossTableConnector
from repro.connecting.flatten import direct_flatten, flattening_report
from repro.connecting.preprocessing import remove_noisy_columns
from repro.datasets.digix import DigixDataset, PSEUDO_ID_COLUMNS
from repro.datasets.toy import fig2_single_table, fig4_child_tables
from repro.enhancement.differentiability import DifferentiabilityTransform
from repro.enhancement.enhancer import EnhancerConfig
from repro.enhancement.special import CaretToAndTransform, caret_to_and
from repro.evaluation.ablation import compare_reports, summarize_trials
from repro.evaluation.fidelity import FidelityEvaluator
from repro.experiments.harness import (
    ExperimentConfig,
    TrialResult,
    default_pipeline_config,
    run_trials,
)
from repro.llm.embeddings import CooccurrenceEmbedding
from repro.llm.tokenizer import WordTokenizer
from repro.pipelines.config import PipelineConfig
from repro.pipelines.derec import DERECPipeline
from repro.pipelines.flatten_baseline import DirectFlattenPipeline
from repro.pipelines.greater import GReaTERPipeline
from repro.stats.correlation import association_matrix
from repro.textenc.encoder import TextualEncoder

#: Connector used whenever a figure needs "the" GReaTER connecting setup.
_DEFAULT_CONNECTOR = ConnectorConfig(independence_method="threshold_mean",
                                     remove_noisy_columns=False)


# ---------------------------------------------------------------------------
# aggregation helpers
# ---------------------------------------------------------------------------

def aggregate_reports(results: list[TrialResult]) -> list[dict]:
    """Per-configuration aggregate fidelity statistics across trials."""
    if not results:
        raise ValueError("no trial results to aggregate")
    names = list(results[0].reports.keys())
    rows = []
    for name in names:
        p_values: list[float] = []
        w_distances: list[float] = []
        fractions: list[float] = []
        for trial in results:
            report = trial.reports[name]
            p_values.extend(report.p_values())
            w_distances.extend(report.w_distances())
            fractions.append(report.fraction_above(0.05))
        rows.append({
            "configuration": name,
            "trials": len(results),
            "pairs": len(p_values),
            "mean_p_value": round(mean(p_values), 4),
            "frac_p_above_0.05": round(mean(fractions), 4),
            "mean_w_distance": round(mean(w_distances), 4),
        })
    return rows


def _greater_config(seed: int, semantic_level: str = "none",
                    special: bool = False,
                    connector: ConnectorConfig = _DEFAULT_CONNECTOR) -> PipelineConfig:
    return default_pipeline_config(
        seed=seed,
        enhancer=EnhancerConfig(semantic_level=semantic_level,
                                apply_special_transform=special, seed=seed),
        connector=connector,
    )


def _baseline_config(seed: int, semantic_level: str = "none") -> PipelineConfig:
    return default_pipeline_config(
        seed=seed,
        enhancer=EnhancerConfig(semantic_level=semantic_level, seed=seed),
    )


# ---------------------------------------------------------------------------
# Fig. 2 — ambiguous-label tokenization
# ---------------------------------------------------------------------------

def fig2_token_ambiguity() -> dict:
    """Quantify the Fig. 2 ambiguity and how the enhancement removes it.

    Reports, for the toy table, how many surface tokens are shared across
    columns and the context entropy of the shared tokens, before and after the
    differentiability-based transformation.
    """
    table = fig2_single_table()
    encoder = TextualEncoder()
    tokenizer = WordTokenizer()

    def analyse(frame, label):
        labeled = []
        for name in frame.column_names:
            for value in frame.column(name):
                labeled.append((name, value))
        collisions = tokenizer.token_collisions(labeled)
        corpus = encoder.encode_table(frame, permute=False)
        embedding = CooccurrenceEmbedding(tokenizer, window=4).fit(corpus)
        shared_entropy = [embedding.context_entropy(token) for token in collisions]
        return {
            "setup": label,
            "shared_tokens": len(collisions),
            "columns_per_shared_token": round(
                mean(len(cols) for cols in collisions.values()), 2
            ) if collisions else 0.0,
            "mean_context_entropy_of_shared_tokens": round(mean(shared_entropy), 3)
            if shared_entropy else 0.0,
        }

    before = analyse(table, "original (ambiguous labels)")
    enhanced, _ = DifferentiabilityTransform(seed=0).fit_transform(
        table, columns=["Lunch", "Dinner", "Access Device", "Genre"]
    )
    after = analyse(enhanced, "after differentiability transform")
    return {"rows": [before, after], "table": table, "enhanced": enhanced}


# ---------------------------------------------------------------------------
# Fig. 4 — flattening dimensionality and engaged-subject bias
# ---------------------------------------------------------------------------

def fig4_flattening_bias() -> dict:
    """Reproduce the Fig. 4 walk-through on the toy Yin/Grace/Anson tables."""
    meals, viewing, subject = fig4_child_tables()
    flattened = direct_flatten(meals, viewing, subject)
    flat_report = flattening_report(meals, viewing, flattened, subject)

    connector = CrossTableConnector(ConnectorConfig(
        independence_method="threshold_mean", remove_noisy_columns=False, seed=0,
    ))
    connection = connector.connect(meals, viewing, subject)

    rows = [
        {
            "setup": "direct flattening",
            "rows": flat_report.rows_flattened,
            "columns": flat_report.columns_flattened,
            "max_subject_share": round(flat_report.max_subject_share, 3),
        },
        {
            "setup": "cross-table connecting",
            "rows": connection.connected.num_rows,
            "columns": connection.connected.num_columns,
            "max_subject_share": round(
                max(
                    count / connection.connected.num_rows
                    for count in _subject_counts(connection.connected, subject).values()
                ), 3,
            ) if connection.connected.num_rows else 0.0,
        },
    ]
    return {
        "rows": rows,
        "flattened": flattened,
        "connection": connection,
        "flattening_report": flat_report,
    }


def _subject_counts(table, subject_column):
    counts: dict = {}
    for value in table.column(subject_column):
        counts[value] = counts.get(value, 0) + 1
    return counts


# ---------------------------------------------------------------------------
# Fig. 5 — correlation heatmap before/after noisy-column removal
# ---------------------------------------------------------------------------

def fig5_correlation_heatmap(dataset: DigixDataset | None = None,
                             config: ExperimentConfig | None = None) -> dict:
    """Association matrix of the flattened data before and after removing
    the pseudo-ID columns (Sec. 4.1.2)."""
    if dataset is None:
        dataset = (config or ExperimentConfig()).dataset()
    trial = dataset.trials()[0]
    flattened = direct_flatten(trial.ads.drop("task_id"), trial.feeds.drop("task_id"),
                               dataset.subject_column)
    feature_columns = [name for name in flattened.column_names
                       if name != dataset.subject_column]

    before_matrix, before_names = association_matrix(flattened, feature_columns)
    cleaned, removed = remove_noisy_columns(flattened, columns=PSEUDO_ID_COLUMNS)
    after_columns = [name for name in cleaned.column_names if name != dataset.subject_column]
    after_matrix, after_names = association_matrix(cleaned, after_columns)

    def off_diag_mean(matrix):
        mask = ~np.eye(matrix.shape[0], dtype=bool)
        return float(matrix[mask].mean()) if matrix.size > 1 else 0.0

    noisy_rows = [name for name in before_names if name in PSEUDO_ID_COLUMNS]
    noisy_mean = 0.0
    if noisy_rows:
        indices = [before_names.index(name) for name in noisy_rows]
        values = []
        for i in indices:
            values.extend(before_matrix[i, j] for j in range(len(before_names)) if j != i)
        noisy_mean = float(mean(values))

    rows = [
        {"setup": "before removal", "columns": len(before_names),
         "mean_offdiag_association": round(off_diag_mean(before_matrix), 4),
         "mean_association_of_pseudo_id_columns": round(noisy_mean, 4)},
        {"setup": "after removal", "columns": len(after_names),
         "mean_offdiag_association": round(off_diag_mean(after_matrix), 4),
         "removed_columns": ", ".join(removed)},
    ]
    return {
        "rows": rows,
        "before": (before_matrix, before_names),
        "after": (after_matrix, after_names),
        "removed": removed,
    }


# ---------------------------------------------------------------------------
# Fig. 7 — overall fidelity: GReaTER vs DEREC vs direct flattening
# ---------------------------------------------------------------------------

def fig7_overall_fidelity(config: ExperimentConfig | None = None,
                          evaluator: FidelityEvaluator | None = None) -> dict:
    """The headline comparison (Fig. 7): p-value distributions of the three setups."""
    config = config or ExperimentConfig()
    dataset = config.dataset()
    seed = config.seed
    pipelines = {
        "direct_flatten": DirectFlattenPipeline(_baseline_config(seed)),
        "derec": DERECPipeline(_baseline_config(seed)),
        "greater": GReaTERPipeline(_greater_config(seed, semantic_level="understandability")),
    }
    results = run_trials(pipelines, dataset, evaluator=evaluator)
    return {"rows": aggregate_reports(results), "results": results}


# ---------------------------------------------------------------------------
# Fig. 8 — semantic enhancement setups
# ---------------------------------------------------------------------------

def fig8_semantic_enhancement(config: ExperimentConfig | None = None,
                              evaluator: FidelityEvaluator | None = None) -> dict:
    """No mapping vs differentiability vs understandability (connecting fixed)."""
    config = config or ExperimentConfig()
    dataset = config.dataset()
    seed = config.seed
    pipelines = {
        "greater_no_mapping": GReaTERPipeline(_greater_config(seed, "none")),
        "greater_differentiability": GReaTERPipeline(_greater_config(seed, "differentiability")),
        "greater_understandability": GReaTERPipeline(_greater_config(seed, "understandability")),
    }
    results = run_trials(pipelines, dataset, evaluator=evaluator)
    return {"rows": aggregate_reports(results), "results": results}


# ---------------------------------------------------------------------------
# Fig. 9 — cross-table connecting setups
# ---------------------------------------------------------------------------

def fig9_connecting_setups(config: ExperimentConfig | None = None,
                           evaluator: FidelityEvaluator | None = None) -> dict:
    """Direct flatten vs DEREC vs the three connecting setups (p-value and W-distance)."""
    config = config or ExperimentConfig()
    dataset = config.dataset()
    seed = config.seed

    def connector(method):
        return ConnectorConfig(independence_method=method, remove_noisy_columns=False)

    pipelines = {
        "direct_flatten": DirectFlattenPipeline(_baseline_config(seed)),
        "derec": DERECPipeline(_baseline_config(seed)),
        "connect_threshold_mean": GReaTERPipeline(
            _greater_config(seed, "none", connector=connector("threshold_mean"))),
        "connect_threshold_median": GReaTERPipeline(
            _greater_config(seed, "none", connector=connector("threshold_median"))),
        "connect_hierarchical": GReaTERPipeline(
            _greater_config(seed, "none", connector=connector("hierarchical"))),
    }
    results = run_trials(pipelines, dataset, evaluator=evaluator)
    return {"rows": aggregate_reports(results), "results": results}


# ---------------------------------------------------------------------------
# Fig. 10 — ablation table
# ---------------------------------------------------------------------------

def fig10_ablation(config: ExperimentConfig | None = None,
                   evaluator: FidelityEvaluator | None = None) -> dict:
    """Stepwise ablation against the direct-flattening baseline (Fig. 10 counts)."""
    config = config or ExperimentConfig()
    dataset = config.dataset()
    seed = config.seed
    pipelines = {
        "direct_flatten": DirectFlattenPipeline(_baseline_config(seed)),
        "connecting_only": GReaTERPipeline(_greater_config(seed, "none")),
        "connecting_plus_semantic": GReaTERPipeline(_greater_config(seed, "understandability")),
        "connecting_semantic_special": GReaTERPipeline(
            _greater_config(seed, "understandability", special=True)),
    }
    results = run_trials(pipelines, dataset, evaluator=evaluator)

    rows = []
    summaries = {}
    for candidate in ("connecting_only", "connecting_plus_semantic", "connecting_semantic_special"):
        comparisons = [
            compare_reports(trial.reports["direct_flatten"], trial.reports[candidate])
            for trial in results
        ]
        summary = summarize_trials(comparisons)
        summaries[candidate] = summary
        rows.append(summary.as_row())
    return {"rows": rows, "results": results, "summaries": summaries}


# ---------------------------------------------------------------------------
# Sec. 4.4.2 — dataset-specific caret -> 'and' transformation
# ---------------------------------------------------------------------------

def sec442_special_transform(config: ExperimentConfig | None = None,
                             evaluator: FidelityEvaluator | None = None) -> dict:
    """GReaTER with and without the caret→'and' rewrite of the interest columns."""
    config = config or ExperimentConfig()
    dataset = config.dataset()
    seed = config.seed
    pipelines = {
        "greater_standard": GReaTERPipeline(_greater_config(seed, "understandability")),
        "greater_special_transform": GReaTERPipeline(
            _greater_config(seed, "understandability", special=True)),
    }
    results = run_trials(pipelines, dataset, evaluator=evaluator)

    # also report the transform itself on a sample of values
    trial = dataset.trials()[0]
    transform = CaretToAndTransform()
    sample_values = trial.feeds.column("u_newsCatInterests").values[:3]
    examples = [{"original": value, "transformed": caret_to_and(value)}
                for value in sample_values]
    return {"rows": aggregate_reports(results), "results": results,
            "examples": examples, "selected_columns": transform.select_columns(trial.feeds)}


# ---------------------------------------------------------------------------
# Sec. 4.1.1 / 4.1.2 — dataset statistics
# ---------------------------------------------------------------------------

def dataset_statistics(dataset: DigixDataset | None = None,
                       config: ExperimentConfig | None = None) -> dict:
    """Check the generator reproduces the published dataset shape."""
    if dataset is None:
        dataset = (config or ExperimentConfig()).dataset()
    trials = dataset.trials()
    rows_per_trial = [trial.ads.num_rows + trial.feeds.num_rows for trial in trials]
    rows = [{
        "click_through_rate": round(dataset.overall_click_rate(), 4),
        "n_task_subgroups": len(trials),
        "min_rows_per_subgroup": min(rows_per_trial),
        "max_rows_per_subgroup": max(rows_per_trial),
        "ads_rows": dataset.ads.num_rows,
        "feeds_rows": dataset.feeds.num_rows,
    }]
    return {"rows": rows, "dataset": dataset}
