"""A deterministic synthetic multi-table relational dataset.

The schema subsystem (:mod:`repro.schema`) needs a database with every
shape the paper's two-table trial lacks: depth > 2 (grandchildren),
multiple child tables under one parent, a secondary foreign key and a
standalone table.  :func:`generate_retail_like` produces a retail-flavoured
five-table database with exactly that graph::

    customers (root)          stores (standalone root)
      ├── orders                   ▲
      │     └── items              │ (secondary key on reviews)
      └── reviews ────────────────-┘

Values are drawn from small categorical vocabularies with per-parent
biases, so cross-table dependencies exist for the synthesizers to learn;
everything is a pure function of the config (``random.Random`` only).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.frame.table import Table

REGIONS = ("north", "south", "east", "west")
TIERS = ("gold", "silver", "bronze")
CHANNELS = ("web", "app", "phone")
CATEGORIES = ("grocery", "toys", "books", "garden")
CITIES = ("austin", "boston", "denver", "portland")


@dataclass(frozen=True)
class RetailConfig:
    """Row counts and branching of the synthetic retail database."""

    n_customers: int = 20
    n_stores: int = 4
    max_orders_per_customer: int = 3
    max_items_per_order: int = 3
    max_reviews_per_customer: int = 2
    seed: int = 0

    def __post_init__(self):
        if min(self.n_customers, self.n_stores) < 1:
            raise ValueError("n_customers and n_stores must be positive")


def generate_retail_like(config: RetailConfig | None = None) -> dict[str, Table]:
    """The five-table retail database as ``{table name: Table}``."""
    config = config or RetailConfig()
    rng = random.Random(config.seed)

    customers = []
    for i in range(config.n_customers):
        customers.append({
            "customer_id": "c{}".format(i),
            "region": rng.choice(REGIONS),
            "tier": rng.choice(TIERS),
        })

    stores = [{"store_id": "s{}".format(i), "city": rng.choice(CITIES)}
              for i in range(config.n_stores)]

    orders = []
    for customer in customers:
        # gold customers order more, keeping a learnable dependency
        bonus = 1 if customer["tier"] == "gold" else 0
        for _ in range(rng.randrange(0, config.max_orders_per_customer + 1) + bonus):
            orders.append({
                "order_id": "o{}".format(len(orders)),
                "customer_id": customer["customer_id"],
                "channel": rng.choice(CHANNELS),
                "priority": rng.randrange(1, 4),
            })

    items = []
    for order in orders:
        for _ in range(rng.randrange(1, config.max_items_per_order + 1)):
            items.append({
                "item_id": "i{}".format(len(items)),
                "order_id": order["order_id"],
                "category": rng.choice(CATEGORIES),
                "qty": rng.randrange(1, 5),
            })

    reviews = []
    for customer in customers:
        for _ in range(rng.randrange(0, config.max_reviews_per_customer + 1)):
            reviews.append({
                "review_id": "r{}".format(len(reviews)),
                "customer_id": customer["customer_id"],
                "store_id": rng.choice(stores)["store_id"],
                "stars": rng.randrange(1, 6),
            })

    columns = {
        "customers": ("customer_id", "region", "tier"),
        "stores": ("store_id", "city"),
        "orders": ("order_id", "customer_id", "channel", "priority"),
        "items": ("item_id", "order_id", "category", "qty"),
        "reviews": ("review_id", "customer_id", "store_id", "stars"),
    }
    records = {"customers": customers, "stores": stores, "orders": orders,
               "items": items, "reviews": reviews}
    return {name: Table.from_records(records[name], columns=columns[name])
            for name in columns}
