"""Toy tables from the paper's illustrative figures.

These are used by the examples, tests and the Fig. 2 / Fig. 4 benchmarks to
demonstrate the ambiguity and bias problems on data small enough to inspect by
hand.
"""

from __future__ import annotations

from repro.frame.table import Table


def fig2_single_table() -> Table:
    """The Fig. 2 example: repeated numerical labels across unrelated features.

    The row 'Name: Grace, Lunch: 1, Dinner: 2, Access Device: 1, Genre: 1'
    shows three different '1's (a lunch dish, a device and a genre) that
    tokenize identically.
    """
    return Table.from_records(
        [
            {"Name": "Grace", "Lunch": 1, "Dinner": 2, "Access Device": 1, "Genre": 1},
            {"Name": "Yin", "Lunch": 2, "Dinner": 1, "Access Device": 2, "Genre": 2},
            {"Name": "Anson", "Lunch": 1, "Dinner": 3, "Access Device": 1, "Genre": 3},
            {"Name": "Maya", "Lunch": 3, "Dinner": 2, "Access Device": 2, "Genre": 1},
            {"Name": "Leo", "Lunch": 2, "Dinner": 1, "Access Device": 1, "Genre": 2},
            {"Name": "Iris", "Lunch": 1, "Dinner": 3, "Access Device": 2, "Genre": 3},
        ],
        columns=["Name", "Lunch", "Dinner", "Access Device", "Genre"],
    )


def fig4_child_tables() -> tuple[Table, Table, str]:
    """The Fig. 4 example: two child tables whose flattening over-represents 'Yin'.

    Returns ``(meals_table, viewing_table, subject_column)``.  Yin has many
    rows in both tables (the engaged subject); Grace and Anson have few, and
    Anson only ever watches 'Anime'.
    """
    meals = Table.from_records(
        [
            {"Name": "Yin", "Lunch": "Spaghetti", "Dinner": "Chicken"},
            {"Name": "Yin", "Lunch": "Spaghetti", "Dinner": "Steak"},
            {"Name": "Yin", "Lunch": "Rice", "Dinner": "Chicken"},
            {"Name": "Yin", "Lunch": "Noodles", "Dinner": "Steak"},
            {"Name": "Grace", "Lunch": "Rice", "Dinner": "Steak"},
            {"Name": "Anson", "Lunch": "Sandwich", "Dinner": "Curry"},
        ],
        columns=["Name", "Lunch", "Dinner"],
    )
    viewing = Table.from_records(
        [
            {"Name": "Yin", "Access Device": "Desktop", "Genre": "Action"},
            {"Name": "Yin", "Access Device": "Desktop", "Genre": "Comedy"},
            {"Name": "Grace", "Access Device": "Laptop", "Genre": "Action"},
            {"Name": "Grace", "Access Device": "Phone", "Genre": "Drama"},
            {"Name": "Anson", "Access Device": "Phone", "Genre": "Anime"},
        ],
        columns=["Name", "Access Device", "Genre"],
    )
    return meals, viewing, "Name"


def fig11_membership_and_visits() -> tuple[Table, Table, str]:
    """The Fig. 11/12 example: a membership (parent) table and a visit logbook (child).

    Gender and birth date are contextual (constant per subject across visits);
    the visit details vary.  Returns ``(visits_child_table_with_contextual_columns,
    expected_parent_table, subject_column)`` so callers can check contextual
    extraction against the known ground truth.
    """
    visits = Table.from_records(
        [
            {"member_id": "M1", "gender": "F", "birth_date": "1990-04-01",
             "visit_date": "2024-01-03", "spend": 25},
            {"member_id": "M1", "gender": "F", "birth_date": "1990-04-01",
             "visit_date": "2024-02-14", "spend": 40},
            {"member_id": "M1", "gender": "F", "birth_date": "1990-04-01",
             "visit_date": "2024-03-22", "spend": 18},
            {"member_id": "M2", "gender": "M", "birth_date": "1985-11-20",
             "visit_date": "2024-01-09", "spend": 60},
            {"member_id": "M2", "gender": "M", "birth_date": "1985-11-20",
             "visit_date": "2024-04-02", "spend": 35},
            {"member_id": "M3", "gender": "F", "birth_date": "2001-06-15",
             "visit_date": "2024-02-01", "spend": 12},
        ],
        columns=["member_id", "gender", "birth_date", "visit_date", "spend"],
    )
    parent = Table.from_records(
        [
            {"member_id": "M1", "gender": "F", "birth_date": "1990-04-01"},
            {"member_id": "M2", "gender": "M", "birth_date": "1985-11-20"},
            {"member_id": "M3", "gender": "F", "birth_date": "2001-06-15"},
        ],
        columns=["member_id", "gender", "birth_date"],
    )
    return visits, parent, "member_id"
