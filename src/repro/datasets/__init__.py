"""Datasets used by the experiments.

* :mod:`repro.datasets.digix` — a deterministic synthetic generator that
  reproduces the statistical shape of the DIGIX 2022 Advertisement + Feeds
  CTR dataset the paper evaluates on (two child tables sharing user IDs,
  task-ID subgroups, ~1.55% click-through rate, mostly weakly associated
  categorical features, pseudo-ID columns, caret-separated interest lists).
* :mod:`repro.datasets.toy` — the small illustrative tables of Fig. 2, Fig. 4
  and Fig. 11 (Grace/Yin/Anson, membership + visit logbook).
* :mod:`repro.datasets.relational` — a five-table retail-flavoured database
  (3 levels deep, two children under one parent, a secondary foreign key,
  a standalone table) exercising the schema subsystem
  (:mod:`repro.schema`).
"""

from repro.datasets.digix import DigixConfig, DigixDataset, generate_digix_like
from repro.datasets.relational import RetailConfig, generate_retail_like
from repro.datasets.toy import (
    fig2_single_table,
    fig4_child_tables,
    fig11_membership_and_visits,
)

__all__ = [
    "DigixConfig",
    "DigixDataset",
    "RetailConfig",
    "generate_digix_like",
    "generate_retail_like",
    "fig2_single_table",
    "fig4_child_tables",
    "fig11_membership_and_visits",
]
