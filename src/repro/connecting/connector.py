"""The Cross-table Connecting Method, end to end (Sec. 3.3, Fig. 4 steps 1-3).

Given two child tables sharing a subject key, the connector:

0. removes pseudo-ID columns whose association scores would be misleading
   (Sec. 4.1.2);
1. flattens the two tables on the subject key;
2. determines which columns are independent of everything else (threshold
   separation or hierarchical clustering);
3. removes those columns and the duplicate rows that removal exposes;
4. bootstrap-appends the independent columns back from per-subject pools.

The result is a single fused child table whose many-to-many structure has been
turned into a one-to-many structure with respect to the parent table.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.connecting.flatten import FlatteningReport, direct_flatten, flattening_report
from repro.connecting.independence import (
    HierarchicalClusteringSeparation,
    IndependenceResult,
    ThresholdSeparation,
)
from repro.connecting.preprocessing import NoisyColumnFilter
from repro.connecting.reduction import ReductionReport, reduce_dimension
from repro.connecting.sampling import BootstrapAppender
from repro.frame.table import Table

#: Supported independence-determination setups (Sec. 4.1.6 / Fig. 9).
INDEPENDENCE_METHODS = ("threshold_mean", "threshold_median", "hierarchical", "none")


@dataclass(frozen=True)
class ConnectorConfig:
    """Configuration of the Cross-table Connecting Method.

    Parameters
    ----------
    independence_method:
        ``"threshold_mean"`` / ``"threshold_median"`` (the 'up-and-stay'
        threshold separation with the matrix mean / median as threshold),
        ``"hierarchical"`` (average-linkage clustering), or ``"none"``
        (skip independence handling — pure direct flattening).
    remove_noisy_columns:
        Apply the Sec. 4.1.2 pseudo-ID filter before measuring associations.
    per_subject_pools:
        Use per-subject bootstrap pools when re-appending independent columns
        (the paper's validity guarantee); ``False`` is the ablation contrast.
    """

    independence_method: str = "threshold_mean"
    remove_noisy_columns: bool = True
    per_subject_pools: bool = True
    noisy_uniqueness_threshold: float = 0.8
    seed: int = 0

    def __post_init__(self):
        if self.independence_method not in INDEPENDENCE_METHODS:
            raise ValueError(
                "independence_method must be one of {}, got {!r}".format(
                    INDEPENDENCE_METHODS, self.independence_method
                )
            )


@dataclass
class ConnectionResult:
    """Everything the connector produced, for downstream synthesis and reporting."""

    connected: Table
    flattened: Table
    subject_column: str
    independence: IndependenceResult | None
    reduction: ReductionReport | None
    flattening: FlatteningReport
    removed_noisy_columns: tuple[str, ...] = ()
    appended_columns: tuple[str, ...] = ()


class CrossTableConnector:
    """Fuse two child tables into one low-noise child table."""

    def __init__(self, config: ConnectorConfig | None = None):
        self.config = config or ConnectorConfig()

    def _independence_strategy(self):
        method = self.config.independence_method
        if method == "threshold_mean":
            return ThresholdSeparation(threshold="mean")
        if method == "threshold_median":
            return ThresholdSeparation(threshold="median")
        if method == "hierarchical":
            return HierarchicalClusteringSeparation()
        return None

    def connect(self, first: Table, second: Table, subject_column: str) -> ConnectionResult:
        """Run the full method and return the fused table with its diagnostics."""
        flattened = direct_flatten(first, second, subject_column)
        if flattened.num_rows == 0:
            raise ValueError(
                "flattening produced no rows; the tables share no subject in {!r}".format(subject_column)
            )
        flat_report = flattening_report(first, second, flattened, subject_column)

        removed_noisy: tuple[str, ...] = ()
        working = flattened
        if self.config.remove_noisy_columns:
            noisy_filter = NoisyColumnFilter(
                uniqueness_threshold=self.config.noisy_uniqueness_threshold,
                protect_columns=(subject_column,),
            )
            working, removed = noisy_filter.apply(working)
            removed_noisy = tuple(removed)

        strategy = self._independence_strategy()
        if strategy is None:
            return ConnectionResult(
                connected=working,
                flattened=flattened,
                subject_column=subject_column,
                independence=None,
                reduction=None,
                flattening=flat_report,
                removed_noisy_columns=removed_noisy,
                appended_columns=(),
            )

        feature_columns = [name for name in working.column_names if name != subject_column]
        independence = strategy.determine(working, feature_columns)
        independent = list(independence.independent_columns)

        reduced, reduction = reduce_dimension(working, independent)
        if independent:
            appender = BootstrapAppender(
                subject_column=subject_column,
                per_subject=self.config.per_subject_pools,
                seed=self.config.seed,
            ).fit(working, independent)
            connected = appender.append(reduced, seed=self.config.seed)
            appended = tuple(appender.columns)
        else:
            connected = reduced
            appended = ()

        return ConnectionResult(
            connected=connected,
            flattened=flattened,
            subject_column=subject_column,
            independence=independence,
            reduction=reduction,
            flattening=flat_report,
            removed_noisy_columns=removed_noisy,
            appended_columns=appended,
        )
