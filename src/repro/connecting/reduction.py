"""Dimension reduction by duplicate-row removal (Sec. 3.3.2).

Removing an independent column from the flattened table exposes duplicate
rows (Fig. 4: with 'Genre' removed, 'Yin, Spaghetti, Chicken, Desktop'
appears twice); dropping those duplicates shrinks the table and attenuates the
engaged-subject bias the duplicates encode.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.frame.table import Table


@dataclass(frozen=True)
class ReductionReport:
    """What the reduction removed."""

    removed_columns: tuple[str, ...]
    rows_before: int
    rows_after: int

    @property
    def rows_removed(self) -> int:
        return self.rows_before - self.rows_after

    @property
    def reduction_ratio(self) -> float:
        """Fraction of rows removed."""
        if self.rows_before == 0:
            return 0.0
        return self.rows_removed / self.rows_before


def reduce_dimension(table: Table, independent_columns: Sequence[str]) -> tuple[Table, ReductionReport]:
    """Drop the independent columns and the duplicate rows that removal exposes.

    Returns ``(reduced_table, report)``.  Columns not present in the table are
    ignored (they may have been removed by earlier preprocessing).
    """
    present = [name for name in independent_columns if name in table.column_names]
    removed = table.drop(present) if present else table
    reduced = removed.drop_duplicates()
    report = ReductionReport(
        removed_columns=tuple(present),
        rows_before=table.num_rows,
        rows_after=reduced.num_rows,
    )
    return reduced, report
