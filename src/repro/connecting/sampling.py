"""Append-by-sampling of independent columns (Sec. 3.3.3).

Independent columns interact little with the rest of the features, so their
row order matters less — but they must stay in the table for downstream use.
They are appended back onto the reduced table by bootstrap sampling, with one
value pool **per subject** so no (subject, value) combination absent from the
original data can be fabricated (Fig. 4: Anson only ever watched 'Anime', so
Anson's pool contains only 'Anime').
"""

from __future__ import annotations

import random
from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.frame.errors import ColumnNotFoundError
from repro.frame.table import Table


@dataclass
class SubjectPools:
    """Per-subject value pools for one independent column."""

    column: str
    pools: dict = field(default_factory=dict)
    global_pool: list = field(default_factory=list)

    @classmethod
    def from_table(cls, table: Table, subject_column: str, column: str) -> "SubjectPools":
        """Build the pools from the original (pre-reduction) table."""
        if subject_column not in table.column_names:
            raise ColumnNotFoundError(subject_column, table.column_names)
        if column not in table.column_names:
            raise ColumnNotFoundError(column, table.column_names)
        subjects = table.column(subject_column)
        values = table.column(column)
        if subjects.is_vectorized and len(subjects):
            # group row indices by subject in one argsort instead of a
            # per-row dict update; pool contents keep ascending row order so
            # bootstrap draws are identical to the legacy loop
            value_list = values.values
            valid_rows = np.flatnonzero(values.validity_mask())
            codes, keys = subjects._codes_with_missing()
            group_codes = codes[valid_rows]
            order = np.argsort(group_codes, kind="stable")
            counts = np.bincount(group_codes, minlength=len(keys))
            splits = np.split(valid_rows[order], np.cumsum(counts)[:-1])
            pools = {
                keys[g]: [value_list[i] for i in split.tolist()]
                for g, split in enumerate(splits) if split.size
            }
            global_pool = [value_list[i] for i in valid_rows.tolist()]
            return cls(column=column, pools=pools, global_pool=global_pool)
        pools: dict = {}
        global_pool: list = []
        for subject, value in zip(subjects, values):
            if value is None:
                continue
            pools.setdefault(subject, []).append(value)
            global_pool.append(value)
        return cls(column=column, pools=pools, global_pool=global_pool)

    def pool_for(self, subject) -> list:
        """The value pool for *subject* (falls back to the global pool for unseen subjects)."""
        pool = self.pools.get(subject)
        if pool:
            return pool
        return self.global_pool

    def draw(self, subject, rng: random.Random):
        """Bootstrap-draw one value for *subject*."""
        pool = self.pool_for(subject)
        if not pool:
            return None
        return rng.choice(pool)

    def allowed_values(self, subject) -> set:
        """Values that may legitimately appear for *subject*."""
        return set(self.pools.get(subject, self.global_pool))


@dataclass
class BootstrapAppender:
    """Append independent columns back onto a reduced table by per-subject sampling.

    Parameters
    ----------
    per_subject:
        When true (the paper's method), each subject draws only from its own
        pool.  When false, values are drawn from the global pool — the ablation
        contrast that *can* fabricate non-existent combinations.
    """

    subject_column: str
    per_subject: bool = True
    seed: int = 0

    def fit(self, original: Table, independent_columns: Sequence[str]) -> "BootstrapAppender":
        """Record the value pools of the independent columns from the original table."""
        self._pools = {
            column: SubjectPools.from_table(original, self.subject_column, column)
            for column in independent_columns
            if column in original.column_names
        }
        return self

    @property
    def columns(self) -> list[str]:
        """Independent columns the appender will add back."""
        self._require_fitted()
        return list(self._pools.keys())

    def append(self, reduced: Table, seed: int | None = None) -> Table:
        """Add every fitted independent column to *reduced* by bootstrap sampling."""
        self._require_fitted()
        if self.subject_column not in reduced.column_names:
            raise ColumnNotFoundError(self.subject_column, reduced.column_names)
        rng = random.Random(self.seed if seed is None else seed)
        subjects = reduced.column(self.subject_column)
        out = reduced
        for column, pools in self._pools.items():
            values = []
            for subject in subjects:
                if self.per_subject:
                    values.append(pools.draw(subject, rng))
                else:
                    pool = pools.global_pool
                    values.append(rng.choice(pool) if pool else None)
            out = out.with_column(column, values)
        return out

    def validates(self, table: Table) -> bool:
        """True when every appended (subject, value) pair exists in the original pools.

        Only meaningful in per-subject mode; this is the validity guarantee of
        Sec. 3.3.3.
        """
        self._require_fitted()
        subjects = table.column(self.subject_column)
        for column, pools in self._pools.items():
            if column not in table.column_names:
                continue
            values = table.column(column)
            for subject, value in zip(subjects, values):
                if value is None:
                    continue
                if value not in pools.allowed_values(subject):
                    return False
        return True

    def _require_fitted(self):
        if not hasattr(self, "_pools"):
            raise RuntimeError("call fit() before appending")
