"""Independence determination (Sec. 3.3.1).

Both methods start from the pairwise association matrix of the candidate
columns (Cramer's V for categorical pairs, |Pearson| for numeric pairs):

* :class:`ThresholdSeparation` — the 'up-and-stay' rule: a column is
  independent when *every* one of its pairwise associations with the other
  columns stays below the threshold.  The threshold defaults to the mean (or
  median) of the off-diagonal associations, the tuning of Sec. 4.1.6.
* :class:`HierarchicalClusteringSeparation` — convert associations into
  distances, run average-linkage agglomerative clustering, and call the
  columns that end up in singleton clusters independent.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.frame.table import Table
from repro.stats.clustering import AgglomerativeClustering
from repro.stats.correlation import association_matrix


@dataclass(frozen=True)
class IndependenceResult:
    """Outcome of an independence determination."""

    independent_columns: tuple[str, ...]
    dependent_columns: tuple[str, ...]
    threshold: float
    method: str
    matrix: np.ndarray = field(repr=False, compare=False, default=None)
    column_order: tuple[str, ...] = ()


def _off_diagonal_values(matrix: np.ndarray) -> np.ndarray:
    mask = ~np.eye(matrix.shape[0], dtype=bool)
    return matrix[mask]


@dataclass
class ThresholdSeparation:
    """'Up-and-stay' threshold rule over the pairwise association matrix.

    Parameters
    ----------
    threshold:
        Either a float in [0, 1], or the string ``"mean"`` / ``"median"`` to
        derive it from the off-diagonal associations (the paper's tuning).
    """

    threshold: float | str = "mean"

    def __post_init__(self):
        if isinstance(self.threshold, str):
            if self.threshold not in ("mean", "median"):
                raise ValueError("threshold must be a float, 'mean' or 'median'")
        elif not 0.0 <= float(self.threshold) <= 1.0:
            raise ValueError("a numeric threshold must lie in [0, 1]")

    def resolve_threshold(self, matrix: np.ndarray) -> float:
        """Concrete threshold value for a given association matrix."""
        if isinstance(self.threshold, str):
            off_diag = _off_diagonal_values(matrix)
            if off_diag.size == 0:
                return 0.0
            if self.threshold == "mean":
                return float(off_diag.mean())
            return float(np.median(off_diag))
        return float(self.threshold)

    def determine(self, table: Table, columns: Sequence[str] | None = None) -> IndependenceResult:
        """Classify the given columns (all columns by default) as independent or not."""
        matrix, names = association_matrix(table, columns)
        threshold = self.resolve_threshold(matrix)
        independent = []
        dependent = []
        for i, name in enumerate(names):
            others = [matrix[i, j] for j in range(len(names)) if j != i]
            if others and all(value < threshold for value in others):
                independent.append(name)
            else:
                dependent.append(name)
        return IndependenceResult(
            independent_columns=tuple(independent),
            dependent_columns=tuple(dependent),
            threshold=threshold,
            method="threshold_{}".format(self.threshold),
            matrix=matrix,
            column_order=tuple(names),
        )


@dataclass
class HierarchicalClusteringSeparation:
    """Average-linkage clustering on association-derived distances.

    Columns whose cluster (cut at ``distance_threshold``) is a singleton are
    deemed independent of the rest.  The distance between two columns is
    ``1 - association``; the default cut derives the threshold from the mean
    pairwise distance, mirroring the threshold method's tuning.
    """

    linkage: str = "average"
    distance_threshold: float | str = "mean"

    def __post_init__(self):
        if isinstance(self.distance_threshold, str):
            if self.distance_threshold not in ("mean", "median"):
                raise ValueError("distance_threshold must be a float, 'mean' or 'median'")
        elif not 0.0 <= float(self.distance_threshold) <= 1.0:
            raise ValueError("a numeric distance_threshold must lie in [0, 1]")

    def resolve_threshold(self, distances: np.ndarray) -> float:
        if isinstance(self.distance_threshold, str):
            off_diag = _off_diagonal_values(distances)
            if off_diag.size == 0:
                return 0.0
            if self.distance_threshold == "mean":
                return float(off_diag.mean())
            return float(np.median(off_diag))
        return float(self.distance_threshold)

    def determine(self, table: Table, columns: Sequence[str] | None = None) -> IndependenceResult:
        """Classify the given columns via singleton clusters of the dendrogram cut."""
        matrix, names = association_matrix(table, columns)
        if len(names) < 2:
            return IndependenceResult(
                independent_columns=(),
                dependent_columns=tuple(names),
                threshold=0.0,
                method="hierarchical_{}".format(self.linkage),
                matrix=matrix,
                column_order=tuple(names),
            )
        distances = 1.0 - matrix
        np.fill_diagonal(distances, 0.0)
        threshold = self.resolve_threshold(distances)
        clustering = AgglomerativeClustering(linkage=self.linkage).fit(distances)
        clusters = clustering.clusters_at_distance(threshold)
        independent = []
        dependent = []
        for cluster in clusters:
            cluster_names = [names[i] for i in cluster]
            if len(cluster) == 1:
                independent.extend(cluster_names)
            else:
                dependent.extend(cluster_names)
        return IndependenceResult(
            independent_columns=tuple(sorted(independent, key=names.index)),
            dependent_columns=tuple(sorted(dependent, key=names.index)),
            threshold=threshold,
            method="hierarchical_{}".format(self.linkage),
            matrix=matrix,
            column_order=tuple(names),
        )
