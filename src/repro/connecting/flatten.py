"""Direct flattening baseline and its diagnostics (Sec. 3.3, Fig. 4 step 0)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.frame.ops import inner_join, value_counts
from repro.frame.table import Table


def direct_flatten(first: Table, second: Table, subject_column: str) -> Table:
    """Flatten two child tables by joining every pair of rows sharing the subject.

    This is the naive baseline the Cross-table Connecting Method improves on:
    a subject with ``a`` rows in the first table and ``b`` rows in the second
    contributes ``a * b`` flattened rows, so engaged subjects dominate.
    """
    return inner_join(first, second, on=subject_column)


@dataclass(frozen=True)
class FlatteningReport:
    """Diagnostics of a flattening operation (the Fig. 4 '0.1'/'0.2' problems)."""

    rows_first: int
    rows_second: int
    rows_flattened: int
    columns_flattened: int
    #: share of flattened rows contributed by the single most engaged subject
    max_subject_share: float
    #: ratio between the most and least engaged subject's flattened row counts
    engagement_ratio: float

    @property
    def blowup_factor(self) -> float:
        """Flattened rows per original first-table row."""
        if self.rows_first == 0:
            return 0.0
        return self.rows_flattened / self.rows_first


def flattening_report(first: Table, second: Table, flattened: Table,
                      subject_column: str) -> FlatteningReport:
    """Quantify the dimensionality blow-up and engaged-subject bias of a flattening."""
    shares = value_counts(flattened, subject_column, normalize=True)
    counts = value_counts(flattened, subject_column)
    max_share = max(shares.values()) if shares else 0.0
    if counts:
        engagement_ratio = max(counts.values()) / max(min(counts.values()), 1)
    else:
        engagement_ratio = 0.0
    return FlatteningReport(
        rows_first=first.num_rows,
        rows_second=second.num_rows,
        rows_flattened=flattened.num_rows,
        columns_flattened=flattened.num_columns,
        max_subject_share=max_share,
        engagement_ratio=engagement_ratio,
    )
