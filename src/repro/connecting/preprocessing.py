"""Dataset preprocessing: removing misleading pseudo-ID columns (Sec. 4.1.2).

On the DIGIX data every feature initially looks highly correlated with every
other feature, because a handful of columns ('e_et', a 12-digit timestamp;
'idocid' and 'i_entities', ID-address-like strings) are near-unique per row —
their Cramer's V against anything is inflated and meaningless.  Removing them
gives the "less noisy correlation matrix with separable subgroups" of Fig. 5.
This module detects such columns automatically (near-unique, non-repeating,
non-categorical) and removes them, while also supporting an explicit list.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.frame.table import Table

#: Column names the paper explicitly removes from the DIGIX data.
DIGIX_NOISY_COLUMNS = ("e_et", "idocid", "i_entities")


@dataclass
class NoisyColumnFilter:
    """Detect pseudo-identifier columns whose association scores are misleading.

    A column is flagged when the fraction of distinct values exceeds
    ``uniqueness_threshold`` — i.e. it is "neither repeating nor categorical"
    in the paper's words — or when its name is in the explicit list.
    """

    uniqueness_threshold: float = 0.8
    explicit_columns: tuple[str, ...] = DIGIX_NOISY_COLUMNS
    protect_columns: tuple[str, ...] = ()

    def __post_init__(self):
        if not 0.0 < self.uniqueness_threshold <= 1.0:
            raise ValueError("uniqueness_threshold must be in (0, 1]")

    def detect(self, table: Table) -> list[str]:
        """Columns to remove, in table order."""
        protected = set(self.protect_columns)
        flagged = []
        for name in table.column_names:
            if name in protected:
                continue
            if name in self.explicit_columns:
                flagged.append(name)
                continue
            column = table.column(name)
            if table.num_rows == 0:
                continue
            uniqueness = column.nunique() / table.num_rows
            if uniqueness >= self.uniqueness_threshold:
                flagged.append(name)
        return flagged

    def apply(self, table: Table) -> tuple[Table, list[str]]:
        """Return ``(filtered_table, removed_columns)``."""
        removed = [name for name in self.detect(table) if name in table.column_names]
        if not removed:
            return table, []
        return table.drop(removed), removed


def remove_noisy_columns(table: Table, columns: Sequence[str] | None = None,
                         protect: Sequence[str] = ()) -> tuple[Table, list[str]]:
    """Remove pseudo-ID columns (explicit list, or auto-detected)."""
    if columns is not None:
        present = [name for name in columns if name in table.column_names]
        return (table.drop(present) if present else table), present
    filter_ = NoisyColumnFilter(protect_columns=tuple(protect))
    return filter_.apply(table)
