"""Cross-table Connecting Method (Sec. 3.3).

Given two child tables sharing a subject key, the method produces a single
fused child table while avoiding the dimensionality blow-up and engaged-subject
bias of direct flattening:

1. **determine independence** (Sec. 3.3.1) — from the pairwise association
   matrix, find columns with low correlation to everything else, either with
   the 'up-and-stay' threshold separation or with hierarchical clustering;
2. **reduce dimension** (Sec. 3.3.2) — remove the independent columns and drop
   the duplicate rows this exposes in the flattened table;
3. **append by sampling** (Sec. 3.3.3) — bootstrap-sample the independent
   columns back onto the reduced table, drawing from per-subject value pools
   so no (subject, value) combination absent from the original data is created.

It also contains the dataset preprocessing of Sec. 4.1.2 (dropping
pseudo-ID / timestamp columns whose Cramer's V is misleading) and the plain
direct-flattening baseline.
"""

from repro.connecting.flatten import direct_flatten, flattening_report, FlatteningReport
from repro.connecting.independence import (
    HierarchicalClusteringSeparation,
    IndependenceResult,
    ThresholdSeparation,
)
from repro.connecting.reduction import reduce_dimension, ReductionReport
from repro.connecting.sampling import BootstrapAppender, SubjectPools
from repro.connecting.preprocessing import NoisyColumnFilter, remove_noisy_columns
from repro.connecting.connector import ConnectorConfig, CrossTableConnector, ConnectionResult

__all__ = [
    "direct_flatten",
    "flattening_report",
    "FlatteningReport",
    "ThresholdSeparation",
    "HierarchicalClusteringSeparation",
    "IndependenceResult",
    "reduce_dimension",
    "ReductionReport",
    "BootstrapAppender",
    "SubjectPools",
    "NoisyColumnFilter",
    "remove_noisy_columns",
    "CrossTableConnector",
    "ConnectorConfig",
    "ConnectionResult",
]
