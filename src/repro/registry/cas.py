"""Content-addressed object store for bundle parts.

Every bundle part (an NPZ or typed-JSON blob) is stored once under its
SHA-256 digest at ``objects/<aa>/<digest>``, where ``<aa>`` is the first
byte of the digest — the same fan-out Git uses, keeping directory listings
short however many parts accumulate.  Publishing is atomic (temp file +
``os.replace``) and idempotent: putting bytes that are already stored is a
metadata-only no-op, which is what makes re-saving a mutated fitted object
incremental and lets the multitable bundle's edge synthesizers share one
physical copy of their identical config/vocabulary parts.

Object files are raw part bytes — a stored NPZ part is a valid standalone
``.npz`` file, so readers can hand out ``np.memmap`` views via
:func:`repro.store.npymap.map_npz_file` and every serving process mapping
the same part shares one page-cache copy.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from pathlib import Path

from repro.store.atomic import atomic_path
from repro.store.codec import StoreError


def blob_digest(blob: bytes) -> str:
    """The SHA-256 content address of *blob*."""
    return hashlib.sha256(blob).hexdigest()


@dataclass(frozen=True)
class RegistrySource:
    """A picklable reference to an artifact inside a registry.

    The worker-pool analogue of a bundle path: worker processes cold-start
    by resolving ``digest`` against the registry at ``root`` (see
    :meth:`repro.serving.service.SynthesisService.from_registry`).
    """

    root: str
    digest: str

    def __str__(self) -> str:
        return "{}#{}".format(self.root, self.digest[:12])


class ContentStore:
    """The ``objects/`` half of a registry: digest-keyed immutable blobs."""

    def __init__(self, root):
        self.root = Path(root)

    def object_path(self, digest: str) -> Path:
        if len(digest) < 3:
            raise StoreError("invalid object digest {!r}".format(digest))
        return self.root / digest[:2] / digest

    def has(self, digest: str) -> bool:
        return self.object_path(digest).is_file()

    def size(self, digest: str) -> int:
        try:
            return self.object_path(digest).stat().st_size
        except OSError:
            raise StoreError("no object {} in store at {}".format(digest, self.root)) from None

    def put(self, blob: bytes) -> tuple[str, bool]:
        """Store *blob* under its digest; returns ``(digest, written)``.

        ``written`` is false when the object already existed — the dedup /
        incremental-save signal callers aggregate.
        """
        digest = blob_digest(blob)
        path = self.object_path(digest)
        if path.is_file():
            return digest, False
        path.parent.mkdir(parents=True, exist_ok=True)
        with atomic_path(path) as tmp:
            Path(tmp).write_bytes(blob)
        return digest, True

    def get(self, digest: str) -> bytes:
        path = self.object_path(digest)
        try:
            blob = path.read_bytes()
        except OSError:
            raise StoreError("no object {} in store at {}".format(digest, self.root)) from None
        actual = blob_digest(blob)
        if actual != digest:
            from repro.store.bundle import BundleIntegrityError

            raise BundleIntegrityError(
                "object {} at {} hashes to {} — store corrupted".format(
                    digest, path, actual))
        return blob

    def delete(self, digest: str) -> int:
        """Remove one object; returns the bytes freed (0 if absent)."""
        path = self.object_path(digest)
        try:
            size = path.stat().st_size
            path.unlink()
        except OSError:
            return 0
        # drop the fan-out directory when it empties; best-effort
        try:
            path.parent.rmdir()
        except OSError:
            pass
        return size

    def digests(self) -> list[str]:
        """Every stored object digest (sorted)."""
        if not self.root.is_dir():
            return []
        return sorted(entry.name
                      for shard in self.root.iterdir() if shard.is_dir()
                      for entry in shard.iterdir() if entry.is_file())

    def total_bytes(self) -> int:
        """Physical bytes across all stored objects."""
        if not self.root.is_dir():
            return 0
        return sum(entry.stat().st_size
                   for shard in self.root.iterdir() if shard.is_dir()
                   for entry in shard.iterdir() if entry.is_file())
