"""Deterministic dataset fingerprints.

A run record must pin *what data* a pipeline was fitted on, or a cache hit
could silently serve a model trained on different rows.  Two granularities:

* :func:`fingerprint_table` — hashes a live :class:`~repro.frame.table.Table`
  through the columnar binary format (dtypes, validity masks and dictionary
  codes included), so two tables fingerprint equal exactly when the store
  would round-trip them to identical bytes — the same invariant the bundle
  digests build on;
* :func:`fingerprint_directory` — hashes the raw bytes of the files a
  pipeline would load (the ``run --data-dir`` workflow), cheap enough to
  run before parsing anything.
"""

from __future__ import annotations

import hashlib
from pathlib import Path

from repro.store.bundle import npz_bytes
from repro.store.codec import StoreError
from repro.store.tablefmt import table_to_arrays


def fingerprint_table(table) -> str:
    """SHA-256 fingerprint of a table's exact columnar content.

    Built on the deterministic NPZ encoding of
    :func:`repro.store.tablefmt.table_to_arrays`, so the fingerprint is
    stable across processes and backends and changes whenever any cell,
    dtype, mask or column order changes.
    """
    return hashlib.sha256(npz_bytes(table_to_arrays(table))).hexdigest()


def fingerprint_directory(path, pattern: str = "*.csv") -> dict:
    """Fingerprint every *pattern* file under *path* (non-recursive).

    Returns ``{"files": {name: sha256}, "fingerprint": combined}`` where
    ``combined`` hashes the sorted (name, content-digest) pairs — the
    digest a run record stores for a ``--data-dir`` dataset.
    """
    root = Path(path)
    if not root.is_dir():
        raise StoreError("no dataset directory at {}".format(root))
    files: dict[str, str] = {}
    for entry in sorted(root.glob(pattern)):
        if entry.is_file():
            files[entry.name] = hashlib.sha256(entry.read_bytes()).hexdigest()
    combined = hashlib.sha256()
    for name, digest in sorted(files.items()):
        combined.update(name.encode("utf-8"))
        combined.update(b"\x00")
        combined.update(digest.encode("ascii"))
    return {"files": files, "fingerprint": combined.hexdigest()}
