"""Content-addressed artifact registry with provenance and migrations.

The bundle layer (:mod:`repro.store.bundle`) persists one fitted object as
one archive file.  This package grows that into a *registry* — a directory
that many training runs and serving fleets share:

* :mod:`repro.registry.cas` — the content-addressed object store: bundle
  *parts* keyed by their SHA-256 under ``objects/<aa>/<digest>``, published
  atomically, deduplicated by construction (the multitable bundle's edge
  synthesizers share config/vocabulary parts, which are stored once);
* :mod:`repro.registry.record` — :class:`Registry`: artifact records
  binding a bundle manifest to its CAS parts, provenance *run records*
  binding a normalized spec (pipeline config, seed, resolved engines,
  dataset fingerprint) to the artifact digest, ``fit_or_load`` turning a
  repeated fit into a verified cache hit, incremental re-save (only parts
  whose digests changed are written) and refcount-aware garbage
  collection;
* :mod:`repro.registry.fingerprint` — deterministic dataset fingerprints
  over the columnar backend (:func:`fingerprint_table`) and over raw CSV
  directories (:func:`fingerprint_directory`);
* :mod:`repro.registry.migrations` — selector-registered format
  migrations applied on read when a bundle predates
  :data:`~repro.store.bundle.BUNDLE_FORMAT_VERSION`, and batch-applied by
  ``greater registry migrate``.

Attributes resolve lazily (PEP 562), mirroring :mod:`repro.store`.
"""

from importlib import import_module

#: public name -> defining submodule, resolved on first attribute access
_EXPORTS = {
    "ContentStore": "repro.registry.cas",
    "RegistrySource": "repro.registry.cas",
    "blob_digest": "repro.registry.cas",
    "Registry": "repro.registry.record",
    "fit_spec": "repro.registry.record",
    "spec_digest": "repro.registry.record",
    "RegistryReader": "repro.registry.record",
    "RunResult": "repro.registry.record",
    "SaveReport": "repro.registry.record",
    "fingerprint_table": "repro.registry.fingerprint",
    "fingerprint_directory": "repro.registry.fingerprint",
    "Migration": "repro.registry.migrations",
    "register_migration": "repro.registry.migrations",
    "apply_migrations": "repro.registry.migrations",
    "migrate_bundle": "repro.registry.migrations",
    "downgrade_bundle_to_v0": "repro.registry.migrations",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name):
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError("module {!r} has no attribute {!r}".format(__name__, name)) from None
    value = getattr(import_module(module_name), name)
    globals()[name] = value  # cache for subsequent lookups
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
