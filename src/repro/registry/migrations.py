"""Selector-registered bundle format migrations.

A ``BUNDLE_FORMAT_VERSION`` bump must not strand every saved artifact.
Migrations registered here transform a bundle's raw ``(manifest, parts)``
pair from an old format version to the next one; they are applied

* **on read** — :class:`repro.store.bundle.BundleReader` (and the
  registry's artifact loader) chains matching migrations in memory
  whenever a bundle's recorded version predates the current one, so old
  bundles keep loading transparently; and
* **in batch** — :func:`migrate_bundle` (CLI ``greater registry
  migrate``) rewrites a bundle file in the current format.  Because both
  the migration and the native writer produce deterministic bytes, a
  migrated v0 bundle is byte-identical to one saved natively at v1.

A :class:`Migration` carries a *selector* — a manifest predicate — so a
version step can ship several migrations scoped to different bundle kinds
or metadata shapes; the first registered migration whose version range and
selector match is applied, and the loop repeats until the bundle reaches
:data:`~repro.store.bundle.BUNDLE_FORMAT_VERSION`.

The built-in v0→v1 migration converts the historical JSON-list vocabulary
parts to the v1 blob+offsets NPZ encoding.  (Version 0 is synthetic — the
repo never shipped it — but it exercises every moving part end to end and
is the template for real future bumps.)
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from repro.store.atomic import atomic_path
from repro.store.bundle import (
    BUNDLE_FORMAT_VERSION,
    BUNDLE_KINDS,
    MANIFEST_NAME,
    BundleReader,
    archive_bytes,
    npz_bytes,
    parts_digest,
)
from repro.store.codec import StoreError
import repro.store.codec as codec
from repro.store.tablefmt import _decode_strings, _encode_strings


@dataclass(frozen=True)
class Migration:
    """One format-version step: ``apply`` when ``selector`` matches.

    ``apply(manifest, parts)`` returns the transformed ``(manifest,
    parts)``; the harness then stamps ``to_version``, recomputes part
    sizes and the content digest, so migrations only describe the part
    transformation itself.
    """

    name: str
    from_version: int
    to_version: int
    selector: Callable[[dict], bool]
    apply: Callable[[dict, dict], tuple[dict, dict]]

    def matches(self, manifest: dict) -> bool:
        return (manifest.get("format_version") == self.from_version
                and bool(self.selector(manifest)))


_MIGRATIONS: list[Migration] = []


def register_migration(migration: Migration) -> Migration:
    """Register a migration (kept in registration order per version step)."""
    if migration.to_version <= migration.from_version:
        raise StoreError("migration {!r} must increase the format version".format(
            migration.name))
    _MIGRATIONS.append(migration)
    return migration


def registered_migrations() -> list[Migration]:
    return list(_MIGRATIONS)


def apply_migrations(manifest: dict, parts: dict) -> tuple[dict, dict, list[str]]:
    """Chain migrations until *manifest* reaches the current format version.

    Returns ``(manifest, parts, applied_names)``.  Raises
    :class:`StoreError` when no registered migration covers a version gap.
    """
    applied: list[str] = []
    manifest = dict(manifest)
    parts = dict(parts)
    while manifest.get("format_version", 0) < BUNDLE_FORMAT_VERSION:
        version = manifest.get("format_version", 0)
        migration = next((m for m in _MIGRATIONS if m.matches(manifest)), None)
        if migration is None:
            raise StoreError(
                "no registered migration from bundle format version {} "
                "(current version is {})".format(version, BUNDLE_FORMAT_VERSION))
        manifest, parts = migration.apply(dict(manifest), dict(parts))
        manifest["format_version"] = migration.to_version
        manifest["parts"] = {name: len(blob) for name, blob in sorted(parts.items())}
        manifest["digest"] = parts_digest(parts)
        applied.append(migration.name)
    return manifest, parts, applied


# ---------------------------------------------------------------------------
# v0 -> v1: vocabulary JSON lists become blob+offsets NPZ parts
# ---------------------------------------------------------------------------

_VOCAB_JSON = "vocabulary.json"
_VOCAB_NPZ = "vocabulary.npz"


def _vocabulary_json_to_npz(manifest: dict, parts: dict) -> tuple[dict, dict]:
    compress = bool(manifest.get("compress", True))
    for name in [n for n in parts if n.endswith(_VOCAB_JSON)]:
        tokens = codec.loads(parts.pop(name).decode("utf-8"))
        blob, offsets = _encode_strings(tokens)
        prefix = name[: -len(_VOCAB_JSON)]
        parts[prefix + _VOCAB_NPZ] = npz_bytes({"blob": blob, "offsets": offsets},
                                               compress=compress)
    return manifest, parts


register_migration(Migration(
    name="vocabulary-json-to-npz",
    from_version=0,
    to_version=1,
    selector=lambda manifest: manifest.get("kind") in BUNDLE_KINDS,
    apply=_vocabulary_json_to_npz,
))


def migrate_bundle(path, out=None) -> dict:
    """Rewrite the bundle at *path* in the current format (in place by default).

    Returns ``{"path", "from_version", "to_version", "changed", "digest"}``.
    A bundle already at the current version is rewritten
    only if its bytes differ from the canonical deterministic encoding
    (pre-refactor bundles carry wall-clock zip timestamps); the parts —
    and therefore the content digest — are preserved either way.
    """
    source = Path(path)
    reader = BundleReader(source, verify=True)  # migrates legacy formats on read
    from_version = None
    try:
        import json
        import zipfile

        with zipfile.ZipFile(source) as archive:
            from_version = json.loads(
                archive.read(MANIFEST_NAME).decode("utf-8")).get("format_version")
    except Exception:
        pass
    manifest, parts = reader.manifest, {
        name: reader._part(name) for name in manifest_part_names(reader.manifest)
    }
    data = archive_bytes(parts, manifest)
    target = Path(out) if out is not None else source
    changed = not (target.is_file() and target.read_bytes() == data)
    if changed or out is not None:
        with atomic_path(target) as tmp:
            Path(tmp).write_bytes(data)
    return {
        "path": str(target),
        "from_version": from_version,
        "to_version": manifest["format_version"],
        "changed": changed,
        "digest": manifest["digest"],
    }


def manifest_part_names(manifest: dict) -> list[str]:
    """The part names a manifest declares (sorted)."""
    return sorted(manifest.get("parts", {}))


def downgrade_bundle_to_v0(src, dst) -> str:
    """Rewrite a v1 bundle as a synthetic v0 bundle (test/bench fixture).

    Vocabulary parts revert to the v0 JSON-list encoding; everything else
    is copied verbatim and the manifest records ``format_version: 0`` with
    a recomputed digest.  Round-tripping through :func:`migrate_bundle`
    restores the original v1 bytes exactly.
    """
    reader = BundleReader(src, verify=True)
    manifest = dict(reader.manifest)
    if manifest.get("format_version") != 1:
        raise StoreError("can only downgrade a format-version-1 bundle")
    parts = {name: reader._part(name) for name in manifest_part_names(manifest)}
    for name in [n for n in parts if n.endswith(_VOCAB_NPZ)]:
        arrays = reader.arrays(name[: -len(".npz")])
        tokens = _decode_strings(arrays["blob"], arrays["offsets"])
        del parts[name]
        prefix = name[: -len(_VOCAB_NPZ)]
        parts[prefix + _VOCAB_JSON] = codec.dumps(tokens).encode("utf-8")
    manifest["format_version"] = 0
    manifest["parts"] = {name: len(blob) for name, blob in sorted(parts.items())}
    manifest["digest"] = parts_digest(parts)
    data = archive_bytes(parts, manifest)
    with atomic_path(dst) as tmp:
        Path(tmp).write_bytes(data)
    return manifest["digest"]
