"""Artifact and provenance records over the content-addressed store.

The registry directory has three planes:

* ``objects/`` — the :class:`~repro.registry.cas.ContentStore` of raw
  bundle parts, shared by every artifact;
* ``artifacts/<digest>.json`` — one record per saved artifact binding the
  bundle manifest (kind, format version, meta) to the part objects by
  their content addresses;
* ``runs/<spec-digest>.json`` — provenance records binding a normalized
  fit *spec* (pipeline name, full config, seed, resolved engines, dataset
  fingerprint) to the artifact it produced.

:meth:`Registry.fit_or_load` closes the loop: the spec of a requested fit
is hashed, a matching run record turns the fit into a verified load — the
cache hit is bit-identical to a fresh fit because the bundle encoding and
both training engines are deterministic — and a miss fits, saves and
records.  :meth:`Registry.save` is incremental by construction: only
parts whose digests are not yet stored are written.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, asdict, is_dataclass
from pathlib import Path

from repro.frame.table import Table
from repro.registry.cas import ContentStore
from repro.registry.fingerprint import fingerprint_table
from repro.store.atomic import atomic_path
from repro.store.bundle import (
    BUNDLE_FORMAT_VERSION,
    BasePartReader,
    BundleIntegrityError,
    _engine_meta,
    bundle_writer_for,
    read_bundle_object,
    verify_parts,
)
import repro.store.codec as codec
import repro.store.npymap as npymap
from repro.store.codec import StoreError


@dataclass(frozen=True)
class SaveReport:
    """What :meth:`Registry.save` did — the dedup/incrementality ledger."""

    digest: str
    kind: str
    parts: dict[str, str]             #: part name -> object digest
    parts_written: int                #: objects physically written
    parts_reused: int                 #: parts whose object already existed
    bytes_written: int
    bytes_reused: int
    total_bytes: int                  #: logical size of all parts
    shared: dict[str, list[str]] = field(default_factory=dict)
    #: object digest -> part names, for objects referenced more than once
    #: within this artifact (e.g. identical edge-synthesizer vocabularies)


@dataclass(frozen=True)
class RunResult:
    """What :meth:`Registry.fit_or_load` returned."""

    fitted: object
    digest: str                       #: artifact content digest
    spec_digest: str
    cache_hit: bool
    report: SaveReport | None = None  #: present only on a miss (fresh save)


class RegistryReader(BasePartReader):
    """A :class:`BasePartReader` over an artifact record's CAS objects.

    The kind-dispatched readers of :mod:`repro.store.bundle` consume this
    exactly like a :class:`~repro.store.bundle.BundleReader` — a registry
    artifact and a bundle file with the same digest load identically.
    With ``mmap=True``, uncompressed NPZ parts are memory-mapped straight
    from their object files (raw part bytes are valid standalone ``.npz``
    files), so concurrent serving workers share one page-cache copy per
    part.  Artifacts recorded under an older format version are migrated
    in memory on read, like legacy bundle files.
    """

    def __init__(self, store: ContentStore, record: dict, source: str,
                 mmap: bool = False, verify: bool = True):
        self._store = store
        self.path = source
        self.mmap = bool(mmap)
        self._objects = {name: entry["object"]
                         for name, entry in record["parts"].items()}
        manifest = {
            "format_version": record.get("format_version", BUNDLE_FORMAT_VERSION),
            "kind": record["kind"],
            "digest": record["digest"],
            "compress": record.get("compress", False),
            "meta": record.get("meta", {}),
            "parts": {name: entry["size"]
                      for name, entry in record["parts"].items()},
        }
        self._cache: dict[str, bytes] = {}
        legacy = manifest["format_version"] < BUNDLE_FORMAT_VERSION
        if legacy or verify:
            raw = {name: self._store.get(sha)
                   for name, sha in self._objects.items()}
            if verify:
                verify_parts(manifest, raw, self.path)
            if legacy:
                from repro.registry.migrations import apply_migrations

                manifest, raw, _ = apply_migrations(manifest, raw)
                self._objects = {}
                self.mmap = False
            if not self.mmap:
                self._cache = raw
        self.manifest = manifest

    def _part(self, name: str) -> bytes:
        blob = self._cache.get(name)
        if blob is not None:
            return blob
        sha = self._objects.get(name)
        if sha is None:
            raise StoreError("artifact {} has no part {!r}".format(self.path, name))
        return self._store.get(sha)

    def arrays(self, name: str) -> dict:
        full = name + ".npz"
        sha = self._objects.get(full)
        if self.mmap and sha is not None and not self.compress:
            return npymap.map_npz_file(self._store.object_path(sha))
        return super().arrays(name)


def _fingerprint_fit_arg(arg):
    """Normalize one positional ``fit`` argument into spec content."""
    if arg is None:
        return None
    if isinstance(arg, Table):
        return fingerprint_table(arg)
    if isinstance(arg, dict):
        return {name: fingerprint_table(table)
                for name, table in sorted(arg.items())}
    if hasattr(arg, "to_dict"):  # SchemaGraph and friends
        return arg.to_dict()
    raise StoreError(
        "cannot fingerprint fit argument of type {!r}".format(type(arg).__name__))


def _spec_engines(config) -> dict:
    """The resolved engines the fit would actually use (part of the spec).

    Resolution happens at spec time so an environment override
    (``REPRO_TRAINING_ENGINE`` / ``REPRO_GENERATION_ENGINE``) changes the
    spec digest and forces a cache miss instead of silently serving an
    artifact trained by a different engine.
    """
    if hasattr(config, "training_engine"):
        return _engine_meta(config.training_engine, config.generation_engine)
    if hasattr(config, "fine_tune") and hasattr(config, "sampler"):
        return _engine_meta(config.fine_tune.engine, config.sampler.engine)
    backbone = getattr(config, "backbone", None)
    if backbone is not None:
        return _engine_meta(backbone.fine_tune.engine, backbone.sampler.engine)
    return _engine_meta("auto", "auto")


def fit_spec(pipeline, *fit_args) -> dict:
    """The normalized provenance spec of ``pipeline.fit(*fit_args)``."""
    config = pipeline.config
    return {
        "pipeline": pipeline.name,
        "config": asdict(config) if is_dataclass(config) else dict(config),
        "engines": _spec_engines(config),
        "dataset": [_fingerprint_fit_arg(arg) for arg in fit_args],
    }


def spec_digest(spec: dict) -> str:
    """SHA-256 of the typed-JSON canonical encoding of *spec*."""
    return hashlib.sha256(codec.dumps(spec).encode("utf-8")).hexdigest()


class Registry:
    """A shared artifact registry rooted at one directory."""

    def __init__(self, root):
        self.root = Path(root)
        self.store = ContentStore(self.root / "objects")
        self._artifacts = self.root / "artifacts"
        self._runs = self.root / "runs"

    # -- artifacts ---------------------------------------------------------

    def save(self, obj, compress: bool = False) -> SaveReport:
        """Persist a fitted object's parts into the CAS; returns the ledger.

        Incremental by construction: a part whose content is already
        stored (from a previous save of this artifact, from another
        artifact, or from a duplicate part within this one) is not
        rewritten.  Re-saving after mutating one component writes only
        the changed parts.
        """
        writer = bundle_writer_for(obj, compress=compress)
        parts = writer.parts
        manifest = writer.manifest()
        entries: dict[str, dict] = {}
        by_object: dict[str, list[str]] = {}
        written = reused = bytes_written = bytes_reused = 0
        for name in sorted(parts):
            blob = parts[name]
            sha, wrote = self.store.put(blob)
            entries[name] = {"object": sha, "size": len(blob)}
            by_object.setdefault(sha, []).append(name)
            if wrote:
                written += 1
                bytes_written += len(blob)
            else:
                reused += 1
                bytes_reused += len(blob)
        record = {
            "format_version": manifest["format_version"],
            "kind": manifest["kind"],
            "digest": manifest["digest"],
            "compress": manifest["compress"],
            "meta": manifest["meta"],
            "parts": entries,
        }
        self._artifacts.mkdir(parents=True, exist_ok=True)
        with atomic_path(self._artifacts / (record["digest"] + ".json")) as tmp:
            Path(tmp).write_text(json.dumps(record, indent=2, sort_keys=True))
        return SaveReport(
            digest=record["digest"], kind=record["kind"],
            parts={name: entry["object"] for name, entry in entries.items()},
            parts_written=written, parts_reused=reused,
            bytes_written=bytes_written, bytes_reused=bytes_reused,
            total_bytes=bytes_written + bytes_reused,
            shared={sha: names for sha, names in sorted(by_object.items())
                    if len(names) > 1},
        )

    def artifact(self, digest: str) -> dict:
        """The artifact record for *digest* (full digest or unique prefix)."""
        digest = self.resolve(digest)
        path = self._artifacts / (digest + ".json")
        try:
            return json.loads(path.read_text())
        except OSError:
            raise StoreError("no artifact {} in registry at {}".format(
                digest, self.root)) from None
        except ValueError as error:
            raise StoreError("artifact record {} is corrupt: {}".format(
                path, error)) from None

    def artifacts(self) -> list[dict]:
        """Every artifact record (sorted by digest)."""
        if not self._artifacts.is_dir():
            return []
        return [json.loads(path.read_text())
                for path in sorted(self._artifacts.glob("*.json"))]

    def digests(self) -> list[str]:
        """Every artifact digest (sorted)."""
        if not self._artifacts.is_dir():
            return []
        return sorted(path.stem for path in self._artifacts.glob("*.json"))

    def resolve(self, prefix: str) -> str:
        """Expand a digest prefix to the unique full artifact digest."""
        if (self._artifacts / (prefix + ".json")).is_file():
            return prefix
        matches = [digest for digest in self.digests()
                   if digest.startswith(prefix)]
        if not matches:
            raise StoreError("no artifact matching {!r} in registry at {}".format(
                prefix, self.root))
        if len(matches) > 1:
            raise StoreError("digest prefix {!r} is ambiguous ({} matches)".format(
                prefix, len(matches)))
        return matches[0]

    def reader(self, digest: str, mmap: bool = False,
               verify: bool = True) -> RegistryReader:
        digest = self.resolve(digest)
        record = self.artifact(digest)
        source = "{}#{}".format(self.root, digest[:12])
        return RegistryReader(self.store, record, source, mmap=mmap, verify=verify)

    def load(self, digest: str, mmap: bool = False, verify: bool = True):
        """Load the fitted object stored under *digest*.

        Same return convention as :func:`repro.store.bundle.load_bundle`:
        fitted pipelines come back as ``(fitted, digest)`` pairs.
        """
        return read_bundle_object(self.reader(digest, mmap=mmap, verify=verify))

    def remove(self, digest: str) -> int:
        """Drop an artifact record and the run records bound to it.

        Returns the number of records removed.  Objects are reclaimed by
        the next :meth:`gc`.
        """
        digest = self.resolve(digest)
        removed = 0
        path = self._artifacts / (digest + ".json")
        if path.is_file():
            path.unlink()
            removed += 1
        for run in self.runs():
            if run.get("artifact") == digest:
                (self._runs / (run["spec_digest"] + ".json")).unlink(missing_ok=True)
                removed += 1
        return removed

    # -- garbage collection ------------------------------------------------

    def refcounts(self) -> dict[str, int]:
        """object digest -> number of (artifact, part) references."""
        counts: dict[str, int] = {}
        for record in self.artifacts():
            for entry in record["parts"].values():
                counts[entry["object"]] = counts.get(entry["object"], 0) + 1
        return counts

    def gc(self) -> dict:
        """Delete objects no artifact references; returns the reclaim stats."""
        referenced = set(self.refcounts())
        deleted = 0
        bytes_freed = 0
        for sha in self.store.digests():
            if sha not in referenced:
                bytes_freed += self.store.delete(sha)
                deleted += 1
        return {
            "objects_deleted": deleted,
            "bytes_freed": bytes_freed,
            "objects_kept": len(referenced),
        }

    # -- provenance --------------------------------------------------------

    def runs(self) -> list[dict]:
        """Every run record (sorted by spec digest)."""
        if not self._runs.is_dir():
            return []
        return [codec.loads(path.read_text())
                for path in sorted(self._runs.glob("*.json"))]

    def run_record(self, digest: str) -> dict | None:
        """The run record for a spec digest, or ``None``."""
        path = self._runs / (digest + ".json")
        if not path.is_file():
            return None
        return codec.loads(path.read_text())

    def fit_or_load(self, pipeline, *fit_args, compress: bool = False,
                    verify: bool = True, mmap: bool = False) -> RunResult:
        """Fit ``pipeline`` on ``fit_args`` — unless the registry already has it.

        The normalized spec (pipeline name, full config, resolved engines,
        dataset fingerprints) is hashed; a run record under that hash
        whose artifact is still present turns the call into a verified
        load with no training.  Determinism end to end makes the cached
        artifact bit-identical to what a fresh fit would save, so the two
        paths are interchangeable.  A miss — new spec, changed seed or
        config, different dataset content, an engine override, or a
        garbage-collected artifact — fits, saves, and records.
        """
        spec = fit_spec(pipeline, *fit_args)
        digest = spec_digest(spec)
        run = self.run_record(digest)
        if run is not None:
            try:
                loaded = self.load(run["artifact"], mmap=mmap, verify=verify)
            except StoreError as error:
                if isinstance(error, BundleIntegrityError):
                    raise
                loaded = None  # artifact pruned since the run — refit below
            if loaded is not None:
                fitted = loaded[0] if isinstance(loaded, tuple) else loaded
                return RunResult(fitted=fitted, digest=run["artifact"],
                                 spec_digest=digest, cache_hit=True)
        fitted = pipeline.fit(*fit_args)
        report = self.save(fitted, compress=compress)
        self._runs.mkdir(parents=True, exist_ok=True)
        with atomic_path(self._runs / (digest + ".json")) as tmp:
            Path(tmp).write_text(codec.dumps({
                "spec_digest": digest,
                "artifact": report.digest,
                "pipeline": pipeline.name,
                "spec": spec,
            }))
        return RunResult(fitted=fitted, digest=report.digest, spec_digest=digest,
                         cache_hit=False, report=report)
