"""Single-table GReaT synthesizer."""

from __future__ import annotations

import math
import random
from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.frame.ops import concat_rows
from repro.frame.table import Table
from repro.llm.engine import SEED_MASK, BatchGenerationEngine, derive_seed
from repro.llm.finetune import FineTuneConfig, FineTuner
from repro.llm.ngram_model import NGramLanguageModel
from repro.llm.sampler import SamplerConfig, TemperatureSampler
from repro.llm.tokenizer import WordTokenizer
from repro.obs import trace as obs
from repro.textenc.corpus import CorpusBuilder
from repro.textenc.decoder import TextualDecoder
from repro.textenc.encoder import EncoderConfig, TextualEncoder

#: Row-sampling strategies.
#:
#: ``"guided"`` (default) walks the columns in canonical order and, for each
#: column, scores every value observed at training time under the language
#: model given the already generated prefix, then samples a value from the
#: resulting distribution.  Every generated row is schema-valid by
#: construction, and cross-column dependencies flow through the LM context —
#: which is exactly where ambiguous tokens and flattening noise do their
#: damage.
#:
#: ``"free"`` reproduces the original GReaT behaviour literally: sample free
#: text from the LM, parse it with the decoder, and keep only sentences that
#: round-trip into valid rows (falling back to bootstrap rows when the retry
#: budget is exhausted).
SAMPLING_STRATEGIES = ("guided", "free")

#: Sub-stream namespace for guided batch sampling: the caller-facing seed is
#: combined with this constant so guided draws form their own named stream,
#: separate from the other consumers (encoder permutations, fallback rows)
#: that derive state from the same pipeline seed.
_GUIDED_STREAM = 2

#: Sub-stream namespace for chunked streaming synthesis: each emitted chunk
#: draws from ``derive_seed(seed, _CHUNK_STREAM, chunk_index)`` so chunks are
#: independent of chunk size *boundaries chosen downstream* only through the
#: (size, index) pair — the same scheme as the serving layer's per-block
#: seeds.
_CHUNK_STREAM = 5


@dataclass(frozen=True)
class GReaTConfig:
    """Hyper-parameters of the GReaT synthesizer.

    ``fine_tune`` carries the epochs/batches the paper reports; ``sampler``
    controls generation temperature and retries; ``permutation_passes`` is
    GReaT's feature-order augmentation; ``fallback_to_training_rows`` keeps the
    output size exact in ``"free"`` mode by bootstrap-resampling a training row
    whenever generation fails to produce a parseable sentence.
    """

    fine_tune: FineTuneConfig = field(default_factory=lambda: FineTuneConfig())
    sampler: SamplerConfig = field(default_factory=SamplerConfig)
    encoder: EncoderConfig = field(default_factory=EncoderConfig)
    sampling_strategy: str = "guided"
    permutation_passes: int = 2
    fallback_to_training_rows: bool = True
    seed: int = 0

    def __post_init__(self):
        if self.sampling_strategy not in SAMPLING_STRATEGIES:
            raise ValueError(
                "sampling_strategy must be one of {}, got {!r}".format(
                    SAMPLING_STRATEGIES, self.sampling_strategy
                )
            )
        if self.permutation_passes < 1:
            raise ValueError("permutation_passes must be at least 1")


class GReaTSynthesizer:
    """Encode → fine-tune → sample → decode, on a single table."""

    def __init__(self, config: GReaTConfig | None = None):
        self.config = config or GReaTConfig()
        self._encoder = TextualEncoder(self.config.encoder)
        self._decoder: TextualDecoder | None = None
        self._model: NGramLanguageModel | None = None
        self._sampler: TemperatureSampler | None = None
        self._engine: BatchGenerationEngine | None = None
        self._training_table: Table | None = None
        self._perplexity_trace: list[float] = []
        self._training_engine: str | None = None
        # guided-sampling state: per column, the observed values and their token ids
        self._column_candidates: dict[str, list] = {}
        self._candidate_token_ids: dict[str, list[list[int]]] = {}
        self._structure_token_ids: dict[str, list[int]] = {}
        self._separator_ids: list[int] = []
        self._value_token_cache: dict = {}

    # -- fitting -------------------------------------------------------------------

    @property
    def is_fitted(self) -> bool:
        return self._model is not None

    @property
    def perplexity_trace(self) -> list[float]:
        """Held-out perplexity after each fine-tuning epoch."""
        return list(self._perplexity_trace)

    @property
    def training_engine(self) -> str | None:
        """Which training engine ran at fit time (``None`` before fit).

        Selected by ``config.fine_tune.engine`` / ``REPRO_TRAINING_ENGINE``;
        both engines produce bit-identical models, so this is diagnostic
        only.
        """
        return self._training_engine

    @property
    def decoder(self) -> TextualDecoder:
        self._require_fitted()
        return self._decoder

    @property
    def model(self) -> NGramLanguageModel:
        """The fine-tuned language-model backbone."""
        self._require_fitted()
        return self._model

    @property
    def engine(self) -> BatchGenerationEngine:
        """The batch-generation engine built at fit time."""
        self._require_fitted()
        return self._engine

    @property
    def training_columns(self) -> list[str]:
        self._require_fitted()
        return self._training_table.column_names

    def fit(self, table: Table) -> "GReaTSynthesizer":
        """Fine-tune the backbone on the textual-encoded rows of *table*."""
        if table.num_rows == 0 or table.num_columns == 0:
            raise ValueError("cannot fit a synthesizer on an empty table")
        self._training_table = table.copy()
        self._encoder.reseed(self.config.seed)
        builder = CorpusBuilder(encoder=self._encoder,
                                permutation_passes=self.config.permutation_passes)
        with obs.span("stage.encode", attrs={"rows": table.num_rows,
                                             "columns": table.num_columns}):
            corpus, decoder = builder.build(table)
        tokenizer = WordTokenizer()
        tuner = FineTuner(tokenizer, self.config.fine_tune)
        with obs.span("stage.fine_tune", attrs={"sentences": len(corpus)}):
            result = tuner.fine_tune(corpus)
        self._perplexity_trace = result.perplexity_trace
        self._training_engine = result.engine
        self._decoder = decoder
        self._model = result.model
        self._sampler = TemperatureSampler(result.model, self.config.sampler)
        self._sampler.reseed(self.config.seed)
        # share one engine with the sampler; compiled-trained models hand the
        # engine their cached CSR freeze, so the counts are never re-frozen
        self._engine = self._sampler.engine
        self._prepare_guided_state(tokenizer)
        return self

    @classmethod
    def _from_fitted_state(cls, config: GReaTConfig, training_table: Table,
                           model: NGramLanguageModel, decoder: TextualDecoder,
                           perplexity_trace: Sequence[float],
                           training_engine: str | None) -> "GReaTSynthesizer":
        """Reconstruct a fitted synthesizer from persisted state.

        Used by :mod:`repro.store` to revive a bundle without retraining:
        the sampler/engine/guided state are rebuilt deterministically from
        the persisted model, vocabulary and training table, so a loaded
        synthesizer samples bit-identically to the one that was saved.
        """
        synth = cls(config)
        synth._training_table = training_table
        synth._encoder.reseed(config.seed)
        synth._decoder = decoder
        synth._model = model
        synth._perplexity_trace = list(perplexity_trace)
        synth._training_engine = training_engine
        synth._sampler = TemperatureSampler(model, config.sampler)
        synth._sampler.reseed(config.seed)
        synth._engine = synth._sampler.engine
        synth._prepare_guided_state(model.tokenizer)
        return synth

    def _prepare_guided_state(self, tokenizer: WordTokenizer) -> None:
        """Pre-tokenize every column's observed values and the structural glue."""
        self._column_candidates = {}
        self._candidate_token_ids = {}
        self._structure_token_ids = {}
        self._value_token_cache = {}  # vocabulary changes with every fit
        encode = lambda text: [  # noqa: E731 - tiny local helper
            tokenizer.vocabulary.encode_token(tok) for tok in tokenizer.tokenize(text)
        ]
        self._separator_ids = encode(self.config.encoder.pair_separator.strip() or ",")
        for name in self._training_table.column_names:
            values = self._training_table.column(name).unique()
            if not values:
                values = [None]
            self._column_candidates[name] = values
            self._candidate_token_ids[name] = [
                encode(self._encoder.encode_value(value)) or [tokenizer.vocabulary.unk_id]
                for value in values
            ]
            self._structure_token_ids[name] = encode(
                "{}{}".format(name, self.config.encoder.key_value_separator.strip() or ":")
            )

    def _require_fitted(self):
        if not self.is_fitted:
            raise RuntimeError("call fit() before sampling")

    # -- guided sampling ---------------------------------------------------------------

    def _sample_column_value(self, name: str, context_ids: list[int], rng: random.Random):
        """Score every observed value of *name* given the context and sample one."""
        candidates = self._column_candidates[name]
        token_lists = self._candidate_token_ids[name]
        if len(candidates) == 1:
            return candidates[0], token_lists[0]
        log_scores = [
            self._model.score_token_sequence(context_ids, tokens) for tokens in token_lists
        ]
        temperature = max(self.config.sampler.temperature, 1e-6)
        max_score = max(log_scores)
        weights = [math.exp((score - max_score) / temperature) for score in log_scores]
        total = sum(weights)
        threshold = rng.random() * total
        cumulative = 0.0
        for index, weight in enumerate(weights):
            cumulative += weight
            if cumulative >= threshold:
                return candidates[index], token_lists[index]
        return candidates[-1], token_lists[-1]

    def _sample_row_guided(self, prompt_row: dict | None, rng: random.Random) -> dict:
        vocab = self._model.tokenizer.vocabulary
        context: list[int] = [vocab.bos_id]
        row: dict = {}
        encode = lambda text: [  # noqa: E731 - tiny local helper
            vocab.encode_token(tok) for tok in self._model.tokenizer.tokenize(text)
        ]
        for name in self._training_table.column_names:
            context.extend(self._structure_token_ids[name])
            if prompt_row is not None and name in prompt_row:
                value = prompt_row[name]
                value_tokens = encode(self._encoder.encode_value(value))
            else:
                value, value_tokens = self._sample_column_value(name, context, rng)
            row[name] = value
            context.extend(value_tokens)
            context.extend(self._separator_ids)
        return row

    # -- free sampling -------------------------------------------------------------------

    def _sample_row_free(self, prompt_row: dict | None, rng: random.Random) -> dict:
        prompt = None
        if prompt_row:
            prompt = self._encoder.conditional_prompt(prompt_row)
        sentence = self._sampler.sample_valid(self._decoder.is_valid, prompt=prompt)
        if sentence is not None:
            return self._decoder.decode_row(sentence)
        if not self.config.fallback_to_training_rows:
            raise RuntimeError("generation failed to produce a valid row within the retry budget")
        fallback = self._training_table.row(rng.randrange(self._training_table.num_rows))
        if prompt_row:
            fallback = dict(fallback)
            fallback.update(prompt_row)
        return fallback

    # -- batched sampling ---------------------------------------------------------------

    def _encode_value_tokens(self, value) -> list[int]:
        cached = self._value_token_cache.get(value)
        if cached is not None:
            return cached
        vocab = self._model.tokenizer.vocabulary
        tokens = [vocab.encode_token(tok)
                  for tok in self._model.tokenizer.tokenize(self._encoder.encode_value(value))]
        tokens = tokens or [vocab.unk_id]
        self._value_token_cache[value] = tokens
        return tokens

    def _sample_rows_guided_batch(self, prompts: list[dict | None], seed: int,
                                  max_lanes: int | None = None) -> list[dict]:
        """Guided strategy over a whole batch: one engine session per chunk,
        one vectorized candidate draw per column."""
        with obs.span("stage.sample", attrs={"rows": len(prompts), "strategy": "guided"}):
            return self._sample_rows_guided_batch_inner(prompts, seed, max_lanes=max_lanes)

    def _sample_rows_guided_batch_inner(self, prompts: list[dict | None], seed: int,
                                        max_lanes: int | None = None) -> list[dict]:
        engine = self._engine
        rng = np.random.default_rng([_GUIDED_STREAM, seed & SEED_MASK])
        temperature = self.config.sampler.temperature
        batch = max(1, self.config.sampler.batch_lanes)
        if max_lanes is not None:
            batch = max(1, min(batch, int(max_lanes)))
        rows: list[dict] = []
        for start in range(0, len(prompts), batch):
            chunk = prompts[start:start + batch]
            n_lanes = len(chunk)
            session = engine.guided_session(n_lanes, rng=rng)
            chunk_rows: list[dict] = [{} for _ in range(n_lanes)]
            for name in self._training_table.column_names:
                session.extend_shared(self._structure_token_ids[name])
                candidates = self._column_candidates[name]
                token_lists = self._candidate_token_ids[name]
                fixed = [prompt is not None and name in prompt for prompt in chunk]
                if all(fixed):
                    lane_tokens = []
                    for lane, prompt in enumerate(chunk):
                        value = prompt[name]
                        chunk_rows[lane][name] = value
                        lane_tokens.append(self._encode_value_tokens(value))
                else:
                    indices = session.choose(token_lists, temperature=temperature)
                    lane_tokens = []
                    for lane, prompt in enumerate(chunk):
                        if fixed[lane]:
                            value = prompt[name]
                            tokens = self._encode_value_tokens(value)
                        else:
                            value = candidates[int(indices[lane])]
                            tokens = token_lists[int(indices[lane])]
                        chunk_rows[lane][name] = value
                        lane_tokens.append(tokens)
                session.extend_rows(lane_tokens)
                session.extend_shared(self._separator_ids)
            rows.extend(chunk_rows)
        return rows

    def _sample_rows_free_batch(self, prompts: list[dict | None], seed: int,
                                max_lanes: int | None = None) -> list[dict]:
        """Free strategy over a whole batch: generate every lane through the
        engine's validity-retry loop, then decode and backfill fallbacks."""
        with obs.span("stage.free_sample", attrs={"rows": len(prompts), "strategy": "free"}):
            return self._sample_rows_free_batch_inner(prompts, seed, max_lanes=max_lanes)

    def _sample_rows_free_batch_inner(self, prompts: list[dict | None], seed: int,
                                      max_lanes: int | None = None) -> list[dict]:
        tokenizer = self._model.tokenizer
        prompt_ids = None
        if any(prompt for prompt in prompts):
            prompt_texts = self._encoder.conditional_prompts(
                [prompt or {} for prompt in prompts])
            prompt_ids = [
                tokenizer.encode(text, add_bos=False, add_eos=False) if prompt else []
                for prompt, text in zip(prompts, prompt_texts)
            ]
        sentences = self._engine.generate_valid(
            len(prompts), self._decoder.is_valid, prompts=prompt_ids, seed=seed,
            max_lanes=max_lanes
        )
        rng = random.Random(seed)
        rows: list[dict] = []
        for prompt, sentence in zip(prompts, sentences):
            if sentence is not None:
                rows.append(self._decoder.decode_row(sentence))
                continue
            if not self.config.fallback_to_training_rows:
                raise RuntimeError(
                    "generation failed to produce a valid row within the retry budget")
            fallback = self._training_table.row(rng.randrange(self._training_table.num_rows))
            if prompt:
                fallback = dict(fallback)
                fallback.update(prompt)
            rows.append(fallback)
        return rows

    def _sample_rows_batch(self, prompts: list[dict | None], seed: int,
                           max_lanes: int | None = None) -> list[dict]:
        if self.config.sampling_strategy == "guided":
            return self._sample_rows_guided_batch(prompts, seed, max_lanes=max_lanes)
        return self._sample_rows_free_batch(prompts, seed, max_lanes=max_lanes)

    # -- public sampling API ----------------------------------------------------------------

    def sample_row(self, prompt_row: dict | None = None, rng: random.Random | None = None) -> dict:
        """Sample one schema-valid row, optionally conditioned on a partial row.

        The legacy per-row path, kept for incremental use; bulk sampling goes
        through the batched engine in :meth:`sample` / :meth:`sample_conditional`.
        """
        self._require_fitted()
        rng = rng or random.Random(self.config.seed)
        if self.config.sampling_strategy == "guided":
            return self._sample_row_guided(prompt_row, rng)
        return self._sample_row_free(prompt_row, rng)

    def sample(self, n: int, seed: int | None = None,
               max_lanes: int | None = None) -> Table:
        """Sample *n* unconditioned rows as a table with the training schema.

        ``max_lanes`` caps the engine batch width below
        ``config.sampler.batch_lanes`` — block-wise callers pass their block
        size so peak memory scales with the block.  Outputs are reproducible
        per cap (two runs at the same cap are identical); the default
        (uncapped) draw order is unchanged.
        """
        self._require_fitted()
        if n <= 0:
            raise ValueError("n must be positive")
        seed = self.config.seed if seed is None else seed
        records = self._sample_rows_batch([None] * n, seed, max_lanes=max_lanes)
        return Table.from_records(records, columns=self._training_table.column_names)

    def iter_sample(self, n: int, seed: int | None = None,
                    chunk_rows: int | None = None):
        """Yield *n* unconditioned rows as fixed-size table chunks.

        Each chunk of ``chunk_rows`` rows samples under its own derived seed
        (``derive_seed(seed, _CHUNK_STREAM, index)``), so the concatenation is
        a pure function of ``(seed, chunk_rows)`` — :meth:`sample_chunked`
        materializes exactly that table in memory — and only one chunk of
        rows is alive at a time.  Validation is eager.
        """
        self._require_fitted()
        if n <= 0:
            raise ValueError("n must be positive")
        seed = self.config.seed if seed is None else seed
        chunk_rows = n if chunk_rows is None else int(chunk_rows)
        if chunk_rows <= 0:
            raise ValueError("chunk_rows must be positive")
        columns = self._training_table.column_names

        def chunks():
            for index, start in enumerate(range(0, n, chunk_rows)):
                count = min(chunk_rows, n - start)
                chunk_seed = derive_seed(seed, _CHUNK_STREAM, index)
                records = self._sample_rows_batch([None] * count, chunk_seed)
                yield Table.from_records(records, columns=columns)
        return chunks()

    def sample_chunked(self, n: int, seed: int | None = None,
                       chunk_rows: int | None = None) -> Table:
        """The in-memory table equal to concatenating :meth:`iter_sample`."""
        return concat_rows(list(self.iter_sample(n, seed=seed, chunk_rows=chunk_rows)))

    def sample_conditional(self, prompts: list[dict], seed: int | None = None,
                           max_lanes: int | None = None) -> Table:
        """Sample one row per prompt dict, conditioned on the prompt columns."""
        self._require_fitted()
        seed = self.config.seed if seed is None else seed
        if not prompts:
            return Table.from_records([], columns=self._training_table.column_names)
        records = self._sample_rows_batch(list(prompts), seed, max_lanes=max_lanes)
        return Table.from_records(records, columns=self._training_table.column_names)
