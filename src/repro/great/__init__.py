"""GReaT baseline: single-table LLM tabular synthesizer.

Implements the pipeline of Borisov et al. (ICLR 2023) on our substrate:
textual-encode the rows, fine-tune the language-model backbone on the encoded
corpus, sample sentences, and decode the valid ones back into rows.  GReaTER
wraps this synthesizer with its enhancement and connecting stages.
"""

from repro.great.synthesizer import GReaTSynthesizer, GReaTConfig

__all__ = ["GReaTSynthesizer", "GReaTConfig"]
