"""Deterministic fault injection for the serving and storage layers.

Real fault tolerance cannot be tested with real faults — an OOM kill or a
torn disk write happens when it happens.  This module gives the repo's
failure paths a scriptable trigger: a *fault plan* names injection points
and the exact hit numbers at which they fire, so a test or benchmark can
say "the worker crashes on its 25th task" or "the sink raises ``OSError``
on chunk 3" and get that failure, every run, bit-for-bit reproducibly.

Injection points (each is a named counter; code at the point calls
:func:`check` and acts on the returned rule):

* ``worker_crash``     — a worker process dies (``os._exit``) instead of
  executing its next task (:mod:`repro.serving.workers`);
* ``task_hang``        — a worker sleeps (default: effectively forever)
  before executing a task, simulating a wedged request;
* ``sink_oserror``     — :meth:`repro.store.stream.TableSink.write` raises
  ``OSError``, simulating a full or failing disk mid-spill;
* ``bundle_truncated`` — :class:`repro.store.bundle.BundleReader` raises as
  if the bundle file were cut short mid-read;
* ``stream_drop``      — the HTTP server hard-drops the connection after
  writing a streamed chunk, short of the terminating chunk.

Plans are compact strings — rules separated by ``;``::

    worker_crash%25            fire on every 25th hit
    worker_crash@3,7           fire on hits 3 and 7 (1-based)
    task_hang@2=30             fire on hit 2, with argument 30 (seconds)

Arming is explicit and process-local: :func:`arm` installs a plan (tests
use the :func:`armed` context manager), the ``REPRO_FAULTS`` environment
variable arms one lazily at first use, and
:class:`~repro.serving.service.ServingConfig.faults` ships a plan to the
serving layer's worker *processes*, each of which arms its own injector —
so per-process counters (a worker's task count) behave identically for
every pool size and every respawn.  Disarmed, every check is a cheap
``None``.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass

#: Environment variable holding a fault plan armed lazily at first check.
ENV_VAR = "REPRO_FAULTS"

#: The injection points the codebase defines (typo guard for plans).
KNOWN_POINTS = frozenset({
    "worker_crash",
    "task_hang",
    "sink_oserror",
    "bundle_truncated",
    "stream_drop",
})


class FaultSpecError(ValueError):
    """A fault plan string that does not parse."""


@dataclass(frozen=True)
class FaultRule:
    """When one injection point fires: at listed hits, or every Nth hit."""

    point: str
    at: frozenset = frozenset()
    every: int | None = None
    arg: float | None = None

    def fires(self, hit: int) -> bool:
        """Whether the rule fires on the *hit*-th (1-based) check."""
        if self.every is not None:
            return hit % self.every == 0
        return hit in self.at


def parse_plan(spec: str) -> dict[str, FaultRule]:
    """Parse a plan string into one :class:`FaultRule` per injection point."""
    rules: dict[str, FaultRule] = {}
    for part in str(spec).split(";"):
        part = part.strip()
        if not part:
            continue
        arg: float | None = None
        if "=" in part:
            part, _, raw_arg = part.partition("=")
            try:
                arg = float(raw_arg)
            except ValueError:
                raise FaultSpecError(
                    "fault argument {!r} is not a number (rule {!r})".format(raw_arg, part))
        at: frozenset = frozenset()
        every: int | None = None
        if "@" in part:
            point, _, raw_hits = part.partition("@")
            try:
                at = frozenset(int(h) for h in raw_hits.split(","))
            except ValueError:
                raise FaultSpecError(
                    "fault hits {!r} are not integers (point {!r})".format(raw_hits, point))
            if not at or min(at) < 1:
                raise FaultSpecError("fault hits must be 1-based (point {!r})".format(point))
        elif "%" in part:
            point, _, raw_every = part.partition("%")
            try:
                every = int(raw_every)
            except ValueError:
                raise FaultSpecError(
                    "fault period {!r} is not an integer (point {!r})".format(raw_every, point))
            if every < 1:
                raise FaultSpecError("fault period must be positive (point {!r})".format(point))
        else:
            raise FaultSpecError(
                "fault rule {!r} needs '@hits' or '%every' trigger syntax".format(part))
        point = point.strip()
        if point not in KNOWN_POINTS:
            raise FaultSpecError("unknown injection point {!r}; known points are {}".format(
                point, sorted(KNOWN_POINTS)))
        if point in rules:
            raise FaultSpecError("injection point {!r} appears twice in the plan".format(point))
        rules[point] = FaultRule(point=point, at=at, every=every, arg=arg)
    if not rules:
        raise FaultSpecError("fault plan {!r} holds no rules".format(spec))
    return rules


class FaultInjector:
    """Per-process hit counters over a parsed fault plan.

    :meth:`check` increments the named point's counter and returns the
    point's rule iff it fires on this hit — counting only happens for
    points the plan actually names, so untargeted points cost one dict
    lookup.
    """

    def __init__(self, spec: str):
        self.spec = str(spec)
        self._rules = parse_plan(spec)
        self._lock = threading.Lock()
        self._hits: dict[str, int] = {}
        self._fired: dict[str, int] = {}

    def check(self, point: str) -> FaultRule | None:
        rule = self._rules.get(point)
        if rule is None:
            return None
        with self._lock:
            hit = self._hits.get(point, 0) + 1
            self._hits[point] = hit
            fires = rule.fires(hit)
            if fires:
                self._fired[point] = self._fired.get(point, 0) + 1
        return rule if fires else None

    def hits(self, point: str) -> int:
        """How many times *point* has been checked in this process."""
        with self._lock:
            return self._hits.get(point, 0)

    def fired_snapshot(self) -> dict[str, int]:
        """Per-point count of checks that actually fired in this process.

        Crash-style faults never show up here in the dying process's report
        (the process is gone); the surviving side observes them instead.
        The serving workers ship this snapshot back over the result pipe so
        the parent can expose per-fault-point counters.
        """
        with self._lock:
            return dict(self._fired)


_lock = threading.Lock()
_injector: FaultInjector | None = None
_env_loaded = False


def arm(spec: str) -> FaultInjector:
    """Install *spec* as this process's fault plan (replacing any prior one)."""
    global _injector, _env_loaded
    injector = FaultInjector(spec)
    with _lock:
        _injector = injector
        _env_loaded = True
    return injector


def disarm() -> None:
    """Remove the process fault plan (and ignore ``REPRO_FAULTS`` from now on)."""
    global _injector, _env_loaded
    with _lock:
        _injector = None
        _env_loaded = True


@contextmanager
def armed(spec: str):
    """Context manager arming *spec* for the block, disarming on exit."""
    injector = arm(spec)
    try:
        yield injector
    finally:
        disarm()


def active() -> FaultInjector | None:
    """The armed injector, arming one from ``REPRO_FAULTS`` on first use."""
    global _injector, _env_loaded
    with _lock:
        if not _env_loaded:
            _env_loaded = True
            spec = os.environ.get(ENV_VAR)
            if spec:
                _injector = FaultInjector(spec)
        return _injector


def check(point: str) -> FaultRule | None:
    """Count one hit of *point* against the active plan; rule iff it fires."""
    injector = active()
    if injector is None:
        return None
    return injector.check(point)


def fired_snapshot() -> dict[str, int]:
    """Fired counts of the armed injector, or ``{}`` when disarmed."""
    with _lock:
        injector = _injector
    if injector is None:
        return {}
    return injector.fired_snapshot()
