"""Shared pipeline skeleton.

Every pipeline starts the same way (Fig. 1, step 1): drop the columns the
harness excludes (e.g. the trial-splitting ``task_id``), remove the
pseudo-identifier columns whose association scores are misleading
(Sec. 4.1.2), detect the contextual variables in both child tables, and
extract a single merged parent table.  What differs between pipelines is only
how the two child remainders are turned into the child table the parent/child
synthesizer is trained on.

Fitting and sampling are split: :meth:`MultiTablePipeline.fit` runs the
expensive preparation + training stages and returns a
:class:`FittedPipeline` — a persistable object (see :mod:`repro.store`)
that can :meth:`~FittedPipeline.sample` any number of times, in this
process or a fresh one, with bit-identical output for identical seeds.
:meth:`MultiTablePipeline.run` remains the one-shot convenience:
``fit(...).sample()``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.connecting.flatten import direct_flatten
from repro.connecting.preprocessing import DIGIX_NOISY_COLUMNS
from repro.obs import trace as obs
from repro.enhancement.enhancer import DataSemanticEnhancer
from repro.frame.ops import inner_join, left_join
from repro.frame.table import Table
from repro.llm.engine import derive_seed
from repro.pipelines.config import PipelineConfig, SynthesisResult
from repro.relational.contextual import (
    ContextualVariableDetector,
    extract_parent_table,
    merge_contextual_parents,
)
from repro.relational.parent_child import ParentChildSynthesizer


@dataclass
class PreparedTables:
    """Output of the shared preparation stage."""

    parent: Table
    first_child: Table
    second_child: Table
    original_flat: Table
    subject_column: str


#: Sub-stream namespace for per-block seeds of one flat-table request.  The
#: serving layer has always derived its shard seeds from this stream; the
#: streaming path yields the very same blocks, which is what makes a
#: streamed CSV byte-identical to the in-memory ``sample_table`` result.
TABLE_BLOCK_STREAM = 11


def block_plan(n: int, seed: int, block_size: int) -> list[tuple[int, int, int]]:
    """Partition an *n*-row request into ``(start, count, block_seed)`` blocks.

    Block seeds come from ``derive_seed(seed, TABLE_BLOCK_STREAM, index)``,
    so the plan is a pure function of ``(n, seed, block_size)`` — any
    consumer (thread shards, worker processes, streaming writers) that
    samples these blocks and concatenates them in order reproduces the same
    table bit for bit.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if block_size <= 0:
        raise ValueError("block_size must be positive")
    return [
        (start, min(block_size, n - start), derive_seed(seed, TABLE_BLOCK_STREAM, index))
        for index, start in enumerate(range(0, n, block_size))
    ]


@dataclass
class FittedPipeline:
    """A trained pipeline: everything needed to sample, nothing that retrains.

    ``synthesizers`` holds one fitted :class:`ParentChildSynthesizer` for
    GReaTER and the direct-flattening baseline, two (one per round) for
    DEREC.  ``enhancer`` carries the fitted mapping so synthetic output is
    inverse-mapped back to the original label space; ``original_flat`` is
    the evaluation reference; ``details`` the fit-time diagnostics.

    The whole object is persistable through :meth:`save` /
    :meth:`load` (see :mod:`repro.store.bundle`): a pipeline fitted in one
    process, saved and loaded in a fresh process produces byte-identical
    synthetic tables for identical seeds on both engines.
    """

    name: str
    config: PipelineConfig
    subject_column: str
    enhancer: DataSemanticEnhancer
    synthesizers: list[ParentChildSynthesizer]
    original_flat: Table
    n_training_subjects: int
    details: dict = field(default_factory=dict)

    # -- sampling -------------------------------------------------------------------

    def _resolve_n(self, n_subjects: int | None) -> int:
        if n_subjects is not None:
            return n_subjects
        if self.config.n_synthetic_subjects is not None:
            return self.config.n_synthetic_subjects
        return self.n_training_subjects

    def sample(self, n_subjects: int | None = None, seed: int | None = None) -> SynthesisResult:
        """Sample a :class:`SynthesisResult` from the fitted synthesizers.

        ``n_subjects`` defaults to the config's ``n_synthetic_subjects`` and
        then to the training subject count; ``seed`` to the config seed —
        so ``fit(...).sample()`` reproduces the historical ``run(...)``
        output exactly.
        """
        n = self._resolve_n(n_subjects)
        seed = self.config.seed if seed is None else seed
        if len(self.synthesizers) == 2:
            return self._sample_two_round(n, seed)
        return self._sample_single(n, seed)

    def _sample_single(self, n: int, seed: int) -> SynthesisResult:
        synthetic_parent, synthetic_child, synthetic_flat = \
            self.synthesizers[0].sample_all(n, seed=seed)
        enhancer = self.enhancer
        synthetic_flat = enhancer.inverse_transform(synthetic_flat)
        synthetic_parent = enhancer.inverse_transform(synthetic_parent)
        synthetic_child = enhancer.inverse_transform(synthetic_child)
        if self.subject_column in synthetic_flat.column_names:
            synthetic_flat = synthetic_flat.drop(self.subject_column)
        return SynthesisResult(
            synthetic_flat=synthetic_flat,
            original_flat=self.original_flat,
            synthetic_parent=synthetic_parent,
            synthetic_child=synthetic_child,
            pipeline_name=self.name,
            details=dict(self.details),
        )

    def _sample_two_round(self, n: int, seed: int) -> SynthesisResult:
        combined, first_flat = self._two_round_flat(n, seed)
        enhancer = self.enhancer
        synthetic_flat = enhancer.inverse_transform(combined)
        if self.subject_column in synthetic_flat.column_names:
            synthetic_flat = synthetic_flat.drop(self.subject_column)
        details = dict(self.details)
        details["n_synthetic_subjects"] = n
        return SynthesisResult(
            synthetic_flat=synthetic_flat,
            original_flat=self.original_flat,
            synthetic_parent=enhancer.inverse_transform(first_flat),
            synthetic_child=None,
            pipeline_name=self.name,
            details=details,
        )

    def _two_round_flat(self, n: int, seed: int, subject_offset: int = 0,
                        max_lanes: int | None = None) -> tuple[Table, Table]:
        """DEREC's two independent rounds, joined on the synthetic subject key."""
        subject = self.subject_column
        first_flat = self.synthesizers[0].sample_flat(
            n, seed=seed, subject_offset=subject_offset, max_lanes=max_lanes)
        second_flat = self.synthesizers[1].sample_flat(
            n, seed=seed + 1, subject_offset=subject_offset, max_lanes=max_lanes)
        combined = inner_join(first_flat, second_flat, on=subject, suffixes=("", "_round2"))
        duplicated = [name for name in combined.column_names if name.endswith("_round2")]
        if duplicated:
            combined = combined.drop(duplicated)
        return combined, first_flat

    def sample_block(self, start: int, count: int, seed: int) -> Table:
        """Sample one independently seeded block of the synthetic flat view.

        The serving layer's sharding unit: blocks are fully determined by
        ``(fitted state, start, count, seed)``, so any partition of a
        request into blocks — run serially or across workers — concatenates
        to the same table.  Subject keys are numbered from ``start`` so
        block outputs are globally consistent.

        The engine batch width is capped at ``count`` subjects: the child
        round fans out to one lane per child row, which would otherwise
        allocate full ``batch_lanes``-wide mass buffers however small the
        block — the streaming path's peak now scales with the block size.
        """
        with obs.span("stage.generate", attrs={"start": start, "count": count}):
            if len(self.synthesizers) == 2:
                flat, _ = self._two_round_flat(count, seed, subject_offset=start,
                                               max_lanes=count)
            else:
                flat = self.synthesizers[0].sample_flat(count, seed=seed,
                                                        subject_offset=start,
                                                        max_lanes=count)
        with obs.span("stage.decode", attrs={"rows": flat.num_rows}):
            flat = self.enhancer.inverse_transform(flat)
            if self.subject_column in flat.column_names:
                flat = flat.drop(self.subject_column)
        return flat

    def iter_sample_flat(self, n_subjects: int | None = None, seed: int | None = None,
                         chunk_rows: int = 256):
        """Yield the synthetic flat view in independently seeded blocks.

        Blocks follow :func:`block_plan`, i.e. the serving layer's sharding
        scheme, so concatenating the yielded tables equals
        ``SynthesisService.sample_table(n, seed)`` at ``block_size ==
        chunk_rows`` — while holding only one block in memory.  Validation
        is eager.
        """
        n = self._resolve_n(n_subjects)
        seed = self.config.seed if seed is None else seed
        plan = block_plan(n, seed, chunk_rows)

        def blocks():
            for start, count, block_seed in plan:
                yield self.sample_block(start, count, block_seed)
        return blocks()

    # -- persistence ----------------------------------------------------------------

    def save(self, path, compress: bool = False, registry=None) -> str:
        """Persist this fitted pipeline as a bundle; returns the digest.

        With ``registry`` set (a registry directory), the parts go through
        the content-addressed store at that root instead of a bundle file
        and ``path`` is ignored — the returned digest addresses the
        artifact for :meth:`load` and ``serve --registry``.
        """
        if registry is not None:
            from repro.registry import Registry

            return Registry(registry).save(self, compress=compress).digest
        from repro.store.bundle import save_fitted_pipeline

        return save_fitted_pipeline(self, path, compress=compress)

    @staticmethod
    def load(path, mmap: bool = False, registry=None) -> "FittedPipeline":
        """Load a fitted pipeline bundle saved by :meth:`save`.

        With ``registry`` set, ``path`` is the artifact digest (or a unique
        prefix) inside that registry instead of a file path.
        """
        if registry is not None:
            from repro.registry import Registry

            return Registry(registry).load(str(path), mmap=mmap)[0]
        from repro.store.bundle import load_fitted_pipeline

        return load_fitted_pipeline(path, mmap=mmap)[0]


class MultiTablePipeline:
    """Base class: preparation, enhancement plumbing and evaluation reference."""

    #: subclasses set this to the label used in reports
    name = "base"

    def __init__(self, config: PipelineConfig | None = None):
        self.config = config or PipelineConfig()

    # -- preparation ---------------------------------------------------------------------

    def _drop_excluded(self, table: Table) -> Table:
        subject = self.config.subject_column
        to_drop = [
            name for name in table.column_names
            if name != subject and (
                name in self.config.drop_columns or name in DIGIX_NOISY_COLUMNS
            )
        ]
        return table.drop(to_drop) if to_drop else table

    def prepare(self, first: Table, second: Table) -> PreparedTables:
        """Clean both child tables, extract the merged contextual parent, and
        build the flat original reference used by the fidelity evaluation."""
        subject = self.config.subject_column
        first = self._drop_excluded(first)
        second = self._drop_excluded(second)

        detector = ContextualVariableDetector(self.config.contextual_consistency)
        first_split = extract_parent_table(first, subject, detector=detector)
        second_split = extract_parent_table(second, subject, detector=detector)
        parent = merge_contextual_parents(first_split, second_split)

        flat_children = direct_flatten(first_split.child, second_split.child, subject)
        original_flat = left_join(flat_children, parent, on=subject)
        original_flat = original_flat.drop(subject)

        return PreparedTables(
            parent=parent,
            first_child=first_split.child,
            second_child=second_split.child,
            original_flat=original_flat,
            subject_column=subject,
        )

    # -- enhancement plumbing -------------------------------------------------------------

    def _build_enhancer(self) -> DataSemanticEnhancer:
        return DataSemanticEnhancer(self.config.enhancer)

    def _enhance(self, enhancer: DataSemanticEnhancer, reference: Table,
                 parent: Table, child: Table) -> tuple[Table, Table]:
        """Fit the mapping on the flat reference and enhance parent and child."""
        enhancer.fit_transform(reference)
        return enhancer.transform(parent), enhancer.transform(child)

    # -- synthesis plumbing -------------------------------------------------------------

    def _fit_synthesizer(self, parent: Table, child: Table,
                         subject: str) -> ParentChildSynthesizer:
        """Fit one parent/child synthesizer on an (enhanced) table pair."""
        synthesizer = ParentChildSynthesizer(self.config.parent_child())
        synthesizer.fit(parent, child, subject)
        return synthesizer

    # -- public API -----------------------------------------------------------------------

    def fit(self, first: Table, second: Table) -> FittedPipeline:
        """Prepare and train, returning a persistable :class:`FittedPipeline`.

        Subclasses implement :meth:`_fit_prepared`.
        """
        prepared = self.prepare(first, second)
        return self._fit_prepared(prepared)

    def run(self, first: Table, second: Table) -> SynthesisResult:
        """One-shot convenience: ``fit(first, second).sample()``."""
        return self.fit(first, second).sample()

    def _fit_prepared(self, prepared: PreparedTables) -> FittedPipeline:
        raise NotImplementedError
