"""Shared pipeline skeleton.

Every pipeline starts the same way (Fig. 1, step 1): drop the columns the
harness excludes (e.g. the trial-splitting ``task_id``), remove the
pseudo-identifier columns whose association scores are misleading
(Sec. 4.1.2), detect the contextual variables in both child tables, and
extract a single merged parent table.  What differs between pipelines is only
how the two child remainders are turned into the child table the parent/child
synthesizer is trained on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.connecting.flatten import direct_flatten
from repro.connecting.preprocessing import DIGIX_NOISY_COLUMNS
from repro.enhancement.enhancer import DataSemanticEnhancer
from repro.frame.ops import left_join
from repro.frame.table import Table
from repro.pipelines.config import PipelineConfig, SynthesisResult
from repro.relational.contextual import (
    ContextualVariableDetector,
    extract_parent_table,
    merge_contextual_parents,
)
from repro.relational.parent_child import ParentChildSynthesizer


@dataclass
class PreparedTables:
    """Output of the shared preparation stage."""

    parent: Table
    first_child: Table
    second_child: Table
    original_flat: Table
    subject_column: str


class MultiTablePipeline:
    """Base class: preparation, enhancement plumbing and evaluation reference."""

    #: subclasses set this to the label used in reports
    name = "base"

    def __init__(self, config: PipelineConfig | None = None):
        self.config = config or PipelineConfig()

    # -- preparation ---------------------------------------------------------------------

    def _drop_excluded(self, table: Table) -> Table:
        subject = self.config.subject_column
        to_drop = [
            name for name in table.column_names
            if name != subject and (
                name in self.config.drop_columns or name in DIGIX_NOISY_COLUMNS
            )
        ]
        return table.drop(to_drop) if to_drop else table

    def prepare(self, first: Table, second: Table) -> PreparedTables:
        """Clean both child tables, extract the merged contextual parent, and
        build the flat original reference used by the fidelity evaluation."""
        subject = self.config.subject_column
        first = self._drop_excluded(first)
        second = self._drop_excluded(second)

        detector = ContextualVariableDetector(self.config.contextual_consistency)
        first_split = extract_parent_table(first, subject, detector=detector)
        second_split = extract_parent_table(second, subject, detector=detector)
        parent = merge_contextual_parents(first_split, second_split)

        flat_children = direct_flatten(first_split.child, second_split.child, subject)
        original_flat = left_join(flat_children, parent, on=subject)
        original_flat = original_flat.drop(subject)

        return PreparedTables(
            parent=parent,
            first_child=first_split.child,
            second_child=second_split.child,
            original_flat=original_flat,
            subject_column=subject,
        )

    # -- enhancement plumbing -------------------------------------------------------------

    def _build_enhancer(self) -> DataSemanticEnhancer:
        return DataSemanticEnhancer(self.config.enhancer)

    def _enhance(self, enhancer: DataSemanticEnhancer, reference: Table,
                 parent: Table, child: Table) -> tuple[Table, Table]:
        """Fit the mapping on the flat reference and enhance parent and child."""
        enhancer.fit_transform(reference)
        return enhancer.transform(parent), enhancer.transform(child)

    # -- synthesis plumbing -------------------------------------------------------------

    def _fit_and_sample(self, parent: Table, child: Table, subject: str,
                        n_subjects: int | None) -> tuple[Table, Table, Table]:
        """Fit the parent/child synthesizer and sample a synthetic flat view.

        One generation pass: ``sample_all`` derives the flat view by joining
        the sampled pair, so pair and flat view are guaranteed consistent and
        the parent/child generation runs once instead of twice.
        """
        synthesizer = ParentChildSynthesizer(self.config.parent_child())
        synthesizer.fit(parent, child, subject)
        n = n_subjects if n_subjects is not None else parent.num_rows
        return synthesizer.sample_all(n, seed=self.config.seed)

    # -- public API -----------------------------------------------------------------------

    def run(self, first: Table, second: Table) -> SynthesisResult:
        """Prepare, synthesize and return a :class:`SynthesisResult`.

        Subclasses implement :meth:`_run_prepared`.
        """
        prepared = self.prepare(first, second)
        return self._run_prepared(prepared)

    def _run_prepared(self, prepared: PreparedTables) -> SynthesisResult:
        raise NotImplementedError
