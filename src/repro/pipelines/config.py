"""Shared pipeline configuration and result containers."""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.connecting.connector import ConnectorConfig
from repro.enhancement.enhancer import EnhancerConfig
from repro.frame.table import Table
from repro.great.synthesizer import GReaTConfig
from repro.llm.finetune import FineTuneConfig
from repro.llm.ngram_model import ModelConfig
from repro.llm.sampler import SamplerConfig
from repro.relational.parent_child import ParentChildConfig


def default_backbone_config(seed: int = 0, engine: str = "auto",
                            training_engine: str = "auto") -> GReaTConfig:
    """The LM-backbone configuration the pipelines use by default.

    Order-6 n-grams keep the previous column's value inside the context window
    of the next column's value, so cross-column dependencies (and the damage
    ambiguous labels do to them) are actually expressed; 10 epochs / 5 batches
    mirror the paper's REaLTabFormer hyper-parameters (Sec. 4.1.4).
    ``engine`` selects the batch-generation backbone (see
    :mod:`repro.llm.engine`); ``training_engine`` the fine-tuning engine
    (see :mod:`repro.llm.training`).
    """
    model = ModelConfig(order=6, smoothing=0.005,
                        interpolation=(0.42, 0.24, 0.14, 0.1, 0.06, 0.04))
    fine_tune = FineTuneConfig(epochs=10, batches=5, validation_fraction=0.1, seed=seed,
                               model=model, engine=training_engine)
    sampler = SamplerConfig(temperature=0.85, top_k=12, seed=seed, engine=engine)
    return GReaTConfig(fine_tune=fine_tune, sampler=sampler, seed=seed)


@dataclass(frozen=True)
class PipelineConfig:
    """Configuration shared by all multi-table pipelines.

    Parameters
    ----------
    subject_column:
        Key shared by the two child tables (``user_id`` on the DIGIX-like data).
    n_synthetic_subjects:
        How many synthetic parent subjects to sample; ``None`` matches the
        number of subjects in the training data.
    enhancer:
        Data Semantic Enhancement configuration; its ``semantic_level``
        distinguishes the Fig. 8 setups.
    connector:
        Cross-table Connecting configuration; its ``independence_method``
        distinguishes the Fig. 9 setups.
    drop_columns:
        Columns removed from both child tables before anything else (the
        trial-splitting ``task_id`` is dropped by the harness this way).
    contextual_consistency:
        Threshold ``m`` for contextual-variable detection (Appendix A.2).
    generation_engine:
        Batch-generation backbone used by every synthesizer the pipeline
        fits: ``"compiled"`` (frozen CSR arrays), ``"object"`` (legacy dict
        walks) or ``"auto"`` (the ``REPRO_GENERATION_ENGINE`` environment
        variable, defaulting to ``"compiled"``).
    training_engine:
        Fine-tuning engine used by every synthesizer the pipeline fits:
        ``"compiled"`` (batched corpus encode + array count accumulation),
        ``"object"`` (legacy per-token dict updates) or ``"auto"`` (the
        ``REPRO_TRAINING_ENGINE`` environment variable, defaulting to
        ``"compiled"``).  Both engines train bit-identical models.
    """

    subject_column: str = "user_id"
    n_synthetic_subjects: int | None = None
    enhancer: EnhancerConfig = field(default_factory=lambda: EnhancerConfig(semantic_level="none"))
    connector: ConnectorConfig = field(default_factory=ConnectorConfig)
    drop_columns: tuple[str, ...] = ()
    contextual_consistency: float = 0.95
    generation_engine: str = "auto"
    training_engine: str = "auto"
    seed: int = 0

    def backbone(self) -> GReaTConfig:
        """LM backbone configuration derived from the pipeline seed."""
        return default_backbone_config(self.seed, engine=self.generation_engine,
                                       training_engine=self.training_engine)

    def parent_child(self) -> ParentChildConfig:
        """Parent/child synthesizer configuration derived from the backbone."""
        backbone = self.backbone()
        return ParentChildConfig(parent=backbone, child=replace(backbone), seed=self.seed)


@dataclass
class SynthesisResult:
    """What a pipeline run produces.

    ``synthetic_flat`` and ``original_flat`` are directly comparable: both are
    flat tables in the *original* label space whose columns include the parent
    (contextual) columns and the child feature columns.  ``details`` carries
    pipeline-specific diagnostics (connection reports, mapping sizes, ...).
    """

    synthetic_flat: Table
    original_flat: Table
    synthetic_parent: Table | None = None
    synthetic_child: Table | None = None
    pipeline_name: str = ""
    details: dict = field(default_factory=dict)
