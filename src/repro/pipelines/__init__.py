"""End-to-end multi-table synthesis pipelines.

All three pipelines share the same skeleton (Fig. 1): extract the contextual
parent table, prepare a child table, fit the parent/child synthesizer, sample,
and return a synthetic flat table comparable against the original flat data.
They differ only in how the two child tables are combined and whether the
Data Semantic Enhancement System is applied:

* :class:`DirectFlattenPipeline` — naive direct flattening of the two child
  remainders (the paper's first baseline);
* :class:`DERECPipeline` — two separate rounds of parent/child synthesis, one
  per child table, combined independently (the paper's second baseline);
* :class:`GReaTERPipeline` — the proposed method: Cross-table Connecting plus
  optional semantic enhancement.

Beyond the paper's two-child-table setting,
:class:`MultiTableSchemaPipeline` (the ``multitable`` pipeline) takes any
dict of tables, infers the foreign-key graph (see :mod:`repro.schema`) and
synthesizes whole referentially-intact databases.

``pipeline.fit(...)`` returns a persistable fitted pipeline (the
train-once / serve-many split); ``pipeline.run(...)`` remains the one-shot
convenience.
"""

from repro.pipelines.base import FittedPipeline
from repro.pipelines.config import PipelineConfig, SynthesisResult
from repro.pipelines.flatten_baseline import DirectFlattenPipeline
from repro.pipelines.derec import DERECPipeline
from repro.pipelines.greater import GReaTERPipeline
from repro.pipelines.multitable import (
    FittedMultiTablePipeline,
    MultiTablePipelineConfig,
    MultiTableSchemaPipeline,
)

__all__ = [
    "FittedPipeline",
    "FittedMultiTablePipeline",
    "PipelineConfig",
    "MultiTablePipelineConfig",
    "MultiTableSchemaPipeline",
    "SynthesisResult",
    "GReaTERPipeline",
    "DERECPipeline",
    "DirectFlattenPipeline",
]
