"""End-to-end multi-table synthesis pipelines.

All three pipelines share the same skeleton (Fig. 1): extract the contextual
parent table, prepare a child table, fit the parent/child synthesizer, sample,
and return a synthetic flat table comparable against the original flat data.
They differ only in how the two child tables are combined and whether the
Data Semantic Enhancement System is applied:

* :class:`DirectFlattenPipeline` — naive direct flattening of the two child
  remainders (the paper's first baseline);
* :class:`DERECPipeline` — two separate rounds of parent/child synthesis, one
  per child table, combined independently (the paper's second baseline);
* :class:`GReaTERPipeline` — the proposed method: Cross-table Connecting plus
  optional semantic enhancement.

``pipeline.fit(first, second)`` returns a persistable
:class:`FittedPipeline` (the train-once / serve-many split);
``pipeline.run(first, second)`` remains the one-shot convenience.
"""

from repro.pipelines.base import FittedPipeline
from repro.pipelines.config import PipelineConfig, SynthesisResult
from repro.pipelines.flatten_baseline import DirectFlattenPipeline
from repro.pipelines.derec import DERECPipeline
from repro.pipelines.greater import GReaTERPipeline

__all__ = [
    "FittedPipeline",
    "PipelineConfig",
    "SynthesisResult",
    "GReaTERPipeline",
    "DERECPipeline",
    "DirectFlattenPipeline",
]
