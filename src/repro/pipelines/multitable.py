"""The ``multitable`` pipeline: whole-database synthesis over a schema graph.

Unlike the paper pipelines (which take the DIGIX-like two-child-table
trial), :class:`MultiTableSchemaPipeline` takes *any* dict of tables —
typically a directory of CSVs — infers (or accepts) a
:class:`~repro.schema.graph.SchemaGraph`, and fits a
:class:`~repro.schema.multitable.MultiTableSynthesizer`.  It follows the
same fit/sample split as the other pipelines: :meth:`fit` returns a
persistable :class:`FittedMultiTablePipeline` whose
:meth:`~FittedMultiTablePipeline.sample_database` produces bit-identical
databases for identical seeds, in this process or a fresh one.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.frame.table import Table
from repro.pipelines.config import default_backbone_config
from repro.schema.graph import SchemaGraph
from repro.schema.inference import InferenceConfig
from repro.schema.multitable import MultiTableConfig, MultiTableSynthesizer


@dataclass(frozen=True)
class MultiTablePipelineConfig:
    """Configuration of the whole-database pipeline.

    The backbone hyper-parameters mirror the paper pipelines
    (:func:`repro.pipelines.config.default_backbone_config`); ``n_root_rows``
    plays the role of ``n_synthetic_subjects`` — ``None`` matches the
    training sizes of the root tables.
    """

    n_root_rows: int | None = None
    children_per_parent: int | str = "match"
    inference: InferenceConfig = field(default_factory=InferenceConfig)
    generation_engine: str = "auto"
    training_engine: str = "auto"
    seed: int = 0

    def multitable(self) -> MultiTableConfig:
        """The synthesizer configuration derived from this pipeline config."""
        backbone = default_backbone_config(self.seed, engine=self.generation_engine,
                                           training_engine=self.training_engine)
        return MultiTableConfig(backbone=backbone,
                                children_per_parent=self.children_per_parent,
                                inference=self.inference, seed=self.seed)


@dataclass
class FittedMultiTablePipeline:
    """A trained whole-database pipeline: sample forever, never retrain.

    Persistable through :meth:`save` / :meth:`load` (see
    :mod:`repro.store.bundle`): a pipeline fitted in one process, saved and
    loaded in a fresh process produces byte-identical synthetic databases
    for identical seeds on both engines.
    """

    name: str
    config: MultiTablePipelineConfig
    synthesizer: MultiTableSynthesizer

    @property
    def graph(self) -> SchemaGraph:
        return self.synthesizer.graph

    def sample_database(self, n: int | dict | None = None, seed: int | None = None,
                        map_fn=None) -> dict[str, Table]:
        """A whole synthetic database (see
        :meth:`repro.schema.multitable.MultiTableSynthesizer.sample_database`).

        *n* defaults to the config's ``n_root_rows`` and then to the
        training sizes; *seed* to the config seed.
        """
        if n is None:
            n = self.config.n_root_rows
        seed = self.config.seed if seed is None else seed
        return self.synthesizer.sample_database(n, seed=seed, map_fn=map_fn)

    def sample(self, n: int | dict | None = None, seed: int | None = None) -> dict[str, Table]:
        """Alias for :meth:`sample_database` (the pipelines' common verb)."""
        return self.sample_database(n, seed=seed)

    def iter_sample_database(self, n: int | dict | None = None,
                             seed: int | None = None, spool=None,
                             resume: bool = False):
        """Yield ``(name, table)`` pairs level by level, optionally spilling
        completed tables to *spool* so at most one table is in RAM (see
        :meth:`repro.schema.multitable.MultiTableSynthesizer.iter_sample_database`).
        ``resume=True`` restarts an interrupted spill, skipping tables whose
        spill already completed.  Defaults as in :meth:`sample_database`.
        """
        if n is None:
            n = self.config.n_root_rows
        seed = self.config.seed if seed is None else seed
        return self.synthesizer.iter_sample_database(n, seed=seed, spool=spool,
                                                     resume=resume)

    # -- persistence ----------------------------------------------------------------

    def save(self, path, compress: bool = False, registry=None) -> str:
        """Persist this fitted pipeline as a bundle; returns the digest.

        With ``registry`` set (a registry directory), the parts go through
        the content-addressed store at that root instead of a bundle file
        and ``path`` is ignored — the returned digest addresses the
        artifact for :meth:`load` and ``serve --registry``.
        """
        if registry is not None:
            from repro.registry import Registry

            return Registry(registry).save(self, compress=compress).digest
        from repro.store.bundle import save_multitable_pipeline

        return save_multitable_pipeline(self, path, compress=compress)

    @staticmethod
    def load(path, mmap: bool = False, registry=None) -> "FittedMultiTablePipeline":
        """Load a fitted multitable-pipeline bundle saved by :meth:`save`.

        With ``registry`` set, ``path`` is the artifact digest (or a unique
        prefix) inside that registry instead of a file path.
        """
        if registry is not None:
            from repro.registry import Registry

            return Registry(registry).load(str(path), mmap=mmap)[0]
        from repro.store.bundle import load_multitable_pipeline

        return load_multitable_pipeline(path, mmap=mmap)[0]


class MultiTableSchemaPipeline:
    """Infer the schema graph, fit per-edge synthesizers, sample databases."""

    name = "multitable"

    def __init__(self, config: MultiTablePipelineConfig | None = None):
        self.config = config or MultiTablePipelineConfig()

    def fit(self, tables: dict[str, Table],
            graph: SchemaGraph | None = None) -> FittedMultiTablePipeline:
        """Fit on a whole database, returning a persistable fitted pipeline."""
        synthesizer = MultiTableSynthesizer(self.config.multitable())
        synthesizer.fit(tables, graph)
        return FittedMultiTablePipeline(name=self.name, config=self.config,
                                        synthesizer=synthesizer)

    def run(self, tables: dict[str, Table],
            graph: SchemaGraph | None = None) -> dict[str, Table]:
        """One-shot convenience: ``fit(tables, graph).sample_database()``."""
        return self.fit(tables, graph).sample_database()
