"""Direct-flattening baseline (the paper's first benchmark).

The two child remainders are fused by plain flattening on the subject key —
no independence handling, no dimension reduction — and the parent/child
synthesizer is trained on the result.  Engaged subjects dominate the training
corpus and the flattened sentences are long, which is exactly the noise the
Cross-table Connecting Method removes.
"""

from __future__ import annotations

from repro.connecting.flatten import direct_flatten, flattening_report
from repro.pipelines.base import FittedPipeline, MultiTablePipeline, PreparedTables


class DirectFlattenPipeline(MultiTablePipeline):
    """Parent/child synthesis on the directly flattened child tables."""

    name = "direct_flatten"

    def _fit_prepared(self, prepared: PreparedTables) -> FittedPipeline:
        subject = prepared.subject_column

        flattened_child = direct_flatten(prepared.first_child, prepared.second_child, subject)
        report = flattening_report(
            prepared.first_child, prepared.second_child, flattened_child, subject
        )

        enhancer = self._build_enhancer()
        enhanced_parent, enhanced_child = self._enhance(
            enhancer, prepared.original_flat, prepared.parent, flattened_child
        )

        synthesizer = self._fit_synthesizer(enhanced_parent, enhanced_child, subject)

        details = {
            "rows_flattened": report.rows_flattened,
            "max_subject_share": report.max_subject_share,
            "engagement_ratio": report.engagement_ratio,
            "semantic_level": self.config.enhancer.semantic_level,
        }
        return FittedPipeline(
            name=self.name,
            config=self.config,
            subject_column=subject,
            enhancer=enhancer,
            synthesizers=[synthesizer],
            original_flat=prepared.original_flat,
            n_training_subjects=enhanced_parent.num_rows,
            details=details,
        )
