"""Direct-flattening baseline (the paper's first benchmark).

The two child remainders are fused by plain flattening on the subject key —
no independence handling, no dimension reduction — and the parent/child
synthesizer is trained on the result.  Engaged subjects dominate the training
corpus and the flattened sentences are long, which is exactly the noise the
Cross-table Connecting Method removes.
"""

from __future__ import annotations

from repro.connecting.flatten import direct_flatten, flattening_report
from repro.pipelines.base import MultiTablePipeline, PreparedTables
from repro.pipelines.config import SynthesisResult


class DirectFlattenPipeline(MultiTablePipeline):
    """Parent/child synthesis on the directly flattened child tables."""

    name = "direct_flatten"

    def _run_prepared(self, prepared: PreparedTables) -> SynthesisResult:
        subject = prepared.subject_column

        flattened_child = direct_flatten(prepared.first_child, prepared.second_child, subject)
        report = flattening_report(
            prepared.first_child, prepared.second_child, flattened_child, subject
        )

        enhancer = self._build_enhancer()
        enhanced_parent, enhanced_child = self._enhance(
            enhancer, prepared.original_flat, prepared.parent, flattened_child
        )

        synthetic_parent, synthetic_child, synthetic_flat = self._fit_and_sample(
            enhanced_parent, enhanced_child, subject, self.config.n_synthetic_subjects
        )

        synthetic_flat = enhancer.inverse_transform(synthetic_flat)
        synthetic_parent = enhancer.inverse_transform(synthetic_parent)
        synthetic_child = enhancer.inverse_transform(synthetic_child)
        if subject in synthetic_flat.column_names:
            synthetic_flat = synthetic_flat.drop(subject)

        details = {
            "rows_flattened": report.rows_flattened,
            "max_subject_share": report.max_subject_share,
            "engagement_ratio": report.engagement_ratio,
            "semantic_level": self.config.enhancer.semantic_level,
        }
        return SynthesisResult(
            synthetic_flat=synthetic_flat,
            original_flat=prepared.original_flat,
            synthetic_parent=synthetic_parent,
            synthetic_child=synthetic_child,
            pipeline_name=self.name,
            details=details,
        )
