"""DEREC baseline (the paper's second benchmark).

DEREC (Kwok et al., 2024) models the two child tables in two *separate*
rounds of parent/child synthesis — each child table is paired with the
contextual parent and synthesized on its own.  The two synthetic child tables
are then combined by joining on the synthetic subject key, so any cross-child
relationship present in the original data is absent from the synthetic data
by construction.  That modelling gap (plus the redundant re-learning of the
parent distribution) is what the Cross-table Connecting Method removes.
"""

from __future__ import annotations

from repro.pipelines.base import FittedPipeline, MultiTablePipeline, PreparedTables


class DERECPipeline(MultiTablePipeline):
    """Two independent rounds of parent/child synthesis, combined afterwards."""

    name = "derec"

    def _fit_prepared(self, prepared: PreparedTables) -> FittedPipeline:
        subject = prepared.subject_column

        enhancer = self._build_enhancer()
        enhancer.fit_transform(prepared.original_flat)
        enhanced_parent = enhancer.transform(prepared.parent)
        enhanced_first = enhancer.transform(prepared.first_child)
        enhanced_second = enhancer.transform(prepared.second_child)

        # round 1: parent + first child table; round 2: parent + second child
        # table (an independent model of the parent distribution — the
        # redundancy the paper calls out).  Sampling and the per-subject join
        # of the two rounds live on the fitted pipeline.
        first_synth = self._fit_synthesizer(enhanced_parent, enhanced_first, subject)
        second_synth = self._fit_synthesizer(enhanced_parent, enhanced_second, subject)

        details = {
            "rounds": 2,
            "semantic_level": self.config.enhancer.semantic_level,
        }
        return FittedPipeline(
            name=self.name,
            config=self.config,
            subject_column=subject,
            enhancer=enhancer,
            synthesizers=[first_synth, second_synth],
            original_flat=prepared.original_flat,
            n_training_subjects=enhanced_parent.num_rows,
            details=details,
        )
    # NOTE: the per-subject join can blow up when both rounds generate many child
    # rows for the same synthetic subject; keep n_synthetic_subjects modest.
