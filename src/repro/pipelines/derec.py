"""DEREC baseline (the paper's second benchmark).

DEREC (Kwok et al., 2024) models the two child tables in two *separate*
rounds of parent/child synthesis — each child table is paired with the
contextual parent and synthesized on its own.  The two synthetic child tables
are then combined by joining on the synthetic subject key, so any cross-child
relationship present in the original data is absent from the synthetic data
by construction.  That modelling gap (plus the redundant re-learning of the
parent distribution) is what the Cross-table Connecting Method removes.
"""

from __future__ import annotations

from repro.frame.ops import inner_join
from repro.pipelines.base import MultiTablePipeline, PreparedTables
from repro.pipelines.config import SynthesisResult
from repro.relational.parent_child import ParentChildSynthesizer


class DERECPipeline(MultiTablePipeline):
    """Two independent rounds of parent/child synthesis, combined afterwards."""

    name = "derec"

    def _run_prepared(self, prepared: PreparedTables) -> SynthesisResult:
        subject = prepared.subject_column
        n_subjects = (
            self.config.n_synthetic_subjects
            if self.config.n_synthetic_subjects is not None
            else prepared.parent.num_rows
        )

        enhancer = self._build_enhancer()
        enhancer.fit_transform(prepared.original_flat)
        enhanced_parent = enhancer.transform(prepared.parent)
        enhanced_first = enhancer.transform(prepared.first_child)
        enhanced_second = enhancer.transform(prepared.second_child)

        # round 1: parent + first child table
        first_synth = ParentChildSynthesizer(self.config.parent_child())
        first_synth.fit(enhanced_parent, enhanced_first, subject)
        first_flat = first_synth.sample_flat(n_subjects, seed=self.config.seed)

        # round 2: parent + second child table (an independent model of the parent
        # distribution — the redundancy the paper calls out)
        second_synth = ParentChildSynthesizer(self.config.parent_child())
        second_synth.fit(enhanced_parent, enhanced_second, subject)
        second_flat = second_synth.sample_flat(n_subjects, seed=self.config.seed + 1)

        # combine the two rounds on the synthetic subject key; the parent columns
        # of the second round are redundant duplicates and are dropped.
        combined = inner_join(first_flat, second_flat, on=subject, suffixes=("", "_round2"))
        duplicated = [name for name in combined.column_names if name.endswith("_round2")]
        if duplicated:
            combined = combined.drop(duplicated)

        synthetic_flat = enhancer.inverse_transform(combined)
        if subject in synthetic_flat.column_names:
            synthetic_flat = synthetic_flat.drop(subject)

        details = {
            "rounds": 2,
            "n_synthetic_subjects": n_subjects,
            "semantic_level": self.config.enhancer.semantic_level,
        }
        return SynthesisResult(
            synthetic_flat=synthetic_flat,
            original_flat=prepared.original_flat,
            synthetic_parent=enhancer.inverse_transform(first_flat),
            synthetic_child=None,
            pipeline_name=self.name,
            details=details,
        )
    # NOTE: the per-subject join can blow up when both rounds generate many child
    # rows for the same synthetic subject; keep n_synthetic_subjects modest.
