"""The GReaTER pipeline (the paper's proposed method).

Fig. 1: (1) extract the contextual parent table, (2) enhance the data
semantics so the textual encoder produces semantically meaningful sentences,
(3) fuse the two child tables with the Cross-table Connecting Method instead
of direct flattening, then fit the parent/child synthesizer and sample.  The
synthetic output is inverse-mapped back to the original label space before it
is returned (Sec. 3.2.3).
"""

from __future__ import annotations

from repro.connecting.connector import CrossTableConnector
from repro.pipelines.base import MultiTablePipeline, PreparedTables
from repro.pipelines.config import SynthesisResult


class GReaTERPipeline(MultiTablePipeline):
    """Semantic enhancement + cross-table connecting + parent/child synthesis."""

    name = "greater"

    def _run_prepared(self, prepared: PreparedTables) -> SynthesisResult:
        subject = prepared.subject_column

        # (3) cross-table connecting of the two child remainders
        connector = CrossTableConnector(self.config.connector)
        connection = connector.connect(prepared.first_child, prepared.second_child, subject)
        connected_child = connection.connected

        # (2) data semantic enhancement, fitted on the flat original reference
        enhancer = self._build_enhancer()
        enhanced_parent, enhanced_child = self._enhance(
            enhancer, prepared.original_flat, prepared.parent, connected_child
        )

        # parent/child synthesis on the enhanced tables
        synthetic_parent, synthetic_child, synthetic_flat = self._fit_and_sample(
            enhanced_parent, enhanced_child, subject, self.config.n_synthetic_subjects
        )

        # inverse mapping back to the original label space, then drop the key
        synthetic_flat = enhancer.inverse_transform(synthetic_flat)
        synthetic_parent = enhancer.inverse_transform(synthetic_parent)
        synthetic_child = enhancer.inverse_transform(synthetic_child)
        if subject in synthetic_flat.column_names:
            synthetic_flat = synthetic_flat.drop(subject)

        details = {
            "independence_method": self.config.connector.independence_method,
            "independent_columns": list(connection.independence.independent_columns)
            if connection.independence else [],
            "rows_flattened": connection.flattening.rows_flattened,
            "rows_connected": connected_child.num_rows,
            "semantic_level": self.config.enhancer.semantic_level,
            "special_transform": self.config.enhancer.apply_special_transform,
            "mapped_columns": enhancer.mapping.columns,
        }
        return SynthesisResult(
            synthetic_flat=synthetic_flat,
            original_flat=prepared.original_flat,
            synthetic_parent=synthetic_parent,
            synthetic_child=synthetic_child,
            pipeline_name=self.name,
            details=details,
        )
