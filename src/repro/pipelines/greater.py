"""The GReaTER pipeline (the paper's proposed method).

Fig. 1: (1) extract the contextual parent table, (2) enhance the data
semantics so the textual encoder produces semantically meaningful sentences,
(3) fuse the two child tables with the Cross-table Connecting Method instead
of direct flattening, then fit the parent/child synthesizer and sample.  The
synthetic output is inverse-mapped back to the original label space before it
is returned (Sec. 3.2.3).
"""

from __future__ import annotations

from repro.connecting.connector import CrossTableConnector
from repro.pipelines.base import FittedPipeline, MultiTablePipeline, PreparedTables


class GReaTERPipeline(MultiTablePipeline):
    """Semantic enhancement + cross-table connecting + parent/child synthesis."""

    name = "greater"

    def _fit_prepared(self, prepared: PreparedTables) -> FittedPipeline:
        subject = prepared.subject_column

        # (3) cross-table connecting of the two child remainders
        connector = CrossTableConnector(self.config.connector)
        connection = connector.connect(prepared.first_child, prepared.second_child, subject)
        connected_child = connection.connected

        # (2) data semantic enhancement, fitted on the flat original reference
        enhancer = self._build_enhancer()
        enhanced_parent, enhanced_child = self._enhance(
            enhancer, prepared.original_flat, prepared.parent, connected_child
        )

        # parent/child training on the enhanced tables; sampling (and the
        # inverse mapping back to the original label space) happens on the
        # returned fitted pipeline
        synthesizer = self._fit_synthesizer(enhanced_parent, enhanced_child, subject)

        details = {
            "independence_method": self.config.connector.independence_method,
            "independent_columns": list(connection.independence.independent_columns)
            if connection.independence else [],
            "rows_flattened": connection.flattening.rows_flattened,
            "rows_connected": connected_child.num_rows,
            "semantic_level": self.config.enhancer.semantic_level,
            "special_transform": self.config.enhancer.apply_special_transform,
            "mapped_columns": enhancer.mapping.columns,
        }
        return FittedPipeline(
            name=self.name,
            config=self.config,
            subject_column=subject,
            enhancer=enhancer,
            synthesizers=[synthesizer],
            original_flat=prepared.original_flat,
            n_training_subjects=enhanced_parent.num_rows,
            details=details,
        )
