"""Offline language-model substrate.

GReaT and REaLTabFormer fine-tune a GPT-2 backbone on textual-encoded table
rows and then sample new rows from it.  The properties GReaTER's claims rest
on are (1) identically spelled tokens are indistinguishable to the model,
which is why repeated numerical labels ('1' in *Lunch* vs '1' in *Access
Device*) create false associations, and (2) the model learns co-occurrence
statistics of the training corpus and reproduces them at sampling time.

This subpackage provides an interpolated back-off n-gram language model with
the same interface (``fine_tune`` on a corpus, ``generate`` samples) and the
same two properties, so every GReaTER stage — encode, fine-tune, sample,
decode, inverse-map — executes end to end on a CPU with no external model
weights.
"""

from repro.llm.tokenizer import WordTokenizer, Vocabulary, SPECIAL_TOKENS, EncodedCorpus
from repro.llm.ngram_model import NGramLanguageModel, ModelConfig
from repro.llm.sampler import SamplerConfig, TemperatureSampler
from repro.llm.compiled import CompiledNGramModel
from repro.llm.engine import BatchGenerationEngine, GENERATION_ENGINES, resolve_engine_kind
from repro.llm.training import (
    ArrayTrainedNGramModel,
    CorpusCounts,
    TRAINING_ENGINES,
    accumulate_counts,
    resolve_training_engine,
)
from repro.llm.finetune import FineTuneConfig, FineTuner
from repro.llm.embeddings import CooccurrenceEmbedding

__all__ = [
    "WordTokenizer",
    "Vocabulary",
    "SPECIAL_TOKENS",
    "EncodedCorpus",
    "NGramLanguageModel",
    "ModelConfig",
    "TemperatureSampler",
    "SamplerConfig",
    "CompiledNGramModel",
    "BatchGenerationEngine",
    "GENERATION_ENGINES",
    "resolve_engine_kind",
    "ArrayTrainedNGramModel",
    "CorpusCounts",
    "TRAINING_ENGINES",
    "accumulate_counts",
    "resolve_training_engine",
    "FineTuner",
    "FineTuneConfig",
    "CooccurrenceEmbedding",
]
