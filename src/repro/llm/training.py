"""Compiled training engine: array-based n-gram count accumulation.

The legacy training path walks every sentence token by token, incrementing
nested ``dict[context] -> Counter`` tables — repeated for every epoch and
permutation pass.  This module treats token statistics as an array problem:
the corpus is one flat token-id array (:class:`~repro.llm.tokenizer
.EncodedCorpus`), every order's n-gram occurrences are packed into int64
keys with a handful of vectorized shifts, and the counts fall out of a
single ``sort + np.unique(return_counts=True)`` reduction per order.  Epoch
repetition scales the resulting integer counts analytically instead of
re-looping the corpus.

The reduction directly emits the sorted CSR layout
:class:`~repro.llm.compiled.CompiledNGramModel` uses (packed context keys
ascend, tokens ascend within a context), so the compiled sampling view is
constructed from the arrays without ever materialising the dict tables.
:class:`ArrayTrainedNGramModel` keeps the full
:class:`~repro.llm.ngram_model.NGramLanguageModel` API: any legacy caller
that reaches for the dict tables triggers a one-off, exact materialisation.

The engine is selected per :class:`~repro.llm.finetune.FineTuneConfig` (its
``engine`` field), falling back to the ``REPRO_TRAINING_ENGINE`` environment
variable and finally to ``"compiled"`` — mirroring the frame-backend and
generation-engine switches.  Both engines produce bit-identical counts,
vocabulary ids and perplexity traces, hence identical synthetic tables for
identical seeds.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.llm.backends import resolve_backend_kind
from repro.llm.compiled import CompiledNGramModel, _MAX_PACKED_KEY
from repro.llm.ngram_model import ModelConfig, NGramLanguageModel
from repro.llm.tokenizer import EncodedCorpus, WordTokenizer

#: Concrete training engines (``"auto"`` resolves to one of these).
TRAINING_ENGINES = ("object", "compiled")

_ENV_VAR = "REPRO_TRAINING_ENGINE"


def resolve_training_engine(kind: str | None = None) -> str:
    """Resolve ``None``/``"auto"`` through the environment to a concrete engine."""
    return resolve_backend_kind(kind, _ENV_VAR, TRAINING_ENGINES,
                                default="compiled", label="training engine")


@dataclass(frozen=True)
class CorpusCounts:
    """Integer n-gram counts of one corpus pass, in sorted CSR layout.

    Per context length ``k`` (``1 <= k < order``): ``keys[k]`` holds the
    packed context keys in ascending order, ``row_ptr[k]`` the CSR row
    pointers, and ``tokens[k]``/``counts[k]`` the continuation token ids
    (ascending within each context) with their occurrence counts;
    ``totals[k]`` is the per-context total.  ``tokens0``/``counts0``/
    ``total0`` cover the empty (unigram) context.  All counts are exact
    integers so epoch repetition is a single scalar multiply.
    """

    order: int
    vocab_size: int
    keys: dict
    row_ptr: dict
    tokens: dict
    counts: dict
    totals: dict
    tokens0: np.ndarray
    counts0: np.ndarray
    total0: int

    def scaled(self, multiplier: int) -> "CorpusCounts":
        """Counts after *multiplier* identical passes over the corpus."""
        if multiplier == 1:
            return self
        return CorpusCounts(
            order=self.order,
            vocab_size=self.vocab_size,
            keys=self.keys,
            row_ptr=self.row_ptr,
            tokens=self.tokens,
            counts={k: counts * multiplier for k, counts in self.counts.items()},
            totals={k: totals * multiplier for k, totals in self.totals.items()},
            tokens0=self.tokens0,
            counts0=self.counts0 * multiplier,
            total0=self.total0 * multiplier,
        )


def accumulate_counts(encoded: EncodedCorpus, order: int,
                      vocab_size: int) -> CorpusCounts | None:
    """One-pass n-gram count accumulation over an encoded corpus.

    Replicates ``NGramLanguageModel._update`` exactly: for every sentence,
    positions ``1 .. len - 1`` contribute a target, and a length-``k``
    context is counted only when it fits strictly after the leading
    ``<bos>`` (the legacy loop's ``position - k - 1 < 0`` break, which keeps
    ``<bos>`` out of every counted context).  Contexts and targets are
    packed together into one int64 key per occurrence and reduced with
    ``np.unique``.  Returns ``None`` when the vocabulary is too large to
    pack ``order`` tokens into an int64 (callers fall back to the dict
    path — correctness over speed, as with the compiled sampler).
    """
    if vocab_size < 1 or max(vocab_size, 2) ** order >= _MAX_PACKED_KEY:
        return None
    ids = np.asarray(encoded.ids, dtype=np.int64)
    offsets = np.asarray(encoded.offsets, dtype=np.int64)
    n = ids.size
    starts = np.repeat(offsets[:-1], np.diff(offsets))
    positions = np.arange(n, dtype=np.int64) - starts

    keys: dict = {}
    row_ptr: dict = {}
    tokens: dict = {}
    counts: dict = {}
    totals: dict = {}
    for k in range(1, order):
        # occurrences: windows ids[g - k : g + 1] with the whole window past
        # the sentence's <bos>, i.e. target position >= k + 1
        if n > k:
            valid = positions[k:] >= k + 1
            packed = ids[:n - k][valid]
            for j in range(1, k + 1):
                packed = packed * vocab_size + ids[j:n - k + j][valid]
        else:
            packed = np.empty(0, dtype=np.int64)
        entry_keys, entry_counts = np.unique(packed, return_counts=True)
        context_of_entry = entry_keys // vocab_size
        context_keys, context_sizes = np.unique(context_of_entry, return_counts=True)
        pointers = np.zeros(context_keys.size + 1, dtype=np.int64)
        np.cumsum(context_sizes, out=pointers[1:])
        keys[k] = context_keys
        row_ptr[k] = pointers
        tokens[k] = entry_keys % vocab_size
        counts[k] = entry_counts.astype(np.int64)
        totals[k] = (np.add.reduceat(entry_counts, pointers[:-1]).astype(np.int64)
                     if context_keys.size else np.empty(0, dtype=np.int64))

    targets = ids[positions >= 1]
    tokens0, counts0 = np.unique(targets, return_counts=True)
    return CorpusCounts(
        order=order,
        vocab_size=vocab_size,
        keys=keys,
        row_ptr=row_ptr,
        tokens=tokens,
        counts=counts,
        totals=totals,
        tokens0=tokens0,
        counts0=counts0.astype(np.int64),
        total0=int(counts0.sum()),
    )


class ArrayTrainedNGramModel(NGramLanguageModel):
    """A model trained by the compiled engine.

    Holds the epoch-scaled :class:`CorpusCounts` and hands the batch engines
    a cached, directly constructed
    :class:`~repro.llm.compiled.CompiledNGramModel`.  The legacy dict tables
    are materialised lazily — only when a caller actually walks them (the
    object generation backbone, per-row guided sampling, further ``fit``
    calls) — and are exactly equal to what dict-based training would have
    produced.
    """

    def __init__(self, tokenizer: WordTokenizer, config: ModelConfig,
                 counts: CorpusCounts, trained_sentences: int):
        super().__init__(tokenizer, config)
        self._array_counts: CorpusCounts | None = counts
        self._trained_sentences = trained_sentences
        self._dicts_ready = False
        self._compiled: CompiledNGramModel | None = None

    # -- compiled view -----------------------------------------------------------------

    def compiled_model(self) -> CompiledNGramModel:
        if self._compiled is None:
            if self._array_counts is not None:
                self._compiled = CompiledNGramModel.from_counts(
                    self._array_counts, self.tokenizer, self.config, model=self)
            else:  # re-trained after construction: freeze the dict tables
                return super().compiled_model()
        return self._compiled

    # -- lazy dict materialisation -----------------------------------------------------

    def _materialize_dicts(self) -> None:
        counts = self._array_counts
        vocab_size = counts.vocab_size
        for k in range(1, self.config.order):
            keys = counts.keys[k]
            if not keys.size:
                continue
            pointers = counts.row_ptr[k]
            token_lists = counts.tokens[k].tolist()
            count_lists = counts.counts[k].tolist()
            total_list = counts.totals[k].tolist()
            digits = np.empty((keys.size, k), dtype=np.int64)
            remainder = keys.copy()
            for j in range(k - 1, -1, -1):
                digits[:, j] = remainder % vocab_size
                remainder //= vocab_size
            digit_rows = digits.tolist()
            for row in range(keys.size):
                context = tuple(digit_rows[row])
                lo, hi = int(pointers[row]), int(pointers[row + 1])
                self._counts[k][context] = Counter(
                    dict(zip(token_lists[lo:hi], count_lists[lo:hi])))
                self._context_totals[k][context] = total_list[row]
        if counts.tokens0.size:
            self._counts[0][()] = Counter(
                dict(zip(counts.tokens0.tolist(), counts.counts0.tolist())))
            self._context_totals[0][()] = int(counts.total0)
        self._dicts_ready = True

    def _ensure_dict_tables(self) -> None:
        if not self._dicts_ready and self._array_counts is not None:
            self._materialize_dicts()

    def distribution_components(self, context_ids):
        self._ensure_dict_tables()
        return super().distribution_components(context_ids)

    def fit(self, corpus, epochs: int = 1):
        # incremental re-training falls back to the dict tables: materialise
        # them first so the update lands on the full state, and drop the
        # array/compiled views, which would otherwise go stale
        self._ensure_dict_tables()
        self._array_counts = None
        self._compiled = None
        return super().fit(corpus, epochs=epochs)
