"""Co-occurrence token embeddings.

Used only for analysis and the Fig. 2 reproduction: the embedding of a token
is its (PPMI-weighted) co-occurrence profile over the corpus.  Because the
tokenizer maps identical surface strings to one id, an ambiguous '1' shared by
several columns gets a single, blended embedding — whereas after the semantic
enhancement each renamed category keeps its own profile.  The Fig. 2 benchmark
measures exactly this collapse.
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from collections.abc import Iterable

import numpy as np

from repro.llm.tokenizer import WordTokenizer


class CooccurrenceEmbedding:
    """Sparse PPMI co-occurrence vectors over a fixed context window."""

    def __init__(self, tokenizer: WordTokenizer, window: int = 4):
        if window < 1:
            raise ValueError("window must be at least 1")
        self.tokenizer = tokenizer
        self.window = window
        self._cooccurrence: dict[str, Counter] = defaultdict(Counter)
        self._token_counts: Counter = Counter()
        self._total_pairs = 0

    def fit(self, corpus: Iterable[str]) -> "CooccurrenceEmbedding":
        """Accumulate co-occurrence counts from the corpus."""
        for sentence in corpus:
            tokens = self.tokenizer.tokenize(sentence)
            for i, token in enumerate(tokens):
                self._token_counts[token] += 1
                lo = max(0, i - self.window)
                hi = min(len(tokens), i + self.window + 1)
                for j in range(lo, hi):
                    if j == i:
                        continue
                    self._cooccurrence[token][tokens[j]] += 1
                    self._total_pairs += 1
        return self

    def vector(self, token: str, context_tokens: list[str]) -> np.ndarray:
        """PPMI vector of *token* over an explicit list of context tokens."""
        if self._total_pairs == 0:
            raise RuntimeError("fit() must be called before querying embeddings")
        profile = self._cooccurrence.get(token, Counter())
        token_total = sum(profile.values())
        values = []
        for context in context_tokens:
            joint = profile.get(context, 0)
            if joint == 0 or token_total == 0:
                values.append(0.0)
                continue
            context_total = sum(self._cooccurrence.get(context, Counter()).values())
            pmi = math.log(
                (joint / self._total_pairs)
                / ((token_total / self._total_pairs) * (context_total / self._total_pairs))
            )
            values.append(max(pmi, 0.0))
        return np.asarray(values, dtype=float)

    def similarity(self, token_a: str, token_b: str, context_tokens: list[str] | None = None) -> float:
        """Cosine similarity of two token embeddings (0 when either is empty)."""
        if context_tokens is None:
            context_tokens = sorted(self._token_counts)
        a = self.vector(token_a, context_tokens)
        b = self.vector(token_b, context_tokens)
        norm = float(np.linalg.norm(a) * np.linalg.norm(b))
        if norm == 0.0:
            return 0.0
        return float(np.dot(a, b) / norm)

    def context_entropy(self, token: str) -> float:
        """Shannon entropy of the token's context distribution (in nats).

        Ambiguous tokens shared across unrelated columns have notably higher
        context entropy than tokens used in a single column — the quantitative
        form of the Fig. 2 argument.
        """
        profile = self._cooccurrence.get(token, Counter())
        total = sum(profile.values())
        if total == 0:
            return 0.0
        entropy = 0.0
        for count in profile.values():
            p = count / total
            entropy -= p * math.log(p)
        return entropy
