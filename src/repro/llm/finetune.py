"""Fine-tuning loop.

The paper reports fine-tuning REaLTabFormer objects for "10 epochs and 5
batches" (Sec. 4.1.4).  For the n-gram substrate an epoch is one pass of
count accumulation and a batch is a shard of the corpus; the loop exposes the
same knobs plus a per-epoch held-out perplexity trace so experiments can show
the model actually adapts to the encoded corpus.
"""

from __future__ import annotations

import random
from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.llm.ngram_model import ModelConfig, NGramLanguageModel
from repro.llm.tokenizer import WordTokenizer


@dataclass(frozen=True)
class FineTuneConfig:
    """Hyper-parameters of the fine-tuning loop (paper defaults in Sec. 4.1.4)."""

    epochs: int = 10
    batches: int = 5
    validation_fraction: float = 0.1
    shuffle: bool = True
    seed: int = 0
    model: ModelConfig = field(default_factory=ModelConfig)

    def __post_init__(self):
        if self.epochs < 1:
            raise ValueError("epochs must be at least 1")
        if self.batches < 1:
            raise ValueError("batches must be at least 1")
        if not 0.0 <= self.validation_fraction < 1.0:
            raise ValueError("validation_fraction must be in [0, 1)")


@dataclass
class FineTuneResult:
    """Outcome of a fine-tuning run."""

    model: NGramLanguageModel
    perplexity_trace: list[float]
    train_size: int
    validation_size: int


class FineTuner:
    """Fit a language model on a textual-encoded corpus, epoch by epoch."""

    def __init__(self, tokenizer: WordTokenizer, config: FineTuneConfig | None = None):
        self.tokenizer = tokenizer
        self.config = config or FineTuneConfig()

    def fine_tune(self, corpus: Sequence[str]) -> FineTuneResult:
        """Train a fresh model on *corpus* and return it with its perplexity trace."""
        corpus = list(corpus)
        if not corpus:
            raise ValueError("cannot fine-tune on an empty corpus")

        rng = random.Random(self.config.seed)
        order = list(range(len(corpus)))
        if self.config.shuffle:
            rng.shuffle(order)
        shuffled = [corpus[i] for i in order]

        n_validation = int(len(shuffled) * self.config.validation_fraction)
        validation = shuffled[:n_validation]
        training = shuffled[n_validation:] or shuffled

        # make sure every token (including validation-only ones) is in the vocabulary
        self.tokenizer.fit(shuffled)
        model = NGramLanguageModel(self.tokenizer, self.config.model)

        batch_size = max(1, len(training) // self.config.batches)
        perplexity_trace: list[float] = []
        for _ in range(self.config.epochs):
            for start in range(0, len(training), batch_size):
                model.fit(training[start:start + batch_size], epochs=1)
            if validation:
                perplexity_trace.append(model.perplexity(validation))
        if not perplexity_trace:
            perplexity_trace.append(model.perplexity(training))
        return FineTuneResult(
            model=model,
            perplexity_trace=perplexity_trace,
            train_size=len(training),
            validation_size=len(validation),
        )
