"""Fine-tuning loop.

The paper reports fine-tuning REaLTabFormer objects for "10 epochs and 5
batches" (Sec. 4.1.4).  For the n-gram substrate an epoch is one pass of
count accumulation and a batch is a shard of the corpus; the loop exposes the
same knobs plus a per-epoch held-out perplexity trace so experiments can show
the model actually adapts to the encoded corpus.

Two interchangeable engines run the loop (see :mod:`repro.llm.training`):

* ``"object"`` — the legacy path: per-sentence tokenisation and token-by-token
  updates of the nested ``dict[context] -> Counter`` tables, one pass per
  epoch, per-epoch validation scoring through the object model.
* ``"compiled"`` — one batched corpus encode into a flat id array, one
  array-reduction count accumulation, analytic epoch scaling, and per-epoch
  validation scoring through the compiled CSR scorer.

Both engines produce bit-identical counts, vocabulary ids and perplexity
traces, so a given seed maps to one deterministic fine-tuning outcome
regardless of the engine.  The engine is picked per :class:`FineTuneConfig`
(its ``engine`` field), falling back to the ``REPRO_TRAINING_ENGINE``
environment variable and finally to ``"compiled"``.
"""

from __future__ import annotations

import random
from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.llm.compiled import CompiledNGramModel
from repro.llm.ngram_model import (
    ModelConfig,
    NGramLanguageModel,
    perplexity_from_probabilities,
)
from repro.llm.tokenizer import WordTokenizer
from repro.llm.training import (
    ArrayTrainedNGramModel,
    accumulate_counts,
    resolve_training_engine,
)

#: Accepted values of :attr:`FineTuneConfig.engine`.
ENGINE_CHOICES = ("auto", "object", "compiled")


@dataclass(frozen=True)
class FineTuneConfig:
    """Hyper-parameters of the fine-tuning loop (paper defaults in Sec. 4.1.4).

    ``engine`` picks the training engine (``"object"`` keeps the legacy dict
    updates, ``"compiled"`` runs the array path; ``"auto"`` resolves through
    the ``REPRO_TRAINING_ENGINE`` environment variable to ``"compiled"``).
    """

    epochs: int = 10
    batches: int = 5
    validation_fraction: float = 0.1
    shuffle: bool = True
    seed: int = 0
    model: ModelConfig = field(default_factory=ModelConfig)
    engine: str = "auto"

    def __post_init__(self):
        if self.epochs < 1:
            raise ValueError("epochs must be at least 1")
        if self.batches < 1:
            raise ValueError("batches must be at least 1")
        if not 0.0 <= self.validation_fraction < 1.0:
            raise ValueError("validation_fraction must be in [0, 1)")
        if self.engine not in ENGINE_CHOICES:
            raise ValueError(
                "engine must be one of {}, got {!r}".format(ENGINE_CHOICES, self.engine)
            )


@dataclass
class FineTuneResult:
    """Outcome of a fine-tuning run."""

    model: NGramLanguageModel
    perplexity_trace: list[float]
    train_size: int
    validation_size: int
    engine: str = "object"


class FineTuner:
    """Fit a language model on a textual-encoded corpus, epoch by epoch."""

    def __init__(self, tokenizer: WordTokenizer, config: FineTuneConfig | None = None):
        self.tokenizer = tokenizer
        self.config = config or FineTuneConfig()

    def fine_tune(self, corpus: Sequence[str]) -> FineTuneResult:
        """Train a fresh model on *corpus* and return it with its perplexity trace."""
        corpus = list(corpus)
        if not corpus:
            raise ValueError("cannot fine-tune on an empty corpus")

        rng = random.Random(self.config.seed)
        order = list(range(len(corpus)))
        if self.config.shuffle:
            rng.shuffle(order)
        shuffled = [corpus[i] for i in order]

        n_validation = int(len(shuffled) * self.config.validation_fraction)
        validation = shuffled[:n_validation]
        training = shuffled[n_validation:] or shuffled

        if resolve_training_engine(self.config.engine) == "compiled":
            result = self._fine_tune_compiled(shuffled, training, validation)
            if result is not None:
                return result
            # vocabulary too large for packed int64 keys: run the dict path
            # (the vocabulary fitted above is reused — fit() is idempotent)
        return self._fine_tune_object(shuffled, training, validation)

    # -- object engine: the legacy dict path --------------------------------------------

    def _fine_tune_object(self, shuffled: list[str], training: list[str],
                          validation: list[str]) -> FineTuneResult:
        # make sure every token (including validation-only ones) is in the vocabulary
        self.tokenizer.fit(shuffled)
        model = NGramLanguageModel(self.tokenizer, self.config.model)

        batch_size = max(1, len(training) // self.config.batches)
        perplexity_trace: list[float] = []
        for _ in range(self.config.epochs):
            for start in range(0, len(training), batch_size):
                model.fit(training[start:start + batch_size], epochs=1)
            if validation:
                perplexity_trace.append(model.perplexity(validation))
        if not perplexity_trace:
            perplexity_trace.append(model.perplexity(training))
        return FineTuneResult(
            model=model,
            perplexity_trace=perplexity_trace,
            train_size=len(training),
            validation_size=len(validation),
            engine="object",
        )

    # -- compiled engine: the array path -------------------------------------------------

    def _fine_tune_compiled(self, shuffled: list[str], training: list[str],
                            validation: list[str]) -> FineTuneResult | None:
        """One encode, one count reduction, analytic epoch scaling.

        An epoch of the batched loop is exactly one pass over the training
        corpus (the batch shards partition it), so the counts after epoch
        ``e`` are ``e`` times the single-pass counts — no re-looping.  The
        per-epoch validation perplexities are computed by the compiled CSR
        scorer on count views scaled to each epoch.  Returns ``None`` when
        the vocabulary cannot be packed (caller falls back to the object
        engine).
        """
        config = self.config
        encoded = self.tokenizer.fit_encode_corpus(shuffled)
        n_validation = len(validation)
        if len(training) == len(shuffled):  # covers the empty-split fallback
            training_encoded = encoded
        else:
            training_encoded = encoded.slice(n_validation, encoded.n_sentences)
        counts = accumulate_counts(training_encoded, config.model.order,
                                   len(self.tokenizer.vocabulary))
        if counts is None:
            return None

        perplexity_trace: list[float] = []
        if validation:
            validation_encoded = encoded.slice(0, n_validation)
            base_scorer = CompiledNGramModel.from_counts(
                counts, self.tokenizer, config.model)
            for epoch in range(1, config.epochs + 1):
                scorer = base_scorer.with_count_multiplier(epoch)
                perplexity_trace.append(perplexity_from_probabilities(
                    scorer.score_corpus(validation_encoded.ids,
                                        validation_encoded.offsets)))

        model = ArrayTrainedNGramModel(
            self.tokenizer, config.model, counts.scaled(config.epochs),
            trained_sentences=len(training) * config.epochs,
        )
        if not perplexity_trace:
            perplexity_trace.append(perplexity_from_probabilities(
                model.compiled_model().score_corpus(training_encoded.ids,
                                                    training_encoded.offsets)))
        return FineTuneResult(
            model=model,
            perplexity_trace=perplexity_trace,
            train_size=len(training),
            validation_size=len(validation),
            engine="compiled",
        )
