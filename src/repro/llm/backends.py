"""Shared backend-switch resolution for the pluggable LLM engines.

The generation engine (``REPRO_GENERATION_ENGINE``) and the training engine
(``REPRO_TRAINING_ENGINE``) follow the frame substrate's storage-backend
convention: an explicit concrete kind wins, ``"auto"``/``None`` falls back to
the environment variable, and an unset or invalid environment value resolves
to the compiled default.  One resolver implements that contract so the
switches cannot drift apart.
"""

from __future__ import annotations

import os


def resolve_backend_kind(kind: str | None, env_var: str,
                         choices: tuple[str, ...], default: str,
                         label: str) -> str:
    """Resolve ``None``/``"auto"`` through *env_var* to a concrete *choices* entry."""
    kind = kind or "auto"
    if kind == "auto":
        kind = os.environ.get(env_var, default)
        if kind not in choices:
            kind = default
    if kind not in choices:
        raise ValueError(
            "{} must be one of {} or 'auto', got {!r}".format(label, choices, kind)
        )
    return kind
