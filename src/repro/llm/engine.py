"""Batched generation engine.

The legacy sampling path advanced one sequence at a time, walking the n-gram
count dicts once per token.  This module advances *hundreds of in-flight
sequences per step*: one vectorized categorical draw (temperature + top-k via
``argpartition``) across the whole batch per token position, per-sequence EOS
retirement, and vectorized validity-based retry that regenerates only the
rejected lanes.

Two interchangeable backbones compute the per-step mass matrices:

* ``"object"`` — the legacy data structures: per-lane walks over the model's
  nested ``dict[context] -> Counter`` tables
  (:meth:`~repro.llm.ngram_model.NGramLanguageModel.distribution_components`).
* ``"compiled"`` — :class:`~repro.llm.compiled.CompiledNGramModel`'s frozen
  CSR arrays, fully vectorized across lanes.

Both backbones produce bit-identical mass matrices (same expression shapes,
same accumulation order), and everything downstream of the masses — RNG
stream, temperature/top-k selection, EOS retirement, retry scheduling — is
shared code.  Identical seeds therefore produce identical sequences on either
backbone, which the perf harness (``benchmarks.perf.bench_generation``)
asserts end to end.

The backbone is picked per :class:`~repro.llm.sampler.SamplerConfig` (its
``engine`` field), falling back to the ``REPRO_GENERATION_ENGINE``
environment variable and finally to ``"compiled"`` — mirroring the frame
substrate's storage-backend selection.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

from repro.llm.backends import resolve_backend_kind
from repro.llm.ngram_model import NGramLanguageModel
from repro.llm.sampler import SamplerConfig

#: Concrete generation engines (``"auto"`` resolves to one of these).
GENERATION_ENGINES = ("object", "compiled")

_ENV_VAR = "REPRO_GENERATION_ENGINE"

#: Probability floor applied before taking logs, matching the legacy
#: ``token_probability`` clamp.
_LOG_FLOOR = 1e-12

#: ``np.random.default_rng`` rejects negative seeds; callers historically
#: passed arbitrary ints to ``random.Random``, so seeds are mapped into the
#: non-negative range before seeding.
SEED_MASK = 2 ** 63 - 1


def seeded_rng(seed: int | None) -> np.random.Generator:
    """A deterministic generator for any int seed (negative seeds included)."""
    if seed is None:
        return np.random.default_rng()
    return np.random.default_rng(int(seed) & SEED_MASK)


def derive_seed(seed: int, *path: int) -> int:
    """Deterministic child seed for a named position under *seed*.

    Built on :class:`numpy.random.SeedSequence`, so derived seeds are
    well-spread, platform-independent and a pure function of
    ``(seed, path)``.  This is the determinism primitive behind both the
    serving layer's sharded sampling (blocks of one table request) and the
    schema subsystem's per-table streams — shared here, next to
    :data:`SEED_MASK`, so the two layers can never drift apart.
    """
    sequence = np.random.SeedSequence([int(seed) & SEED_MASK] + [int(p) for p in path])
    return int(sequence.generate_state(1, dtype=np.uint64)[0]) & SEED_MASK


def resolve_engine_kind(kind: str | None = None) -> str:
    """Resolve ``None``/``"auto"`` through the environment to a concrete engine."""
    return resolve_backend_kind(kind, _ENV_VAR, GENERATION_ENGINES,
                                default="compiled", label="generation engine")


class ObjectBackbone:
    """Per-lane mass computation on the legacy dict-of-Counter tables."""

    kind = "object"

    def __init__(self, model: NGramLanguageModel):
        self.model = model
        self.vocab_size = len(model.tokenizer.vocabulary)

    def _lane_context(self, contexts: np.ndarray, lengths: np.ndarray, lane: int) -> list[int]:
        length = int(lengths[lane])
        if length == 0:
            return []
        return [int(t) for t in contexts[lane, contexts.shape[1] - length:]]

    def dense_masses(self, contexts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
        n_lanes = contexts.shape[0]
        dense = np.empty((n_lanes, self.vocab_size), dtype=np.float64)
        for lane in range(n_lanes):
            rest, layers = self.model.distribution_components(
                self._lane_context(contexts, lengths, lane))
            row = dense[lane]
            row.fill(rest)
            for counts, scale, _ in layers:
                ids = np.fromiter(counts.keys(), dtype=np.int64, count=len(counts))
                values = np.fromiter(counts.values(), dtype=np.float64, count=len(counts))
                row[ids] += values * scale
        return dense

    def token_masses(self, contexts: np.ndarray, lengths: np.ndarray,
                     tokens: int | np.ndarray) -> np.ndarray:
        per_lane = not np.isscalar(tokens)
        n_lanes = contexts.shape[0]
        masses = np.empty(n_lanes, dtype=np.float64)
        for lane in range(n_lanes):
            token_id = int(tokens[lane]) if per_lane else tokens
            rest, layers = self.model.distribution_components(
                self._lane_context(contexts, lengths, lane))
            mass = rest
            for counts, scale, _ in layers:
                count = counts.get(token_id)
                if count:
                    mass += count * scale
            masses[lane] = mass
        return masses


class BatchGenerationEngine:
    """Advance whole batches of sequences through a trained backbone.

    The engine owns the RNG protocol (a :class:`numpy.random.Generator`, one
    uniform vector per batch step), so a given seed maps to one deterministic
    generation trace regardless of which backbone computes the masses.
    """

    def __init__(self, model: NGramLanguageModel, config: SamplerConfig | None = None,
                 kind: str | None = None):
        if not model.is_trained:
            raise ValueError("the model must be fit() before building an engine")
        self.model = model
        self.config = config or SamplerConfig()
        self.kind = resolve_engine_kind(kind if kind is not None else self.config.engine)
        if self.kind == "compiled":
            # array-trained models hand back their cached CSR freeze, so no
            # dict walk (or re-freeze) happens here
            self._backbone = model.compiled_model()
        else:
            self._backbone = ObjectBackbone(model)
        self.tokenizer = model.tokenizer
        vocabulary = model.tokenizer.vocabulary
        self._pad_id = vocabulary.pad_id
        self._bos_id = vocabulary.bos_id
        self._eos_id = vocabulary.eos_id
        self._width = model.config.order - 1

    # -- free-text batched generation ---------------------------------------------------

    def generate_ids_batch(self, n: int, prompts: Sequence[Sequence[int]] | None = None,
                           seed: int | None = None,
                           rng: np.random.Generator | None = None,
                           max_lanes: int | None = None) -> list[list[int]]:
        """Sample *n* token-id sequences (prompt included, ``<bos>`` stripped).

        ``prompts`` optionally conditions each lane on a token-id prefix.
        Lanes retire individually when they sample ``<eos>``; every step draws
        one uniform vector across the still-active lanes.  ``max_lanes`` caps
        the engine batch below ``config.batch_lanes`` — the streaming path
        passes its block size so the per-step ``(lanes, vocab)`` mass buffers
        scale with the chunk instead of staying at the configured width.
        """
        sequences: list[list[int]] = []
        for chunk in self.iter_generate_ids_batch(n, prompts=prompts, seed=seed,
                                                  rng=rng, max_lanes=max_lanes):
            sequences.extend(chunk)
        return sequences

    def iter_generate_ids_batch(self, n: int, prompts: Sequence[Sequence[int]] | None = None,
                                seed: int | None = None,
                                rng: np.random.Generator | None = None,
                                max_lanes: int | None = None):
        """Yield the sequences of :meth:`generate_ids_batch` one engine batch
        at a time.

        Lanes retire per batch of ``config.batch_lanes`` (capped by
        ``max_lanes``), so concatenating the yielded chunks reproduces
        ``generate_ids_batch`` at the same cap exactly — the shared RNG
        advances identically — while only one batch of sequences is alive
        at a time.  Arguments are validated eagerly (before the first chunk is
        requested).
        """
        if n <= 0:
            raise ValueError("n must be positive")
        if prompts is not None and len(prompts) != n:
            raise ValueError("prompts must have one entry per requested sequence")
        rng = seeded_rng(seed) if rng is None else rng
        batch = max(1, self.config.batch_lanes)
        if max_lanes is not None:
            batch = max(1, min(batch, int(max_lanes)))

        def chunks():
            for start in range(0, n, batch):
                stop = min(start + batch, n)
                chunk = prompts[start:stop] if prompts is not None else None
                yield self._generate_chunk(stop - start, chunk, rng)
        return chunks()

    def _generate_chunk(self, n_lanes: int, prompts, rng: np.random.Generator) -> list[list[int]]:
        width = self._width
        contexts = np.zeros((n_lanes, max(width, 0)), dtype=np.int64)
        lengths = np.zeros(n_lanes, dtype=np.int64)
        prefixes: list[list[int]] = []
        for lane in range(n_lanes):
            prefix = [self._bos_id] + ([int(t) for t in prompts[lane]] if prompts else [])
            prefixes.append(prefix[1:])
            if width > 0:
                tail = prefix[-width:]
                contexts[lane, width - len(tail):] = tail
                lengths[lane] = len(tail)
        active = np.arange(n_lanes)
        config = self.config
        # generated tokens accumulate into a preallocated matrix — one fancy
        # write per step across the surviving lanes instead of a Python
        # append per lane
        generated = np.empty((n_lanes, config.max_tokens), dtype=np.int64)
        n_generated = np.zeros(n_lanes, dtype=np.int64)
        for _ in range(config.max_tokens):
            if active.size == 0:
                break
            masses = self._backbone.dense_masses(contexts[active], lengths[active])
            masses[:, self._pad_id] = 0.0
            masses[:, self._bos_id] = 0.0
            tokens = _draw_tokens(masses, rng, config.temperature, config.top_k)
            alive = tokens != self._eos_id
            kept = active[alive]
            kept_tokens = tokens[alive]
            if kept.size:
                generated[kept, n_generated[kept]] = kept_tokens
                n_generated[kept] += 1
                if width > 0:
                    rows = contexts[kept]
                    rows[:, :-1] = rows[:, 1:]
                    rows[:, -1] = kept_tokens
                    contexts[kept] = rows
                    lengths[kept] = np.minimum(lengths[kept] + 1, width)
            active = kept
        counts = n_generated.tolist()
        return [prefix + generated[lane, :counts[lane]].tolist()
                for lane, prefix in enumerate(prefixes)]

    def generate_sentences(self, n: int, prompts: Sequence[Sequence[int]] | None = None,
                           seed: int | None = None,
                           rng: np.random.Generator | None = None) -> list[str]:
        """Sample *n* decoded sentences."""
        return self.tokenizer.decode_batch(
            self.generate_ids_batch(n, prompts=prompts, seed=seed, rng=rng))

    def generate_valid(self, n: int, is_valid: Callable[[str], bool],
                       prompts: Sequence[Sequence[int]] | None = None,
                       seed: int | None = None,
                       max_lanes: int | None = None) -> list[str | None]:
        """Sample *n* sentences, regenerating only the lanes *is_valid* rejects.

        Each retry round re-batches the still-invalid lanes; lanes that never
        produce a valid sentence within ``max_retries`` rounds come back as
        ``None`` (callers decide whether to fall back, as in GReaT).
        """
        if n <= 0:
            raise ValueError("n must be positive")
        rng = seeded_rng(seed)
        results: list[str | None] = [None] * n
        pending = list(range(n))
        for _ in range(self.config.max_retries):
            if not pending:
                break
            sub_prompts = [prompts[i] for i in pending] if prompts is not None else None
            batches = self.generate_ids_batch(len(pending), prompts=sub_prompts, rng=rng,
                                              max_lanes=max_lanes)
            sentences = self.tokenizer.decode_batch(batches)
            still_pending: list[int] = []
            for slot, lane in enumerate(pending):
                sentence = sentences[slot]
                if is_valid(sentence):
                    results[lane] = sentence
                else:
                    still_pending.append(lane)
            pending = still_pending
        return results

    # -- guided batched generation ------------------------------------------------------

    def guided_session(self, n_lanes: int, seed: int | None = None,
                       rng: np.random.Generator | None = None) -> "GuidedBatchSession":
        """Open a batched guided-sampling session over *n_lanes* sequences."""
        rng = seeded_rng(seed) if rng is None else rng
        return GuidedBatchSession(self, n_lanes, rng)

    def _score_candidates(self, contexts: np.ndarray, lengths: np.ndarray,
                          token_lists: Sequence[Sequence[int]]) -> np.ndarray:
        """Log score of each candidate token sequence per lane, shape (lanes, candidates).

        The first token of every candidate is scored from one dense mass
        matrix; longer candidates extend a simulated context and gather the
        single target-token mass per additional position.
        """
        dense = self._backbone.dense_masses(contexts, lengths)
        first = np.fromiter((tokens[0] for tokens in token_lists), dtype=np.int64,
                            count=len(token_lists))
        scores = np.log(np.maximum(dense[:, first], _LOG_FLOOR))
        max_len = max(len(tokens) for tokens in token_lists)
        if max_len == 1:
            return scores
        # longer candidates: advance one simulated context per candidate and
        # score every candidate's position-p token in a single stacked call
        n_lanes = contexts.shape[0]
        multi = [c for c, tokens in enumerate(token_lists) if len(tokens) > 1]
        simulated = {c: (contexts.copy(), lengths.copy()) for c in multi}
        for position in range(1, max_len):
            live = [c for c in multi if len(token_lists[c]) > position]
            if not live:
                break
            for c in live:
                sim_contexts, sim_lengths = simulated[c]
                _advance_shared(sim_contexts, sim_lengths,
                                int(token_lists[c][position - 1]))
            stacked_contexts = np.concatenate([simulated[c][0] for c in live])
            stacked_lengths = np.concatenate([simulated[c][1] for c in live])
            stacked_tokens = np.concatenate([
                np.full(n_lanes, int(token_lists[c][position]), dtype=np.int64)
                for c in live
            ])
            masses = self._backbone.token_masses(stacked_contexts, stacked_lengths,
                                                 stacked_tokens)
            log_masses = np.log(np.maximum(masses, _LOG_FLOOR))
            for slot, c in enumerate(live):
                scores[:, c] += log_masses[slot * n_lanes:(slot + 1) * n_lanes]
        return scores


class GuidedBatchSession:
    """Column-by-column batched row sampling against a shared context buffer.

    Mirrors the legacy guided strategy: the per-lane context accumulates
    ``<bos>``, the structural 'Column:' tokens, and each chosen value, and
    every :meth:`choose` call scores all candidate values for all lanes and
    resolves them with a single vectorized softmax draw.
    """

    def __init__(self, engine: BatchGenerationEngine, n_lanes: int,
                 rng: np.random.Generator):
        if n_lanes <= 0:
            raise ValueError("n_lanes must be positive")
        self._engine = engine
        self._rng = rng
        width = engine._width
        self.n_lanes = n_lanes
        self.contexts = np.zeros((n_lanes, max(width, 0)), dtype=np.int64)
        self.lengths = np.zeros(n_lanes, dtype=np.int64)
        self.extend_shared([engine._bos_id])

    def extend_shared(self, token_ids: Sequence[int]) -> None:
        """Append the same token sequence to every lane's context."""
        width = self._engine._width
        count = len(token_ids)
        if width == 0 or count == 0:
            return
        if count >= width:
            self.contexts[:] = np.asarray(token_ids[-width:], dtype=np.int64)
            self.lengths[:] = width
            return
        self.contexts[:, :width - count] = self.contexts[:, count:]
        self.contexts[:, width - count:] = np.asarray(token_ids, dtype=np.int64)
        self.lengths = np.minimum(self.lengths + count, width)

    def extend_rows(self, token_lists: Sequence[Sequence[int]]) -> None:
        """Append a (possibly different) token sequence per lane.

        Lanes sharing a sequence are advanced together, so the cost scales
        with the number of *distinct* sequences, not the batch size.
        """
        if len(token_lists) != self.n_lanes:
            raise ValueError("token_lists must have one entry per lane")
        width = self._engine._width
        if width == 0:
            return
        lengths = {len(tokens) for tokens in token_lists}
        if len(lengths) == 1:
            # uniform-length fast path: one shift for the whole batch
            count = lengths.pop()
            if count == 0:
                return
            block = np.asarray(token_lists, dtype=np.int64)
            if count >= width:
                self.contexts[:] = block[:, count - width:]
                self.lengths[:] = width
                return
            self.contexts[:, :width - count] = self.contexts[:, count:]
            self.contexts[:, width - count:] = block
            self.lengths = np.minimum(self.lengths + count, width)
            return
        groups: dict[tuple, list[int]] = {}
        for lane, tokens in enumerate(token_lists):
            groups.setdefault(tuple(tokens), []).append(lane)
        for tokens, lanes in groups.items():
            count = len(tokens)
            if count == 0:
                continue
            rows = np.asarray(lanes)
            if count >= width:
                self.contexts[rows] = np.asarray(tokens[-width:], dtype=np.int64)
                self.lengths[rows] = width
                continue
            block = self.contexts[rows]
            block[:, :width - count] = block[:, count:]
            block[:, width - count:] = np.asarray(tokens, dtype=np.int64)
            self.contexts[rows] = block
            self.lengths[rows] = np.minimum(self.lengths[rows] + count, width)

    def choose(self, token_lists: Sequence[Sequence[int]],
               temperature: float | None = None) -> np.ndarray:
        """Score the candidates for every lane and draw one index per lane."""
        if not token_lists:
            raise ValueError("choose() needs at least one candidate")
        if any(len(tokens) == 0 for tokens in token_lists):
            raise ValueError("candidate token sequences must be non-empty")
        if len(token_lists) == 1:
            return np.zeros(self.n_lanes, dtype=np.int64)
        if temperature is None:
            temperature = self._engine.config.temperature
        scores = self._engine._score_candidates(self.contexts, self.lengths, token_lists)
        return _choose_indices(scores, self._rng, temperature)


# -- shared vectorized selection (identical for both backbones) -------------------------

def _draw_tokens(masses: np.ndarray, rng: np.random.Generator,
                 temperature: float, top_k: int | None) -> np.ndarray:
    """One categorical draw per lane from unnormalised masses."""
    n_lanes, vocab_size = masses.shape
    if top_k is not None and 0 < top_k < vocab_size:
        selected = np.argpartition(masses, vocab_size - top_k, axis=1)[:, vocab_size - top_k:]
        candidates = np.take_along_axis(masses, selected, axis=1)
    else:
        selected = None
        candidates = masses
    n_candidates = candidates.shape[1]
    if temperature <= 0:
        picks = np.argmax(candidates, axis=1)
    else:
        weights = candidates ** (1.0 / temperature)
        totals = weights.sum(axis=1)
        uniforms = rng.random(n_lanes)
        thresholds = uniforms * totals
        cumulative = np.cumsum(weights, axis=1)
        picks = np.minimum((cumulative < thresholds[:, None]).sum(axis=1), n_candidates - 1)
        dead = totals <= 0
        if dead.any():  # nothing sampleable: fall back to a uniform pick
            picks[dead] = np.minimum((uniforms[dead] * n_candidates).astype(np.int64),
                                     n_candidates - 1)
    if selected is not None:
        return selected[np.arange(n_lanes), picks]
    return picks


def _choose_indices(scores: np.ndarray, rng: np.random.Generator,
                    temperature: float) -> np.ndarray:
    """Softmax draw over per-lane candidate log scores (guided sampling)."""
    temperature = max(temperature, 1e-6)
    peak = scores.max(axis=1)
    weights = np.exp((scores - peak[:, None]) / temperature)
    totals = weights.sum(axis=1)
    thresholds = rng.random(scores.shape[0]) * totals
    cumulative = np.cumsum(weights, axis=1)
    return np.minimum((cumulative < thresholds[:, None]).sum(axis=1), scores.shape[1] - 1)


def _advance_shared(contexts: np.ndarray, lengths: np.ndarray, token_id: int) -> None:
    """Shift every lane's context left by one and append *token_id* (in place)."""
    if contexts.shape[1] == 0:
        return
    contexts[:, :-1] = contexts[:, 1:]
    contexts[:, -1] = token_id
    np.minimum(lengths + 1, contexts.shape[1], out=lengths)
