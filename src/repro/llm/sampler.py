"""Sampling front-end over the language model.

Separating sampling policy (temperature, top-k, retries, per-batch seeds) from
the model itself mirrors how GReaT exposes a ``sample`` method independent of
the fine-tuned backbone, and gives the benchmark harness one place to control
generation hyper-parameters.

Batch APIs (:meth:`TemperatureSampler.sample_batch`,
:meth:`TemperatureSampler.sample_valid`) delegate to the
:class:`~repro.llm.engine.BatchGenerationEngine`, whose backbone is selected
by :attr:`SamplerConfig.engine` (``"auto"`` resolves through the
``REPRO_GENERATION_ENGINE`` environment variable to ``"compiled"``).
"""

from __future__ import annotations

import random
from collections.abc import Callable
from dataclasses import dataclass

from repro.llm.ngram_model import NGramLanguageModel

#: Accepted values of :attr:`SamplerConfig.engine`; the concrete engines are
#: defined in :mod:`repro.llm.engine`.
ENGINE_CHOICES = ("auto", "object", "compiled")


@dataclass(frozen=True)
class SamplerConfig:
    """Generation hyper-parameters.

    ``max_retries`` bounds how many candidate sentences are drawn per accepted
    sample when a validity predicate is supplied (GReaT similarly discards
    rows it cannot parse back into the table schema).  ``engine`` picks the
    batch-generation backbone (``"object"`` keeps the legacy dict walks,
    ``"compiled"`` uses the frozen CSR arrays); ``batch_lanes`` caps how many
    sequences are advanced in flight per vectorized step.
    """

    temperature: float = 1.0
    top_k: int | None = 12
    max_tokens: int = 160
    max_retries: int = 8
    seed: int = 0
    engine: str = "auto"
    batch_lanes: int = 512

    def __post_init__(self):
        if self.temperature < 0:
            raise ValueError("temperature must be non-negative")
        if self.max_tokens <= 0:
            raise ValueError("max_tokens must be positive")
        if self.max_retries < 1:
            raise ValueError("max_retries must be at least 1")
        if self.engine not in ENGINE_CHOICES:
            raise ValueError(
                "engine must be one of {}, got {!r}".format(ENGINE_CHOICES, self.engine)
            )
        if self.batch_lanes < 1:
            raise ValueError("batch_lanes must be at least 1")


class TemperatureSampler:
    """Draw sentences from a trained model, optionally rejecting invalid ones."""

    def __init__(self, model: NGramLanguageModel, config: SamplerConfig | None = None):
        self.model = model
        self.config = config or SamplerConfig()
        self._rng = random.Random(self.config.seed)
        self._engine = None

    @property
    def engine(self):
        """The batch-generation engine (built lazily on first use)."""
        if self._engine is None:
            from repro.llm.engine import BatchGenerationEngine

            self._engine = BatchGenerationEngine(self.model, self.config)
        return self._engine

    def reseed(self, seed: int) -> None:
        """Reset the internal random stream (used per trial by the harness)."""
        self._rng = random.Random(seed)

    def _derive_seed(self) -> int:
        """Engine seed drawn from the sampler's stateful stream."""
        return self._rng.randrange(2 ** 32)

    def _prompt_ids(self, prompt: str | None) -> list[int] | None:
        if not prompt:
            return None
        return self.model.tokenizer.encode(prompt, add_bos=False, add_eos=False)

    def sample_sentence(self, prompt: str | None = None) -> str:
        """Draw a single sentence (legacy per-sequence path)."""
        return self.model.generate(
            self._rng,
            max_tokens=self.config.max_tokens,
            temperature=self.config.temperature,
            top_k=self.config.top_k,
            prompt=prompt,
        )

    def sample_valid(self, is_valid: Callable[[str], bool], prompt: str | None = None) -> str | None:
        """Draw sentences until one passes *is_valid* (or retries are exhausted).

        Returns ``None`` when no valid sentence was produced, letting callers
        decide whether to fall back (the synthesizers fall back to resampling a
        training row, matching GReaT's behaviour of only emitting parseable
        rows).
        """
        prompt_ids = self._prompt_ids(prompt)
        prompts = [prompt_ids] if prompt_ids is not None else None
        return self.engine.generate_valid(
            1, is_valid, prompts=prompts, seed=self._derive_seed()
        )[0]

    def sample_batch(self, n: int, prompt: str | None = None) -> list[str]:
        """Draw *n* sentences in one batched engine pass."""
        prompt_ids = self._prompt_ids(prompt)
        prompts = [prompt_ids] * n if prompt_ids is not None else None
        return self.engine.generate_sentences(n, prompts=prompts, seed=self._derive_seed())
