"""Sampling front-end over the language model.

Separating sampling policy (temperature, top-k, retries, per-batch seeds) from
the model itself mirrors how GReaT exposes a ``sample`` method independent of
the fine-tuned backbone, and gives the benchmark harness one place to control
generation hyper-parameters.
"""

from __future__ import annotations

import random
from collections.abc import Callable
from dataclasses import dataclass

from repro.llm.ngram_model import NGramLanguageModel


@dataclass(frozen=True)
class SamplerConfig:
    """Generation hyper-parameters.

    ``max_retries`` bounds how many candidate sentences are drawn per accepted
    sample when a validity predicate is supplied (GReaT similarly discards
    rows it cannot parse back into the table schema).
    """

    temperature: float = 1.0
    top_k: int | None = 12
    max_tokens: int = 160
    max_retries: int = 8
    seed: int = 0

    def __post_init__(self):
        if self.temperature < 0:
            raise ValueError("temperature must be non-negative")
        if self.max_tokens <= 0:
            raise ValueError("max_tokens must be positive")
        if self.max_retries < 1:
            raise ValueError("max_retries must be at least 1")


class TemperatureSampler:
    """Draw sentences from a trained model, optionally rejecting invalid ones."""

    def __init__(self, model: NGramLanguageModel, config: SamplerConfig | None = None):
        self.model = model
        self.config = config or SamplerConfig()
        self._rng = random.Random(self.config.seed)

    def reseed(self, seed: int) -> None:
        """Reset the internal random stream (used per trial by the harness)."""
        self._rng = random.Random(seed)

    def sample_sentence(self, prompt: str | None = None) -> str:
        """Draw a single sentence."""
        return self.model.generate(
            self._rng,
            max_tokens=self.config.max_tokens,
            temperature=self.config.temperature,
            top_k=self.config.top_k,
            prompt=prompt,
        )

    def sample_valid(self, is_valid: Callable[[str], bool], prompt: str | None = None) -> str | None:
        """Draw sentences until one passes *is_valid* (or retries are exhausted).

        Returns ``None`` when no valid sentence was produced, letting callers
        decide whether to fall back (the synthesizers fall back to resampling a
        training row, matching GReaT's behaviour of only emitting parseable
        rows).
        """
        for _ in range(self.config.max_retries):
            sentence = self.sample_sentence(prompt=prompt)
            if is_valid(sentence):
                return sentence
        return None

    def sample_batch(self, n: int, prompt: str | None = None) -> list[str]:
        """Draw *n* sentences."""
        return [self.sample_sentence(prompt=prompt) for _ in range(n)]
