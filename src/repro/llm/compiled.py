"""Compiled (frozen) view of the n-gram backbone.

After :meth:`~repro.llm.ngram_model.NGramLanguageModel.fit` the nested
``dict[context] -> Counter`` tables are append-only no more: sampling only
reads them.  :class:`CompiledNGramModel` freezes them into CSR-style NumPy
arrays — one sorted context-key table per order, a flat token-id/count array
sliced by a row-pointer array, and precomputed smoothing constants — so the
per-token inner loop of generation becomes array lookups instead of nested
dict walks, and whole batches of in-flight sequences can be advanced with a
handful of vectorized operations.

The mass semantics are exactly those of
:meth:`~repro.llm.ngram_model.NGramLanguageModel.distribution_components`:
for every non-skipped order the context contributes a per-token baseline
(``smoothing * weight / denom``, or ``weight / vocab`` for an unseeable
order) folded into a shared *rest* term, plus ``count * scale`` bonuses for
the explicitly counted continuations.  The batch engine relies on the two
implementations producing bit-identical masses, so every arithmetic step
here mirrors the object path operation for operation (same expression
shapes, same highest-order-first accumulation order).
"""

from __future__ import annotations

import numpy as np

from repro.llm.ngram_model import NGramLanguageModel, interpolation_weights

#: Keep packed context keys comfortably inside int64.
_MAX_PACKED_KEY = 2 ** 62


class CompiledNGramModel:
    """CSR-style frozen counts of a trained :class:`NGramLanguageModel`.

    Contexts of length ``k`` are packed into a single int64 key
    (most-significant token first, base ``vocab_size``) and looked up with a
    binary search over the sorted key table; each hit yields a slice of the
    flat ``(token_id, count)`` arrays via the row-pointer array.  When the
    vocabulary is too large for packed keys the lookup falls back to a plain
    tuple-keyed dict (correctness over speed; in practice the textual-encoded
    corpora stay far below the packing limit).
    """

    def __init__(self, model: NGramLanguageModel):
        if not model.is_trained:
            raise ValueError("can only compile a trained model")
        model._ensure_dict_tables()  # array-trained models materialise lazily
        self._init_header(model.tokenizer, model.config, model)
        for k in range(1, self.order):
            self._freeze_order(k)
        self._freeze_unigrams()

    def _init_header(self, tokenizer, config, model: NGramLanguageModel | None) -> None:
        """Configuration-derived constants shared by both constructors."""
        self.model = model
        vocabulary = tokenizer.vocabulary
        self.order = config.order
        self.vocab_size = len(vocabulary)
        self.smoothing = config.smoothing
        self.smoothing_mass = self.smoothing * self.vocab_size
        self.weights = interpolation_weights(config)
        self.pad_id = vocabulary.pad_id
        self.bos_id = vocabulary.bos_id
        self.eos_id = vocabulary.eos_id

        self.packed = self.vocab_size ** max(self.order - 1, 1) < _MAX_PACKED_KEY
        # per order k >= 1: sorted context keys, CSR row pointers, flat
        # token/count arrays, per-context totals and row-relative search keys
        self._keys: dict[int, np.ndarray] = {}
        self._row_ptr: dict[int, np.ndarray] = {}
        self._tokens: dict[int, np.ndarray] = {}
        self._counts: dict[int, np.ndarray] = {}
        self._totals: dict[int, np.ndarray] = {}
        self._entry_keys: dict[int, np.ndarray] = {}
        self._powers: dict[int, np.ndarray] = {}
        self._tuple_index: dict[int, dict] = {}

    @classmethod
    def from_counts(cls, counts: "CorpusCounts", tokenizer, config,
                    model: NGramLanguageModel | None = None) -> "CompiledNGramModel":
        """Build the CSR view directly from array-accumulated counts.

        ``counts`` is a :class:`repro.llm.training.CorpusCounts` — per order,
        sorted packed context keys with CSR row pointers over sorted
        ``(token, count)`` entries, exactly the layout ``_freeze_order``
        produces from the dict tables (lexicographic context order equals
        packed-key order; tokens ascend within a context).  This skips the
        intermediate dict sort of the legacy path entirely.
        """
        self = cls.__new__(cls)
        self._init_header(tokenizer, config, model)
        if counts.order != self.order or counts.vocab_size != self.vocab_size:
            raise ValueError("count arrays do not match the model configuration")
        if not self.packed:
            raise ValueError("vocabulary too large for packed count arrays")
        for k in range(1, self.order):
            keys = counts.keys[k]
            row_ptr = counts.row_ptr[k]
            tokens = counts.tokens[k]
            self._keys[k] = keys
            self._row_ptr[k] = row_ptr
            self._tokens[k] = tokens
            self._counts[k] = counts.counts[k].astype(np.float64)
            self._totals[k] = counts.totals[k].astype(np.float64)
            row_of_entry = np.repeat(np.arange(keys.size, dtype=np.int64),
                                     np.diff(row_ptr)) if keys.size else np.empty(0, np.int64)
            self._entry_keys[k] = row_of_entry * self.vocab_size + tokens
            self._powers[k] = (self.vocab_size ** np.arange(k - 1, -1, -1)).astype(np.int64)
        self._tokens0 = counts.tokens0
        self._counts0 = counts.counts0.astype(np.float64)
        self._total0 = float(counts.total0)
        self._finalize_unigrams()
        return self

    def with_count_multiplier(self, multiplier: int) -> "CompiledNGramModel":
        """A view with every stored count scaled by *multiplier*.

        The structure arrays (context keys, row pointers, tokens, entry
        keys) are shared with ``self`` — only the count/total arrays are
        scaled and the unigram smoothing constants recomputed.  Scaling the
        float counts is exact for integer counts below 2**53, so the view is
        bit-identical to compiling *multiplier* repeated corpus passes; the
        fine-tuner uses this for the per-epoch perplexity trace.
        """
        if multiplier == 1:
            return self
        view = object.__new__(type(self))
        view.__dict__.update(self.__dict__)
        view._counts = {k: counts * multiplier for k, counts in self._counts.items()}
        view._totals = {k: totals * multiplier for k, totals in self._totals.items()}
        view._counts0 = self._counts0 * multiplier
        view._total0 = self._total0 * multiplier
        view._finalize_unigrams()
        return view

    # -- freezing ---------------------------------------------------------------------

    def _freeze_order(self, k: int) -> None:
        contexts = self.model._counts[k]
        totals = self.model._context_totals[k]
        items = sorted(contexts.items())  # lexicographic == packed-key order
        n_contexts = len(items)
        keys = np.empty(n_contexts, dtype=np.int64)
        row_ptr = np.zeros(n_contexts + 1, dtype=np.int64)
        token_chunks: list[np.ndarray] = []
        count_chunks: list[np.ndarray] = []
        context_totals = np.empty(n_contexts, dtype=np.float64)
        tuple_index: dict = {}
        for row, (context, counter) in enumerate(items):
            if self.packed:
                key = 0
                for token in context:
                    key = key * self.vocab_size + int(token)
                keys[row] = key
            tuple_index[context] = row
            ordered = sorted(counter.items())
            token_chunks.append(np.fromiter((t for t, _ in ordered), dtype=np.int64,
                                            count=len(ordered)))
            count_chunks.append(np.fromiter((c for _, c in ordered), dtype=np.float64,
                                            count=len(ordered)))
            row_ptr[row + 1] = row_ptr[row] + len(ordered)
            context_totals[row] = float(totals.get(context, 0))
        tokens = np.concatenate(token_chunks) if token_chunks else np.empty(0, np.int64)
        counts = np.concatenate(count_chunks) if count_chunks else np.empty(0, np.float64)
        row_of_entry = np.repeat(np.arange(n_contexts, dtype=np.int64),
                                 np.diff(row_ptr)) if n_contexts else np.empty(0, np.int64)
        self._keys[k] = keys
        self._row_ptr[k] = row_ptr
        self._tokens[k] = tokens
        self._counts[k] = counts
        self._totals[k] = context_totals
        # (row, token) pairs as a single sorted key: rows ascend and tokens
        # ascend within a row, so the concatenation is already sorted.
        self._entry_keys[k] = row_of_entry * self.vocab_size + tokens
        self._powers[k] = (self.vocab_size ** np.arange(k - 1, -1, -1)).astype(np.int64) \
            if self.packed else np.empty(0, np.int64)
        if not self.packed:
            self._tuple_index[k] = tuple_index

    def _freeze_unigrams(self) -> None:
        counter = self.model._counts[0].get((), {})
        ordered = sorted(counter.items())
        self._tokens0 = np.fromiter((t for t, _ in ordered), dtype=np.int64,
                                    count=len(ordered))
        self._counts0 = np.fromiter((c for _, c in ordered), dtype=np.float64,
                                    count=len(ordered))
        self._total0 = float(self.model._context_totals[0].get((), 0))
        self._finalize_unigrams()

    def _finalize_unigrams(self) -> None:
        """Smoothing constants + dense unigram rows from the unigram arrays."""
        weight = self.weights[self.order - 1]
        denom = self._total0 + self.smoothing_mass
        if denom <= 0:
            self._base0 = weight / self.vocab_size
            self._scale0 = 0.0
        else:
            self._scale0 = weight / denom
            self._base0 = self.smoothing * self._scale0
        # dense unigram bonus/count rows, shared by every lane at every step
        self._bonus0 = np.zeros(self.vocab_size, dtype=np.float64)
        self._counts0_dense = np.zeros(self.vocab_size, dtype=np.float64)
        if self._tokens0.size:
            self._bonus0[self._tokens0] = self._counts0 * self._scale0
            self._counts0_dense[self._tokens0] = self._counts0

    # -- lookups ----------------------------------------------------------------------

    def _context_rows(self, k: int, contexts: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Row index (and hit mask) of each length-*k* context in *contexts*."""
        if self.packed:
            queries = contexts @ self._powers[k]
            table = self._keys[k]
            if table.size == 0:
                return np.zeros(len(queries), np.int64), np.zeros(len(queries), bool)
            positions = np.searchsorted(table, queries)
            clipped = np.minimum(positions, table.size - 1)
            return clipped, table[clipped] == queries
        index = self._tuple_index.get(k, {})
        rows = np.empty(len(contexts), dtype=np.int64)
        found = np.empty(len(contexts), dtype=bool)
        for i, row_context in enumerate(contexts):
            row = index.get(tuple(int(t) for t in row_context))
            found[i] = row is not None
            rows[i] = row if row is not None else 0
        return rows, found

    def _layer_plan(self, contexts: np.ndarray, lengths: np.ndarray):
        """Shared rest accumulation + per-order lookup plan.

        Returns ``(rest, plans)`` where *rest* is the per-lane baseline mass
        (accumulated highest order first, unigrams last — the same order the
        object path uses) and *plans* lists ``(k, lanes, rows, scales)`` for
        every order with at least one context hit.
        """
        n_lanes = contexts.shape[0]
        width = contexts.shape[1]
        rest = np.zeros(n_lanes, dtype=np.float64)
        all_lanes: np.ndarray | None = None
        plans = []
        for k in range(self.order - 1, 0, -1):
            available = lengths >= k
            if not available.any():
                continue
            if available.all():
                # common case once every lane has a full window: no subsetting
                if all_lanes is None:
                    all_lanes = np.arange(n_lanes)
                lanes = all_lanes
                window = contexts[:, width - k:]
            else:
                lanes = np.flatnonzero(available)
                window = contexts[lanes][:, width - k:]
            rows, found = self._context_rows(k, window)
            if self._totals[k].size:
                totals = np.where(found, self._totals[k][rows], 0.0)
            else:
                # no contexts of this order were ever observed (very short
                # corpora, e.g. single-column tables): every lane misses
                totals = np.zeros(len(rows), dtype=np.float64)
            weight = self.weights[self.order - 1 - k]
            denom = totals + self.smoothing_mass
            positive = denom > 0
            scales = weight / np.where(positive, denom, 1.0)
            contribution = np.where(positive, self.smoothing * scales,
                                    weight / self.vocab_size)
            if lanes is all_lanes:
                rest += contribution
            else:
                rest[lanes] += contribution
            hit = found & positive
            if hit.any():
                plans.append((k, lanes[hit], rows[hit], scales[hit]))
        rest += self._base0
        return rest, plans

    # -- batched mass computation -------------------------------------------------------

    def dense_masses(self, contexts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
        """Unnormalised next-token masses, shape ``(n_lanes, vocab_size)``.

        ``contexts`` holds the last ``order - 1`` token ids per lane (right
        aligned); ``lengths`` how many of them are valid.
        """
        n_lanes = contexts.shape[0]
        rest, plans = self._layer_plan(contexts, lengths)
        dense = np.empty((n_lanes, self.vocab_size), dtype=np.float64)
        dense[:] = rest[:, None]
        for k, lanes, rows, scales in plans:
            starts = self._row_ptr[k][rows]
            row_lengths = self._row_ptr[k][rows + 1] - starts
            total = int(row_lengths.sum())
            if total == 0:
                continue
            entry_of = np.repeat(np.arange(len(rows)), row_lengths)
            offsets = np.arange(total, dtype=np.int64) \
                - np.repeat(np.cumsum(row_lengths) - row_lengths, row_lengths) \
                + np.repeat(starts, row_lengths)
            tokens = self._tokens[k][offsets]
            dense[lanes[entry_of], tokens] += self._counts[k][offsets] * scales[entry_of]
        dense += self._bonus0[None, :]
        return dense

    def _target_counts(self, k: int, rows: np.ndarray,
                       targets: int | np.ndarray) -> np.ndarray:
        """Stored count of each ``(context row, target token)`` pair (0 when
        the continuation was never observed), via one binary search over the
        sorted row-relative entry keys."""
        out = np.zeros(rows.size, dtype=np.float64)
        table = self._entry_keys[k]
        if table.size == 0:
            return out
        queries = rows * self.vocab_size + targets
        positions = np.searchsorted(table, queries)
        clipped = np.minimum(positions, table.size - 1)
        hit = table[clipped] == queries
        if hit.any():
            out[hit] = self._counts[k][clipped[hit]]
        return out

    def token_masses(self, contexts: np.ndarray, lengths: np.ndarray,
                     tokens: int | np.ndarray) -> np.ndarray:
        """Unnormalised mass of one next token per lane, shape ``(n_lanes,)``.

        ``tokens`` is either a single token id shared by every lane or an
        array with one target token per lane.  Unobserved continuations add
        exactly 0.0 per layer, which is bitwise-neutral, so no masking is
        needed anywhere.
        """
        per_lane = not np.isscalar(tokens)
        rest, plans = self._layer_plan(contexts, lengths)
        masses = rest.copy()
        for k, lanes, rows, scales in plans:
            targets = np.asarray(tokens)[lanes] if per_lane else tokens
            masses[lanes] += self._target_counts(k, rows, targets) * scales
        counts0 = self._counts0_dense[tokens]
        masses += counts0 * self._scale0
        return masses

    # -- batched corpus scoring ---------------------------------------------------------

    def _position_probabilities(self, contexts: np.ndarray, lengths: np.ndarray,
                                targets: np.ndarray) -> np.ndarray:
        """Probability of one target token per lane, with exact normalisers.

        Mirrors :meth:`NGramLanguageModel._position_probability` operation
        for operation: the same rest accumulation, the same highest-order
        -first bonus/total additions, the same ``total * scale`` normaliser
        terms — so the two training engines score identically, bit for bit.
        """
        rest, plans = self._layer_plan(contexts, lengths)
        masses = rest.copy()
        norms = rest * self.vocab_size
        for k, lanes, rows, scales in plans:
            masses[lanes] += self._target_counts(k, rows, targets[lanes]) * scales
            norms[lanes] += self._totals[k][rows] * scales
        masses += self._counts0_dense[targets] * self._scale0
        norms += self._total0 * self._scale0
        positive = norms > 0
        return np.where(positive, masses / np.where(positive, norms, 1.0),
                        1.0 / self.vocab_size)

    def score_corpus(self, ids: np.ndarray, offsets: np.ndarray,
                     chunk_size: int = 1 << 15) -> np.ndarray:
        """Next-token probability of every scored position of an encoded corpus.

        ``ids``/``offsets`` use the :class:`~repro.llm.tokenizer.EncodedCorpus`
        layout.  Scored positions are ``1 .. len - 1`` of each sentence in
        corpus order — exactly the positions the object path's perplexity
        walks — and the contexts are materialised as right-aligned windows
        over the flat array (stride tricks plus a left pad), masked by the
        per-position context length so windows never cross a sentence start.
        """
        ids = np.asarray(ids, dtype=np.int64)
        offsets = np.asarray(offsets, dtype=np.int64)
        width = self.order - 1
        starts = np.repeat(offsets[:-1], np.diff(offsets))
        positions_in_sentence = np.arange(ids.size, dtype=np.int64) - starts
        scored = np.flatnonzero(positions_in_sentence >= 1)
        probabilities = np.empty(scored.size, dtype=np.float64)
        if width:
            lengths_all = np.minimum(positions_in_sentence[scored], width)
            padded = np.concatenate([np.zeros(width, dtype=np.int64), ids])
            windows = np.lib.stride_tricks.sliding_window_view(padded, width)
        else:
            lengths_all = np.zeros(scored.size, dtype=np.int64)
        for lo in range(0, scored.size, chunk_size):
            hi = min(lo + chunk_size, scored.size)
            chunk = scored[lo:hi]
            contexts = windows[chunk] if width \
                else np.zeros((chunk.size, 0), dtype=np.int64)
            probabilities[lo:hi] = self._position_probabilities(
                contexts, lengths_all[lo:hi], ids[chunk])
        return probabilities
