"""Interpolated back-off n-gram language model.

This is the generative backbone standing in for GPT-2.  It is trained on the
textual-encoded rows produced by :mod:`repro.textenc` and sampled from to
produce new rows.  Two properties make it a faithful substitute for the
purposes of the paper's claims:

* Tokens are atoms — two occurrences of the same surface string are the same
  event, so ambiguous numerical labels genuinely interfere with each other
  (Challenge I), and renaming them to distinct words genuinely removes the
  interference.
* Generation reproduces the conditional co-occurrence statistics of the
  training corpus, so noise injected by direct flattening (engaged-subject
  bias, Challenge II) genuinely distorts the synthetic output.
"""

from __future__ import annotations

import math
import random
from collections import Counter, defaultdict
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.llm.tokenizer import WordTokenizer

#: Probability floor applied before taking logs, shared by every scoring path.
PROBABILITY_FLOOR = 1e-12


def interpolation_weights(config: "ModelConfig") -> list[float]:
    """Normalised per-order interpolation weights, highest order first."""
    order = config.order
    weights = list(config.interpolation)[:order]
    while len(weights) < order:
        weights.append(weights[-1] if weights else 1.0)
    total = sum(weights)
    if total <= 0:
        return [1.0 / order] * order
    return [w / total for w in weights]


def perplexity_from_probabilities(probabilities: np.ndarray) -> float:
    """Per-token perplexity from per-position next-token probabilities.

    Both training engines reduce their scores through this one function, so a
    bit-identical probability vector maps to a bit-identical perplexity.
    """
    if probabilities.size == 0:
        raise ValueError("cannot compute perplexity of an empty corpus")
    log_probs = np.log(np.maximum(probabilities, PROBABILITY_FLOOR))
    return math.exp(-float(log_probs.sum()) / probabilities.size)


@dataclass(frozen=True)
class ModelConfig:
    """Configuration of the n-gram backbone.

    Parameters
    ----------
    order:
        Maximum n-gram order (3 = trigram).  Higher orders memorise longer row
        prefixes; the default keeps sampling fast on CPU.
    smoothing:
        Additive (Lidstone) smoothing mass per vocabulary entry.
    interpolation:
        Per-order interpolation weights, highest order first.  They are
        normalised internally; fewer weights than ``order`` are padded evenly.
    """

    order: int = 3
    smoothing: float = 0.01
    interpolation: tuple[float, ...] = (0.7, 0.2, 0.1)

    def __post_init__(self):
        if self.order < 1:
            raise ValueError("order must be >= 1")
        if self.smoothing < 0:
            raise ValueError("smoothing must be non-negative")
        if any(w < 0 for w in self.interpolation):
            raise ValueError("interpolation weights must be non-negative")


class NGramLanguageModel:
    """Count-based language model with interpolated additive smoothing."""

    def __init__(self, tokenizer: WordTokenizer, config: ModelConfig | None = None):
        self.tokenizer = tokenizer
        self.config = config or ModelConfig()
        # counts[k] maps a length-k context tuple -> Counter of next-token ids
        self._counts: list[defaultdict] = [
            defaultdict(Counter) for _ in range(self.config.order)
        ]
        self._context_totals: list[defaultdict] = [
            defaultdict(int) for _ in range(self.config.order)
        ]
        self._trained_sentences = 0

    # -- training ---------------------------------------------------------------------

    @property
    def is_trained(self) -> bool:
        return self._trained_sentences > 0

    @property
    def trained_sentences(self) -> int:
        return self._trained_sentences

    def fit(self, corpus: Iterable[str], epochs: int = 1) -> "NGramLanguageModel":
        """Accumulate n-gram counts from a corpus of sentences.

        ``epochs`` repeats the corpus, which mirrors the epochs hyper-parameter
        the paper reports (10 epochs / 5 batches); for a count-based model it
        scales every count equally, so it mainly interacts with smoothing.
        """
        sentences = list(corpus)
        for _ in range(max(1, epochs)):
            for sentence in sentences:
                self._update(self.tokenizer.encode(sentence))
        self._trained_sentences += len(sentences) * max(1, epochs)
        return self

    def _update(self, token_ids: Sequence[int]) -> None:
        order = self.config.order
        for position in range(1, len(token_ids)):
            target = token_ids[position]
            for k in range(order):
                if position - k - 1 < 0 and k > 0:
                    break
                start = max(0, position - k)
                context = tuple(token_ids[start:position]) if k > 0 else ()
                if len(context) != k:
                    continue
                self._counts[k][context][target] += 1
                self._context_totals[k][context] += 1

    # -- probabilities -----------------------------------------------------------------

    def _interpolation_weights(self) -> list[float]:
        return interpolation_weights(self.config)

    def distribution_components(self, context_ids: Sequence[int]) -> tuple[float, list]:
        """Canonical decomposition of the (unnormalised) next-token masses.

        Returns ``(rest, layers)``: *rest* is the baseline mass every
        vocabulary entry receives (all smoothing and unseen-context mass,
        folded analytically instead of being expanded over the vocabulary),
        and *layers* lists, highest order first, ``(counts, scale, total)``
        triples — the live ``Counter`` of next-token counts after that
        order's context, the factor its counts are scaled by, and the stored
        total count of the context (``sum(counts.values())`` without the
        sum).  The mass of token ``t`` is ``rest + sum(counts[t] * scale for
        each layer)`` and the exact normaliser is ``rest * vocab_size +
        sum(total * scale for each layer)``.  Callers must not mutate the
        returned counters.

        This is the hot-path API: generation and batch engines consume the
        components directly, so no full-vocabulary dict is ever materialised
        per sampling step.
        """
        if not self.is_trained:
            raise RuntimeError("the model must be fit() before querying probabilities")
        vocab_size = len(self.tokenizer.vocabulary)
        weights = self._interpolation_weights()
        order = self.config.order
        smoothing = self.config.smoothing
        smoothing_mass = smoothing * vocab_size

        rest = 0.0
        layers: list[tuple[Counter, float, int]] = []
        # highest order first: weights[0] is for the longest context
        for k in range(order - 1, -1, -1):
            context = tuple(context_ids[-k:]) if k > 0 else ()
            if k > 0 and len(context) != k:
                continue
            weight = weights[order - 1 - k]
            total = self._context_totals[k].get(context, 0)
            denom = total + smoothing_mass
            if denom <= 0:
                rest += weight / vocab_size
                continue
            scale = weight / denom
            rest += smoothing * scale
            counts = self._counts[k].get(context)
            if counts:
                layers.append((counts, scale, total))
        return rest, layers

    def next_token_distribution(self, context_ids: Sequence[int]) -> dict[int, float]:
        """Smoothed, normalised distribution over the next token id.

        Materialises the full vocabulary, so it is meant for inspection and
        scoring, not for the sampling hot path — generation goes through
        :meth:`distribution_components`, which keeps the shared rest mass
        analytic.
        """
        rest, layers = self.distribution_components(context_ids)
        vocab_size = len(self.tokenizer.vocabulary)
        bonus: dict[int, float] = defaultdict(float)
        for counts, scale, _ in layers:
            for token_id, count in counts.items():
                bonus[token_id] += count * scale
        total_mass = rest * vocab_size + sum(bonus.values())
        if total_mass <= 0:
            return {token_id: 1.0 / vocab_size for token_id in range(vocab_size)}
        return {
            token_id: (rest + bonus.get(token_id, 0.0)) / total_mass
            for token_id in range(vocab_size)
        }

    def token_probability(self, context_ids: Sequence[int], token_id: int) -> float:
        """Interpolated probability of a single next token given a context.

        Computed in O(order) from :meth:`distribution_components` without
        materialising the distribution — the hot path of guided
        (column-by-column) row sampling.
        """
        rest, layers = self.distribution_components(context_ids)
        probability = rest
        for counts, scale, _ in layers:
            count = counts.get(token_id)
            if count:
                probability += count * scale
        return max(probability, PROBABILITY_FLOOR)

    def score_token_sequence(self, context_ids: Sequence[int], token_ids: Sequence[int]) -> float:
        """Log probability of *token_ids* continuing *context_ids* (natural log)."""
        context = list(context_ids)
        log_prob = 0.0
        for token_id in token_ids:
            window = context[-(self.config.order - 1):] if self.config.order > 1 else []
            log_prob += math.log(self.token_probability(window, token_id))
            context.append(token_id)
        return log_prob

    def _position_probability(self, token_ids: Sequence[int], position: int) -> float:
        """Probability of the token at *position* given its sentence context.

        Uses the stored per-context totals for the normaliser instead of
        re-summing each live counter, so scoring a position costs O(order)
        regardless of how many continuations a context has.
        """
        vocab_size = len(self.tokenizer.vocabulary)
        context = token_ids[max(0, position - self.config.order + 1):position]
        rest, layers = self.distribution_components(context)
        mass = rest
        total_mass = rest * vocab_size
        for counts, scale, total in layers:
            count = counts.get(token_ids[position])
            if count:
                mass += count * scale
            total_mass += total * scale
        return mass / total_mass if total_mass > 0 else 1.0 / vocab_size

    def sequence_log_probability(self, text: str) -> float:
        """Log probability of a sentence under the model (natural log)."""
        token_ids = self.tokenizer.encode(text)
        log_prob = 0.0
        for position in range(1, len(token_ids)):
            p = self._position_probability(token_ids, position)
            log_prob += math.log(max(p, PROBABILITY_FLOOR))
        return log_prob

    def perplexity(self, corpus: Iterable[str]) -> float:
        """Per-token perplexity of a corpus under the model.

        Each sentence is encoded exactly once and its positions scored
        through :meth:`_position_probability`; the final reduction is shared
        with the compiled scorer (:func:`perplexity_from_probabilities`), so
        both training engines produce bit-identical perplexity traces.
        """
        probabilities: list[float] = []
        for sentence in corpus:
            token_ids = self.tokenizer.encode(sentence)
            probabilities.extend(
                self._position_probability(token_ids, position)
                for position in range(1, len(token_ids))
            )
        return perplexity_from_probabilities(np.asarray(probabilities, dtype=np.float64))

    def _ensure_dict_tables(self) -> None:
        """Hook for array-trained subclasses to materialise the dict tables.

        Anything that walks ``_counts``/``_context_totals`` directly (the
        dict-freezing compiled constructor, incremental ``fit``) calls this
        first; the base model's tables are always live, so this is a no-op.
        """

    # -- compiled view ------------------------------------------------------------------

    def compiled_model(self):
        """Frozen CSR view of the trained counts (see :mod:`repro.llm.compiled`).

        The base implementation freezes the dict tables on every call;
        array-trained models (compiled training engine) override this with a
        cached direct array -> CSR construction.
        """
        from repro.llm.compiled import CompiledNGramModel

        return CompiledNGramModel(self)

    # -- generation ---------------------------------------------------------------------

    def generate_ids(self, rng: random.Random, max_tokens: int = 128,
                     temperature: float = 1.0, top_k: int | None = None,
                     prompt_ids: Sequence[int] | None = None) -> list[int]:
        """Sample a token-id sequence ending at ``<eos>`` or *max_tokens*."""
        if not self.is_trained:
            raise RuntimeError("the model must be fit() before generation")
        vocab = self.tokenizer.vocabulary
        vocab_size = len(vocab)
        generated: list[int] = [vocab.bos_id]
        if prompt_ids:
            generated.extend(prompt_ids)
        for _ in range(max_tokens):
            context = generated[-(self.config.order - 1):] if self.config.order > 1 else []
            rest, layers = self.distribution_components(context)
            masses = np.full(vocab_size, rest)
            for counts, scale, _ in layers:
                ids = np.fromiter(counts.keys(), dtype=np.int64, count=len(counts))
                values = np.fromiter(counts.values(), dtype=np.float64, count=len(counts))
                masses[ids] += values * scale
            masses[vocab.pad_id] = 0.0
            masses[vocab.bos_id] = 0.0
            token_id = _sample_masses(masses, rng, temperature=temperature, top_k=top_k)
            if token_id == vocab.eos_id:
                break
            generated.append(token_id)
        return generated[1:]

    def generate(self, rng: random.Random, max_tokens: int = 128,
                 temperature: float = 1.0, top_k: int | None = None,
                 prompt: str | None = None) -> str:
        """Sample a sentence (optionally continuing a prompt prefix)."""
        prompt_ids = None
        if prompt:
            prompt_ids = self.tokenizer.encode(prompt, add_bos=False, add_eos=False)
        token_ids = self.generate_ids(
            rng, max_tokens=max_tokens, temperature=temperature, top_k=top_k,
            prompt_ids=prompt_ids,
        )
        return self.tokenizer.decode(token_ids)


def _sample_masses(masses: "np.ndarray", rng: random.Random,
                   temperature: float = 1.0, top_k: int | None = None) -> int:
    """Sample a token id from an unnormalised mass vector with temperature / top-k.

    Ties at the top-k boundary are broken deterministically by descending
    mass then ascending token id.  Selection uses ``argpartition`` (O(n))
    rather than a full sort, with the boundary ties resolved explicitly so
    the candidate list is identical to what a stable sort on the negated
    masses would produce — the same kernel shape as the batch engine's
    ``_draw_tokens``, with the legacy tie-break preserved.
    """
    if masses.size == 0:
        raise ValueError("cannot sample from an empty distribution")
    if top_k is not None and 0 < top_k < masses.size:
        partitioned = np.argpartition(-masses, top_k - 1)[:top_k]
        boundary = masses[partitioned].min()
        above = np.flatnonzero(masses > boundary)
        tied = np.flatnonzero(masses == boundary)
        candidate_ids = np.concatenate([above, tied[:top_k - above.size]])
        candidate_masses = masses[candidate_ids]
        # ids are ascending within each mass class, so a stable sort on the
        # negated masses restores the exact legacy candidate order
        order = np.argsort(-candidate_masses, kind="stable")
        candidate_ids = candidate_ids[order]
        candidate_masses = candidate_masses[order]
    else:
        candidate_ids = None
        candidate_masses = masses
    if temperature <= 0:
        best = int(np.argmax(candidate_masses))
        return int(candidate_ids[best]) if candidate_ids is not None else best
    weights = candidate_masses ** (1.0 / temperature)
    total = float(weights.sum())
    if total <= 0:
        chosen = rng.randrange(candidate_masses.size)
        return int(candidate_ids[chosen]) if candidate_ids is not None else chosen
    threshold = rng.random() * total
    cumulative = np.cumsum(weights)
    chosen = int(np.searchsorted(cumulative, threshold, side="left"))
    chosen = min(chosen, candidate_masses.size - 1)
    return int(candidate_ids[chosen]) if candidate_ids is not None else chosen
