"""Interpolated back-off n-gram language model.

This is the generative backbone standing in for GPT-2.  It is trained on the
textual-encoded rows produced by :mod:`repro.textenc` and sampled from to
produce new rows.  Two properties make it a faithful substitute for the
purposes of the paper's claims:

* Tokens are atoms — two occurrences of the same surface string are the same
  event, so ambiguous numerical labels genuinely interfere with each other
  (Challenge I), and renaming them to distinct words genuinely removes the
  interference.
* Generation reproduces the conditional co-occurrence statistics of the
  training corpus, so noise injected by direct flattening (engaged-subject
  bias, Challenge II) genuinely distorts the synthetic output.
"""

from __future__ import annotations

import math
import random
from collections import Counter, defaultdict
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.llm.tokenizer import WordTokenizer


@dataclass(frozen=True)
class ModelConfig:
    """Configuration of the n-gram backbone.

    Parameters
    ----------
    order:
        Maximum n-gram order (3 = trigram).  Higher orders memorise longer row
        prefixes; the default keeps sampling fast on CPU.
    smoothing:
        Additive (Lidstone) smoothing mass per vocabulary entry.
    interpolation:
        Per-order interpolation weights, highest order first.  They are
        normalised internally; fewer weights than ``order`` are padded evenly.
    """

    order: int = 3
    smoothing: float = 0.01
    interpolation: tuple[float, ...] = (0.7, 0.2, 0.1)

    def __post_init__(self):
        if self.order < 1:
            raise ValueError("order must be >= 1")
        if self.smoothing < 0:
            raise ValueError("smoothing must be non-negative")
        if any(w < 0 for w in self.interpolation):
            raise ValueError("interpolation weights must be non-negative")


class NGramLanguageModel:
    """Count-based language model with interpolated additive smoothing."""

    def __init__(self, tokenizer: WordTokenizer, config: ModelConfig | None = None):
        self.tokenizer = tokenizer
        self.config = config or ModelConfig()
        # counts[k] maps a length-k context tuple -> Counter of next-token ids
        self._counts: list[defaultdict] = [
            defaultdict(Counter) for _ in range(self.config.order)
        ]
        self._context_totals: list[defaultdict] = [
            defaultdict(int) for _ in range(self.config.order)
        ]
        self._trained_sentences = 0

    # -- training ---------------------------------------------------------------------

    @property
    def is_trained(self) -> bool:
        return self._trained_sentences > 0

    @property
    def trained_sentences(self) -> int:
        return self._trained_sentences

    def fit(self, corpus: Iterable[str], epochs: int = 1) -> "NGramLanguageModel":
        """Accumulate n-gram counts from a corpus of sentences.

        ``epochs`` repeats the corpus, which mirrors the epochs hyper-parameter
        the paper reports (10 epochs / 5 batches); for a count-based model it
        scales every count equally, so it mainly interacts with smoothing.
        """
        sentences = list(corpus)
        for _ in range(max(1, epochs)):
            for sentence in sentences:
                self._update(self.tokenizer.encode(sentence))
        self._trained_sentences += len(sentences) * max(1, epochs)
        return self

    def _update(self, token_ids: Sequence[int]) -> None:
        order = self.config.order
        for position in range(1, len(token_ids)):
            target = token_ids[position]
            for k in range(order):
                if position - k - 1 < 0 and k > 0:
                    break
                start = max(0, position - k)
                context = tuple(token_ids[start:position]) if k > 0 else ()
                if len(context) != k:
                    continue
                self._counts[k][context][target] += 1
                self._context_totals[k][context] += 1

    # -- probabilities -----------------------------------------------------------------

    def _interpolation_weights(self) -> list[float]:
        order = self.config.order
        weights = list(self.config.interpolation)[:order]
        while len(weights) < order:
            weights.append(weights[-1] if weights else 1.0)
        total = sum(weights)
        if total <= 0:
            return [1.0 / order] * order
        return [w / total for w in weights]

    def next_token_distribution(self, context_ids: Sequence[int]) -> dict[int, float]:
        """Smoothed distribution over the next token id given a context."""
        if not self.is_trained:
            raise RuntimeError("the model must be fit() before querying probabilities")
        vocab_size = len(self.tokenizer.vocabulary)
        weights = self._interpolation_weights()
        order = self.config.order
        smoothing = self.config.smoothing

        distribution: dict[int, float] = defaultdict(float)
        # highest order first: weights[0] is for the longest context
        for k in range(order - 1, -1, -1):
            context = tuple(context_ids[-k:]) if k > 0 else ()
            if k > 0 and len(context) != k:
                continue
            weight = weights[order - 1 - k]
            counts = self._counts[k].get(context)
            total = self._context_totals[k].get(context, 0)
            denom = total + smoothing * vocab_size
            if denom <= 0:
                continue
            if counts:
                for token_id, count in counts.items():
                    distribution[token_id] += weight * (count + smoothing) / denom
                remaining = vocab_size - len(counts)
                if smoothing > 0 and remaining > 0:
                    baseline = weight * smoothing / denom
                    distribution["__rest__"] = distribution.get("__rest__", 0.0) + baseline
            elif smoothing > 0:
                distribution["__rest__"] = distribution.get("__rest__", 0.0) + weight / vocab_size

        rest = distribution.pop("__rest__", 0.0)
        if rest > 0:
            # spread the leftover mass uniformly over tokens not explicitly counted
            uncounted = vocab_size - len(distribution)
            if uncounted > 0:
                share = rest  # represented implicitly; only normalisation matters
                for token_id in range(vocab_size):
                    if token_id not in distribution:
                        distribution[token_id] = share / uncounted
        total_mass = sum(distribution.values())
        if total_mass <= 0:
            return {token_id: 1.0 / vocab_size for token_id in range(vocab_size)}
        return {token_id: p / total_mass for token_id, p in distribution.items()}

    def token_probability(self, context_ids: Sequence[int], token_id: int) -> float:
        """Interpolated probability of a single next token given a context.

        Equivalent to ``next_token_distribution(context)[token_id]`` but
        computed in O(order) without materialising the full distribution —
        this is the hot path of guided (column-by-column) row sampling.
        """
        if not self.is_trained:
            raise RuntimeError("the model must be fit() before querying probabilities")
        vocab_size = len(self.tokenizer.vocabulary)
        weights = self._interpolation_weights()
        order = self.config.order
        smoothing = self.config.smoothing

        probability = 0.0
        for k in range(order - 1, -1, -1):
            context = tuple(context_ids[-k:]) if k > 0 else ()
            if k > 0 and len(context) != k:
                continue
            weight = weights[order - 1 - k]
            total = self._context_totals[k].get(context, 0)
            denom = total + smoothing * vocab_size
            if denom <= 0:
                probability += weight / vocab_size
                continue
            counts = self._counts[k].get(context)
            count = counts.get(token_id, 0) if counts else 0
            if total == 0 and smoothing == 0:
                probability += weight / vocab_size
            else:
                probability += weight * (count + smoothing) / denom
        return max(probability, 1e-12)

    def score_token_sequence(self, context_ids: Sequence[int], token_ids: Sequence[int]) -> float:
        """Log probability of *token_ids* continuing *context_ids* (natural log)."""
        context = list(context_ids)
        log_prob = 0.0
        for token_id in token_ids:
            window = context[-(self.config.order - 1):] if self.config.order > 1 else []
            log_prob += math.log(self.token_probability(window, token_id))
            context.append(token_id)
        return log_prob

    def sequence_log_probability(self, text: str) -> float:
        """Log probability of a sentence under the model (natural log)."""
        token_ids = self.tokenizer.encode(text)
        log_prob = 0.0
        for position in range(1, len(token_ids)):
            context = token_ids[max(0, position - self.config.order + 1):position]
            distribution = self.next_token_distribution(context)
            p = distribution.get(token_ids[position], 1e-12)
            log_prob += math.log(max(p, 1e-12))
        return log_prob

    def perplexity(self, corpus: Iterable[str]) -> float:
        """Per-token perplexity of a corpus under the model."""
        total_log_prob = 0.0
        total_tokens = 0
        for sentence in corpus:
            token_ids = self.tokenizer.encode(sentence)
            total_tokens += max(len(token_ids) - 1, 0)
            total_log_prob += self.sequence_log_probability(sentence)
        if total_tokens == 0:
            raise ValueError("cannot compute perplexity of an empty corpus")
        return math.exp(-total_log_prob / total_tokens)

    # -- generation ---------------------------------------------------------------------

    def generate_ids(self, rng: random.Random, max_tokens: int = 128,
                     temperature: float = 1.0, top_k: int | None = None,
                     prompt_ids: Sequence[int] | None = None) -> list[int]:
        """Sample a token-id sequence ending at ``<eos>`` or *max_tokens*."""
        if not self.is_trained:
            raise RuntimeError("the model must be fit() before generation")
        vocab = self.tokenizer.vocabulary
        generated: list[int] = [vocab.bos_id]
        if prompt_ids:
            generated.extend(prompt_ids)
        for _ in range(max_tokens):
            context = generated[-(self.config.order - 1):] if self.config.order > 1 else []
            distribution = self.next_token_distribution(context)
            distribution.pop(vocab.pad_id, None)
            distribution.pop(vocab.bos_id, None)
            token_id = _sample_from(distribution, rng, temperature=temperature, top_k=top_k)
            if token_id == vocab.eos_id:
                break
            generated.append(token_id)
        return generated[1:]

    def generate(self, rng: random.Random, max_tokens: int = 128,
                 temperature: float = 1.0, top_k: int | None = None,
                 prompt: str | None = None) -> str:
        """Sample a sentence (optionally continuing a prompt prefix)."""
        prompt_ids = None
        if prompt:
            prompt_ids = self.tokenizer.encode(prompt, add_bos=False, add_eos=False)
        token_ids = self.generate_ids(
            rng, max_tokens=max_tokens, temperature=temperature, top_k=top_k,
            prompt_ids=prompt_ids,
        )
        return self.tokenizer.decode(token_ids)


def _sample_from(distribution: dict[int, float], rng: random.Random,
                 temperature: float = 1.0, top_k: int | None = None) -> int:
    """Sample a token id from an explicit distribution with temperature / top-k."""
    if not distribution:
        raise ValueError("cannot sample from an empty distribution")
    items = list(distribution.items())
    if top_k is not None and top_k > 0:
        items.sort(key=lambda kv: kv[1], reverse=True)
        items = items[:top_k]
    if temperature <= 0:
        return max(items, key=lambda kv: kv[1])[0]
    weights = [p ** (1.0 / temperature) for _, p in items]
    total = sum(weights)
    if total <= 0:
        return rng.choice([token_id for token_id, _ in items])
    threshold = rng.random() * total
    cumulative = 0.0
    for (token_id, _), weight in zip(items, weights):
        cumulative += weight
        if cumulative >= threshold:
            return token_id
    return items[-1][0]
