"""Word-level tokenizer and vocabulary.

The tokenizer mirrors the property of GPT-2's byte-pair encoder that matters
for the paper: two occurrences of the same surface string map to the same
token id regardless of which column they came from, so an ambiguous '1' in
*Lunch* and an ambiguous '1' in *Access Device* collapse to one embedding
(Fig. 2).  The Data Semantic Enhancement System removes exactly this
collision by rewriting the surface strings before tokenization.
"""

from __future__ import annotations

import re
from collections import Counter
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

#: Special tokens shared by every model built on this tokenizer.
SPECIAL_TOKENS = {
    "pad": "<pad>",
    "bos": "<bos>",
    "eos": "<eos>",
    "unk": "<unk>",
}

_TOKEN_PATTERN = re.compile(
    r"""
    <[a-z]+>            # special tokens like <bos>
    | [A-Za-z_]+(?:'[a-z]+)?   # words (incl. underscore compounds and contractions)
    | \d+(?:\.\d+)?     # integers and decimals
    | [^\sA-Za-z0-9]    # any single punctuation mark (':', ',', '^', ...)
    """,
    re.VERBOSE,
)


@dataclass
class Vocabulary:
    """Bidirectional token <-> id mapping."""

    token_to_id: dict[str, int] = field(default_factory=dict)
    id_to_token: list[str] = field(default_factory=list)

    def __post_init__(self):
        if not self.token_to_id:
            for token in SPECIAL_TOKENS.values():
                self.add(token)

    def __len__(self) -> int:
        return len(self.id_to_token)

    def __contains__(self, token: str) -> bool:
        return token in self.token_to_id

    def add(self, token: str) -> int:
        """Add *token* if unseen and return its id."""
        if token in self.token_to_id:
            return self.token_to_id[token]
        token_id = len(self.id_to_token)
        self.token_to_id[token] = token_id
        self.id_to_token.append(token)
        return token_id

    def encode_token(self, token: str) -> int:
        """Id of *token*, or the id of ``<unk>`` when unknown."""
        return self.token_to_id.get(token, self.token_to_id[SPECIAL_TOKENS["unk"]])

    def decode_id(self, token_id: int) -> str:
        """Token string for *token_id*."""
        if not 0 <= token_id < len(self.id_to_token):
            raise IndexError("token id {} out of range (vocabulary size {})".format(token_id, len(self)))
        return self.id_to_token[token_id]

    @property
    def pad_id(self) -> int:
        return self.token_to_id[SPECIAL_TOKENS["pad"]]

    @property
    def bos_id(self) -> int:
        return self.token_to_id[SPECIAL_TOKENS["bos"]]

    @property
    def eos_id(self) -> int:
        return self.token_to_id[SPECIAL_TOKENS["eos"]]

    @property
    def unk_id(self) -> int:
        return self.token_to_id[SPECIAL_TOKENS["unk"]]


class WordTokenizer:
    """Deterministic word/punctuation tokenizer with a trainable vocabulary."""

    def __init__(self, lowercase: bool = False, vocabulary: Vocabulary | None = None):
        self.lowercase = lowercase
        self.vocabulary = vocabulary or Vocabulary()

    # -- string <-> token list -------------------------------------------------------

    def tokenize(self, text: str) -> list[str]:
        """Split *text* into surface tokens without touching the vocabulary."""
        if self.lowercase:
            text = text.lower()
        return _TOKEN_PATTERN.findall(text)

    def detokenize(self, tokens: Sequence[str]) -> str:
        """Re-assemble tokens into a readable sentence.

        Punctuation attaches to the previous token; everything else is joined
        with single spaces.  The textual decoder only needs the 'Column: value'
        structure to survive the round trip, which this guarantees.
        """
        pieces: list[str] = []
        no_space_before = {":", ",", ".", ";", "!", "?", ")", "]", "}"}
        no_space_after = {"(", "[", "{"}
        for token in tokens:
            if token in SPECIAL_TOKENS.values():
                continue
            if pieces and token in no_space_before:
                pieces[-1] = pieces[-1] + token
            elif pieces and pieces[-1] and pieces[-1][-1] in no_space_after:
                pieces[-1] = pieces[-1] + token
            else:
                pieces.append(token)
        return " ".join(pieces)

    # -- vocabulary management ---------------------------------------------------------

    def fit(self, corpus: Iterable[str], min_count: int = 1) -> "WordTokenizer":
        """Build the vocabulary from a corpus of sentences."""
        counter: Counter[str] = Counter()
        for sentence in corpus:
            counter.update(self.tokenize(sentence))
        for token, count in sorted(counter.items(), key=lambda kv: (-kv[1], kv[0])):
            if count >= min_count:
                self.vocabulary.add(token)
        return self

    # -- token list <-> id list -----------------------------------------------------

    def encode(self, text: str, add_bos: bool = True, add_eos: bool = True) -> list[int]:
        """Tokenize *text* and map the tokens to vocabulary ids."""
        ids = [self.vocabulary.encode_token(token) for token in self.tokenize(text)]
        if add_bos:
            ids = [self.vocabulary.bos_id] + ids
        if add_eos:
            ids = ids + [self.vocabulary.eos_id]
        return ids

    def decode(self, token_ids: Sequence[int]) -> str:
        """Map ids back to tokens and re-assemble the sentence."""
        tokens = [self.vocabulary.decode_id(i) for i in token_ids]
        return self.detokenize(tokens)

    def token_collisions(self, labeled_values: Sequence[tuple[str, object]]) -> dict[str, list[str]]:
        """Which surface tokens are shared across different columns.

        Given ``(column, value)`` pairs, returns a mapping from each surface
        token to the sorted list of columns it appears in, restricted to
        tokens appearing in more than one column.  This quantifies the Fig. 2
        ambiguity the Data Semantic Enhancement System removes.
        """
        token_columns: dict[str, set[str]] = {}
        for column, value in labeled_values:
            for token in self.tokenize(str(value)):
                token_columns.setdefault(token, set()).add(column)
        return {
            token: sorted(columns)
            for token, columns in token_columns.items()
            if len(columns) > 1
        }
