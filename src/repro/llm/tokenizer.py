"""Word-level tokenizer and vocabulary.

The tokenizer mirrors the property of GPT-2's byte-pair encoder that matters
for the paper: two occurrences of the same surface string map to the same
token id regardless of which column they came from, so an ambiguous '1' in
*Lunch* and an ambiguous '1' in *Access Device* collapse to one embedding
(Fig. 2).  The Data Semantic Enhancement System removes exactly this
collision by rewriting the surface strings before tokenization.
"""

from __future__ import annotations

import re
from collections import Counter
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

import numpy as np

#: Sentence separator used by the one-pass corpus tokenizer.  The token
#: pattern matches it as a single punctuation token and no other alternative
#: can span it, so joining a corpus with it and running one global scan yields
#: exactly the per-sentence token streams with a recognisable marker between
#: them.  Corpora that *contain* the marker fall back to per-sentence scans.
_SENTINEL = "\x00"

#: Special tokens shared by every model built on this tokenizer.
SPECIAL_TOKENS = {
    "pad": "<pad>",
    "bos": "<bos>",
    "eos": "<eos>",
    "unk": "<unk>",
}

_TOKEN_PATTERN = re.compile(
    r"""
    <[a-z]+>            # special tokens like <bos>
    | [A-Za-z_]+(?:'[a-z]+)?   # words (incl. underscore compounds and contractions)
    | \d+(?:\.\d+)?     # integers and decimals
    | [^\sA-Za-z0-9]    # any single punctuation mark (':', ',', '^', ...)
    """,
    re.VERBOSE,
)


@dataclass
class Vocabulary:
    """Bidirectional token <-> id mapping."""

    token_to_id: dict[str, int] = field(default_factory=dict)
    id_to_token: list[str] = field(default_factory=list)

    def __post_init__(self):
        if not self.token_to_id:
            for token in SPECIAL_TOKENS.values():
                self.add(token)

    def __len__(self) -> int:
        return len(self.id_to_token)

    def __contains__(self, token: str) -> bool:
        return token in self.token_to_id

    def add(self, token: str) -> int:
        """Add *token* if unseen and return its id."""
        if token in self.token_to_id:
            return self.token_to_id[token]
        token_id = len(self.id_to_token)
        self.token_to_id[token] = token_id
        self.id_to_token.append(token)
        return token_id

    def encode_token(self, token: str) -> int:
        """Id of *token*, or the id of ``<unk>`` when unknown."""
        return self.token_to_id.get(token, self.token_to_id[SPECIAL_TOKENS["unk"]])

    def decode_id(self, token_id: int) -> str:
        """Token string for *token_id*."""
        if not 0 <= token_id < len(self.id_to_token):
            raise IndexError("token id {} out of range (vocabulary size {})".format(token_id, len(self)))
        return self.id_to_token[token_id]

    @property
    def pad_id(self) -> int:
        return self.token_to_id[SPECIAL_TOKENS["pad"]]

    @property
    def bos_id(self) -> int:
        return self.token_to_id[SPECIAL_TOKENS["bos"]]

    @property
    def eos_id(self) -> int:
        return self.token_to_id[SPECIAL_TOKENS["eos"]]

    @property
    def unk_id(self) -> int:
        return self.token_to_id[SPECIAL_TOKENS["unk"]]


@dataclass(frozen=True)
class EncodedCorpus:
    """Flat token-id view of a whole corpus.

    ``ids`` concatenates the per-sentence token ids (``<bos>``/``<eos>``
    included when requested at encode time) and ``offsets`` marks the sentence
    boundaries: sentence ``i`` occupies ``ids[offsets[i]:offsets[i + 1]]``.
    This is the layout the compiled training engine consumes — n-gram count
    accumulation and batched scoring are array sweeps over it.
    """

    ids: np.ndarray
    offsets: np.ndarray

    @property
    def n_sentences(self) -> int:
        return len(self.offsets) - 1

    @property
    def n_scored_positions(self) -> int:
        """How many next-token predictions the corpus contains (positions
        ``1 .. len - 1`` of every sentence, matching the model's training and
        scoring loops)."""
        return int(self.ids.size - self.n_sentences)

    def sentence(self, index: int) -> list[int]:
        """Token ids of sentence *index* as a plain list."""
        start, stop = int(self.offsets[index]), int(self.offsets[index + 1])
        return self.ids[start:stop].tolist()

    def slice(self, start: int, stop: int) -> "EncodedCorpus":
        """Sub-corpus of sentences ``start:stop`` (rebased offsets)."""
        lo, hi = int(self.offsets[start]), int(self.offsets[stop])
        return EncodedCorpus(ids=self.ids[lo:hi],
                             offsets=self.offsets[start:stop + 1] - lo)


class WordTokenizer:
    """Deterministic word/punctuation tokenizer with a trainable vocabulary."""

    def __init__(self, lowercase: bool = False, vocabulary: Vocabulary | None = None):
        self.lowercase = lowercase
        self.vocabulary = vocabulary or Vocabulary()

    # -- string <-> token list -------------------------------------------------------

    def tokenize(self, text: str) -> list[str]:
        """Split *text* into surface tokens without touching the vocabulary."""
        if self.lowercase:
            text = text.lower()
        return _TOKEN_PATTERN.findall(text)

    def detokenize(self, tokens: Sequence[str]) -> str:
        """Re-assemble tokens into a readable sentence.

        Punctuation attaches to the previous token; everything else is joined
        with single spaces.  The textual decoder only needs the 'Column: value'
        structure to survive the round trip, which this guarantees.
        """
        pieces: list[str] = []
        no_space_before = {":", ",", ".", ";", "!", "?", ")", "]", "}"}
        no_space_after = {"(", "[", "{"}
        for token in tokens:
            if token in SPECIAL_TOKENS.values():
                continue
            if pieces and token in no_space_before:
                pieces[-1] = pieces[-1] + token
            elif pieces and pieces[-1] and pieces[-1][-1] in no_space_after:
                pieces[-1] = pieces[-1] + token
            else:
                pieces.append(token)
        return " ".join(pieces)

    # -- one-pass corpus scanning ------------------------------------------------------

    def _corpus_tokens(self, sentences: Sequence[str]) -> tuple[list[str], np.ndarray]:
        """All surface tokens of *sentences* from one regex scan.

        Returns ``(tokens, boundaries)``: the flat token stream with a
        sentinel token between consecutive sentences, and the sentinel
        positions within it (``len(sentences) - 1`` of them).  Equivalent to
        per-sentence :meth:`tokenize` calls — the sentinel is a single
        non-space, non-alphanumeric character, so no pattern alternative can
        match across it — but avoids the per-sentence Python loop overhead.
        """
        if not sentences:
            return [], np.empty(0, dtype=np.int64)
        if any(_SENTINEL in sentence for sentence in sentences):
            # pathological corpus: scan per sentence, inserting sentinels
            tokens: list[str] = []
            bounds: list[int] = []
            for index, sentence in enumerate(sentences):
                if index:
                    bounds.append(len(tokens))
                    tokens.append(_SENTINEL)
                tokens.extend(self.tokenize(sentence))
            return tokens, np.asarray(bounds, dtype=np.int64)
        joined = _SENTINEL.join(sentences)
        if self.lowercase:
            joined = joined.lower()
        tokens = _TOKEN_PATTERN.findall(joined)
        bounds = [i for i, token in enumerate(tokens) if token == _SENTINEL]
        return tokens, np.asarray(bounds, dtype=np.int64)

    def _fit_counter(self, counter: Counter, n_sentinels: int, min_count: int) -> None:
        """Add corpus tokens to the vocabulary in ``(-count, token)`` order.

        ``n_sentinels`` is how many separator tokens the corpus scan
        inserted; only those are discounted, so a corpus that genuinely
        contains the sentinel character keeps its own occurrences.
        """
        if n_sentinels:
            remaining = counter[_SENTINEL] - n_sentinels
            if remaining > 0:
                counter[_SENTINEL] = remaining
            else:
                del counter[_SENTINEL]
        for token, count in sorted(counter.items(), key=lambda kv: (-kv[1], kv[0])):
            if count >= min_count:
                self.vocabulary.add(token)

    def _assemble_corpus(self, tokens: list[str], bounds: np.ndarray,
                         n_sentences: int, add_bos: bool, add_eos: bool) -> EncodedCorpus:
        """Map a sentinel-delimited token stream to the flat id layout."""
        if n_sentences == 0:
            return EncodedCorpus(ids=np.empty(0, dtype=np.int64),
                                 offsets=np.zeros(1, dtype=np.int64))
        token_to_id = self.vocabulary.token_to_id
        unk_id = self.vocabulary.unk_id
        all_ids = np.array([token_to_id.get(token, unk_id) for token in tokens],
                           dtype=np.int64)
        body = np.delete(all_ids, bounds) if bounds.size else all_ids
        edges = np.concatenate([[-1], bounds, [len(tokens)]])
        counts = np.diff(edges) - 1  # tokens per sentence
        extra = int(add_bos) + int(add_eos)
        offsets = np.zeros(n_sentences + 1, dtype=np.int64)
        np.cumsum(counts + extra, out=offsets[1:])
        flat = np.empty(int(offsets[-1]), dtype=np.int64)
        if add_bos:
            flat[offsets[:-1]] = self.vocabulary.bos_id
        if add_eos:
            flat[offsets[1:] - 1] = self.vocabulary.eos_id
        if body.size:
            starts = np.repeat(offsets[:-1] + int(add_bos), counts)
            within = np.arange(body.size, dtype=np.int64) \
                - np.repeat(np.cumsum(counts) - counts, counts)
            flat[starts + within] = body
        return EncodedCorpus(ids=flat, offsets=offsets)

    # -- vocabulary management ---------------------------------------------------------

    def fit(self, corpus: Iterable[str], min_count: int = 1) -> "WordTokenizer":
        """Build the vocabulary from a corpus of sentences.

        Tokens are added in ``(-count, token)`` order from one global count
        over the whole corpus, so the resulting ids are independent of
        sentence order within equal-count ties.
        """
        tokens, bounds = self._corpus_tokens(list(corpus))
        self._fit_counter(Counter(tokens), bounds.size, min_count)
        return self

    def encode_corpus(self, corpus: Sequence[str], add_bos: bool = True,
                      add_eos: bool = True) -> EncodedCorpus:
        """Encode a whole corpus into the flat id + sentence-offset layout.

        Sentence ``i`` of the result equals ``encode(corpus[i])`` exactly;
        the corpus is scanned with a single regex pass instead of one call
        per sentence.
        """
        sentences = list(corpus)
        tokens, bounds = self._corpus_tokens(sentences)
        return self._assemble_corpus(tokens, bounds, len(sentences), add_bos, add_eos)

    def fit_encode_corpus(self, corpus: Sequence[str], min_count: int = 1,
                          add_bos: bool = True, add_eos: bool = True) -> EncodedCorpus:
        """Fit the vocabulary and encode the corpus from one shared scan.

        Identical to ``fit(corpus)`` followed by ``encode_corpus(corpus)``
        but tokenizes the text only once — the entry point of the compiled
        training engine.
        """
        sentences = list(corpus)
        tokens, bounds = self._corpus_tokens(sentences)
        self._fit_counter(Counter(tokens), bounds.size, min_count)
        return self._assemble_corpus(tokens, bounds, len(sentences), add_bos, add_eos)

    # -- token list <-> id list -----------------------------------------------------

    def encode(self, text: str, add_bos: bool = True, add_eos: bool = True) -> list[int]:
        """Tokenize *text* and map the tokens to vocabulary ids."""
        ids = [self.vocabulary.encode_token(token) for token in self.tokenize(text)]
        if add_bos:
            ids = [self.vocabulary.bos_id] + ids
        if add_eos:
            ids = ids + [self.vocabulary.eos_id]
        return ids

    def decode(self, token_ids: Sequence[int]) -> str:
        """Map ids back to tokens and re-assemble the sentence."""
        tokens = [self.vocabulary.decode_id(i) for i in token_ids]
        return self.detokenize(tokens)

    def _decode_tables(self):
        """Vectorized decode state, rebuilt whenever the vocabulary grows.

        Five parallel per-id arrays: the token string, the token with a
        leading space, whether the token survives decoding (specials are
        dropped), whether it attaches to the previous piece, and whether it
        ends with an opening bracket (so the *next* token attaches).
        """
        cached = getattr(self, "_decode_cache", None)
        size = len(self.vocabulary)
        if cached is not None and cached[0] == size:
            return cached[1]
        tokens = self.vocabulary.id_to_token
        specials = set(SPECIAL_TOKENS.values())
        no_space_before = {":", ",", ".", ";", "!", "?", ")", "]", "}"}
        no_space_after = {"(", "[", "{"}
        plain = np.asarray(tokens, dtype=object)
        spaced = np.asarray([" " + token for token in tokens], dtype=object)
        keep = np.asarray([token not in specials for token in tokens], dtype=bool)
        attaches = np.asarray([token in no_space_before for token in tokens], dtype=bool)
        opens = np.asarray([bool(token) and token[-1] in no_space_after for token in tokens],
                           dtype=bool)
        tables = (plain, spaced, keep, attaches, opens)
        self._decode_cache = (size, tables)
        return tables

    def decode_batch(self, sequences: Sequence[Sequence[int]]) -> list[str]:
        """Decode many id sequences at once; equals ``[decode(s) for s in sequences]``.

        The per-id vocabulary lookups and the spacing decisions of
        :meth:`detokenize` are resolved through precomputed per-id arrays
        (one fancy-index per sentence), which is where the free-sampling
        path spent most of its post-generation time.
        """
        if not sequences:
            return []
        plain, spaced, keep, attaches, opens = self._decode_tables()
        size = len(self.vocabulary)
        sentences: list[str] = []
        for sequence in sequences:
            ids = np.asarray(sequence, dtype=np.int64)
            if ids.size == 0:
                sentences.append("")
                continue
            if int(ids.min()) < 0 or int(ids.max()) >= size:
                bad = int(ids[(ids < 0) | (ids >= size)][0])
                raise IndexError(
                    "token id {} out of range (vocabulary size {})".format(bad, size))
            ids = ids[keep[ids]]
            if ids.size == 0:
                sentences.append("")
                continue
            merge = attaches[ids]
            merge[1:] |= opens[ids[:-1]]
            merge[0] = True  # never a leading space
            sentences.append("".join(np.where(merge, plain[ids], spaced[ids]).tolist()))
        return sentences

    def token_collisions(self, labeled_values: Sequence[tuple[str, object]]) -> dict[str, list[str]]:
        """Which surface tokens are shared across different columns.

        Given ``(column, value)`` pairs, returns a mapping from each surface
        token to the sorted list of columns it appears in, restricted to
        tokens appearing in more than one column.  This quantifies the Fig. 2
        ambiguity the Data Semantic Enhancement System removes.
        """
        token_columns: dict[str, set[str]] = {}
        for column, value in labeled_values:
            for token in self.tokenize(str(value)):
                token_columns.setdefault(token, set()).add(column)
        return {
            token: sorted(columns)
            for token, columns in token_columns.items()
            if len(columns) > 1
        }
