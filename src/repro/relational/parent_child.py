"""REaLTabFormer-style parent/child synthesizer.

Two coupled synthesizers: the parent synthesizer learns the one-row-per-subject
parent table; the child synthesizer learns the child table *conditioned on* the
parent observation (the parent columns are prepended to the child row in the
textual encoding, and at sampling time they form the generation prompt).  The
paper instantiates two ``realtabformer`` objects with 10 epochs and 5 batches
(Sec. 4.1.4); this class exposes the same pair with the same hyper-parameters
on the offline LM substrate.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.frame.errors import ColumnNotFoundError
from repro.frame.ops import value_counts
from repro.frame.table import Table
from repro.great.synthesizer import GReaTConfig, GReaTSynthesizer


@dataclass(frozen=True)
class ParentChildConfig:
    """Hyper-parameters of the parent/child synthesizer pair.

    ``children_per_parent`` controls how many child rows are generated per
    sampled parent row; ``"match"`` (the default) reproduces the empirical
    distribution of children-per-subject observed at fit time, an integer uses
    a fixed count.
    """

    parent: GReaTConfig = field(default_factory=GReaTConfig)
    child: GReaTConfig = field(default_factory=GReaTConfig)
    children_per_parent: int | str = "match"
    seed: int = 0

    def __post_init__(self):
        if isinstance(self.children_per_parent, str):
            if self.children_per_parent != "match":
                raise ValueError("children_per_parent must be an integer or 'match'")
        elif self.children_per_parent < 1:
            raise ValueError("children_per_parent must be at least 1")


class ParentChildSynthesizer:
    """Fit on a (parent, child) pair of tables; sample a synthetic pair."""

    def __init__(self, config: ParentChildConfig | None = None):
        self.config = config or ParentChildConfig()
        self._parent_synth = GReaTSynthesizer(self.config.parent)
        self._child_synth = GReaTSynthesizer(self.config.child)
        self._subject_column: str | None = None
        self._parent_columns: list[str] = []
        self._child_columns: list[str] = []
        self._children_per_subject: list[int] = []

    @property
    def is_fitted(self) -> bool:
        return self._subject_column is not None

    @classmethod
    def _from_fitted_state(cls, config: ParentChildConfig,
                           parent_synth: GReaTSynthesizer,
                           child_synth: GReaTSynthesizer,
                           subject_column: str,
                           parent_columns: list[str],
                           child_columns: list[str],
                           children_per_subject: list[int]) -> "ParentChildSynthesizer":
        """Reconstruct a fitted pair from persisted state (see :mod:`repro.store`)."""
        synth = cls(config)
        synth._parent_synth = parent_synth
        synth._child_synth = child_synth
        synth._subject_column = subject_column
        synth._parent_columns = list(parent_columns)
        synth._child_columns = list(child_columns)
        synth._children_per_subject = [int(c) for c in children_per_subject]
        return synth

    def fit(self, parent: Table, child: Table, subject_column: str) -> "ParentChildSynthesizer":
        """Fit the parent synthesizer on *parent* and the child synthesizer on
        the child rows augmented with their parent's columns."""
        if subject_column not in parent.column_names:
            raise ColumnNotFoundError(subject_column, parent.column_names)
        if subject_column not in child.column_names:
            raise ColumnNotFoundError(subject_column, child.column_names)

        subjects = parent.column(subject_column).values
        if len(set(subjects)) != len(subjects):
            raise ValueError(
                "subject column {!r} is not unique in the parent table "
                "({} rows, {} distinct subjects); a parent table must have "
                "exactly one row per subject — extract it with "
                "repro.relational.contextual.extract_parent_table first".format(
                    subject_column, len(subjects), len(set(subjects))))

        self._subject_column = subject_column
        self._parent_columns = list(parent.column_names)
        self._child_columns = [name for name in child.column_names if name != subject_column]

        # record the empirical children-per-subject distribution for sampling.
        # ``value_counts`` orders ties differently across storage backends, so
        # the list is pinned by subject key to keep ``rng.choice`` draws
        # reproducible regardless of backend or Python version.
        counts = value_counts(child, subject_column)
        self._children_per_subject = [
            count for _, count in sorted(counts.items(), key=lambda item: str(item[0]))
        ] or [1]

        self._parent_synth.fit(parent)

        # child training rows carry the parent columns as conditioning
        # context; the conditioned table is assembled column-wise (one parent
        # row index per child row, then a gather per column) instead of
        # building a dict per row
        parent_row_index = {subject: index for index, subject in enumerate(subjects)}
        child_parents = [parent_row_index.get(subject)
                         for subject in child.column(subject_column).values]
        kept = [row for row, parent_idx in enumerate(child_parents)
                if parent_idx is not None]
        if not kept:
            raise ValueError("no child rows reference a parent subject; cannot fit")
        columns: dict = {}
        for name in self._parent_columns:
            values = parent.column(name).values
            columns[name] = [values[child_parents[row]] for row in kept]
        for name in self._child_columns:
            values = child.column(name).values
            columns[name] = [values[row] for row in kept]
        conditioned = Table(columns)
        self._child_synth.fit(conditioned)
        return self

    def _require_fitted(self):
        if not self.is_fitted:
            raise RuntimeError("call fit() before sampling")

    def sample(self, n_parents: int, seed: int | None = None,
               subject_offset: int = 0,
               max_lanes: int | None = None) -> tuple[Table, Table]:
        """Sample *n_parents* parent rows and their conditioned child rows.

        Returns ``(parent_table, child_table)``; the child table repeats each
        synthetic subject's key on every generated child row, reproducing the
        one-to-many structure of the training data.  ``subject_offset``
        shifts the synthetic subject numbering, so independently seeded
        blocks (the serving layer's sharding unit) produce globally unique,
        position-stable keys.  ``max_lanes`` caps the engine batch width for
        both rounds — the child prompts fan out to one lane per child row,
        which would otherwise run full ``batch_lanes``-wide batches however
        small the block.
        """
        self._require_fitted()
        if n_parents <= 0:
            raise ValueError("n_parents must be positive")
        seed = self.config.seed if seed is None else seed
        rng = random.Random(seed)

        parent_table = self._parent_synth.sample(n_parents, seed=seed,
                                                 max_lanes=max_lanes)
        # synthetic subjects get fresh unique keys so child rows can reference them
        synthetic_subjects = ["synthetic_subject_{}".format(subject_offset + i)
                              for i in range(n_parents)]
        parent_table = parent_table.with_column(self._subject_column, synthetic_subjects)

        # every parent's children ride in one conditioned mega-batch: the
        # per-parent prompt groups are flattened, generated in a single
        # engine pass, and re-split by parent afterwards.
        children_counts = [self._draw_children_count(rng) for _ in range(n_parents)]
        prompts: list[dict] = []
        for parent_row, n_children in zip(parent_table.iter_rows(), children_counts):
            prompt = {name: parent_row[name] for name in self._parent_columns
                      if name != self._subject_column}
            prompts.extend([prompt] * n_children)
        generated = self._child_synth.sample_conditional(prompts, seed=seed + 1,
                                                         max_lanes=max_lanes)

        child_records = []
        generated_rows = generated.iter_rows()
        for subject, n_children in zip(synthetic_subjects, children_counts):
            for _ in range(n_children):
                row = next(generated_rows)
                record = {self._subject_column: subject}
                for name in self._child_columns:
                    record[name] = row[name]
                child_records.append(record)
        child_table = Table.from_records(
            child_records, columns=[self._subject_column] + self._child_columns
        )
        return parent_table, child_table

    def sample_all(self, n_parents: int, seed: int | None = None,
                   subject_offset: int = 0,
                   max_lanes: int | None = None) -> tuple[Table, Table, Table]:
        """Sample once and return ``(parent, child, flat)``.

        The flat view is *derived* from the sampled pair by joining each child
        row with its parent's columns, so pair and flat view are guaranteed
        consistent and generation runs exactly once.
        """
        parent_table, child_table = self.sample(n_parents, seed=seed,
                                                subject_offset=subject_offset,
                                                max_lanes=max_lanes)
        return parent_table, child_table, self.flatten_pair(parent_table, child_table)

    def flatten_pair(self, parent_table: Table, child_table: Table) -> Table:
        """Join a sampled (parent, child) pair into the flat evaluation view."""
        self._require_fitted()
        parent_by_subject = {row[self._subject_column]: row for row in parent_table.iter_rows()}
        records = []
        for row in child_table.iter_rows():
            parent_row = parent_by_subject[row[self._subject_column]]
            record = dict(parent_row)
            for name in self._child_columns:
                record[name] = row[name]
            records.append(record)
        return Table.from_records(records, columns=self._parent_columns + self._child_columns)

    def sample_flat(self, n_parents: int, seed: int | None = None,
                    subject_offset: int = 0, max_lanes: int | None = None) -> Table:
        """Sample and return the child table joined with its parent columns.

        This flat view (every child row carrying its parent's contextual
        columns) is what the fidelity evaluation compares against the original
        flat data.
        """
        return self.sample_all(n_parents, seed=seed, subject_offset=subject_offset,
                               max_lanes=max_lanes)[2]

    def _draw_children_count(self, rng: random.Random) -> int:
        if isinstance(self.config.children_per_parent, int):
            return self.config.children_per_parent
        return rng.choice(self._children_per_subject)
