"""Relational (multi-table) substrate.

Implements the parent/child machinery the paper builds on:

* contextual-variable detection and parent-table extraction (Appendix A.1/A.2,
  DEREC step 1) — columns whose value is constant within each subject are
  pulled out into a one-row-per-subject parent table;
* a REaLTabFormer-style parent/child synthesizer — a parent-table synthesizer
  plus a child-table synthesizer conditioned on the sampled parent
  observation, both backed by the same LM substrate as GReaT.
"""

from repro.relational.contextual import (
    ContextualVariableDetector,
    ParentChildSplit,
    extract_parent_table,
)
from repro.relational.parent_child import ParentChildConfig, ParentChildSynthesizer

__all__ = [
    "ContextualVariableDetector",
    "ParentChildSplit",
    "extract_parent_table",
    "ParentChildSynthesizer",
    "ParentChildConfig",
]
