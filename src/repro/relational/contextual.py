"""Contextual-variable detection and parent-table extraction.

Appendix A.2 of the paper: a column is *contextual* when, for at least a
fraction ``m`` of the subjects, its value is constant across all of that
subject's observations (gender and birth date in the visit-logbook example of
Fig. 11/12).  Contextual columns are extracted into a parent table with one
row per subject; the remaining columns stay in the child table together with
the subject key.  This is step (1) of the GReaTER overview (Fig. 1) and the
first stage of the DEREC pipeline.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.frame.errors import ColumnNotFoundError
from repro.frame.table import Table


@dataclass(frozen=True)
class ParentChildSplit:
    """Result of extracting the contextual parent table from a child table."""

    parent: Table
    child: Table
    subject_column: str
    contextual_columns: tuple[str, ...]


@dataclass
class ContextualVariableDetector:
    """Find columns whose value is constant within (almost) every subject.

    Parameters
    ----------
    consistency_threshold:
        The fraction ``m`` of subjects that must have a single value in the
        column for it to count as contextual.  The paper notes ``m < 100%``
        to allow for "realistic exceptional cases and measurement error".
    """

    consistency_threshold: float = 0.95

    def __post_init__(self):
        if not 0.0 < self.consistency_threshold <= 1.0:
            raise ValueError("consistency_threshold must be in (0, 1]")

    def column_consistency(self, table: Table, subject_column: str, column: str) -> float:
        """Fraction of subjects for which *column* has a single value."""
        if subject_column not in table.column_names:
            raise ColumnNotFoundError(subject_column, table.column_names)
        if column not in table.column_names:
            raise ColumnNotFoundError(column, table.column_names)
        groups = table.group_indices(subject_column)
        if not groups:
            return 0.0
        values = table.column(column)
        consistent = 0
        for indices in groups.values():
            distinct = {values[i] for i in indices}
            if len(distinct) <= 1:
                consistent += 1
        return consistent / len(groups)

    def contextual_columns(self, table: Table, subject_column: str) -> list[str]:
        """All non-key columns whose per-subject consistency passes the threshold."""
        names = [name for name in table.column_names if name != subject_column]
        return [
            name for name in names
            if self.column_consistency(table, subject_column, name) >= self.consistency_threshold
        ]


def _modal_value(values: list):
    """Most frequent non-missing value (ties broken by first occurrence)."""
    non_missing = [v for v in values if v is not None]
    if not non_missing:
        return None
    counts = Counter(non_missing)
    best_count = max(counts.values())
    for value in non_missing:
        if counts[value] == best_count:
            return value
    return non_missing[0]


def extract_parent_table(table: Table, subject_column: str,
                         detector: ContextualVariableDetector | None = None,
                         contextual_columns: list[str] | None = None) -> ParentChildSplit:
    """Split a child table into a contextual parent table and the remaining child.

    The parent has one row per subject, holding the subject key and each
    contextual column's per-subject value (modal value when a subject has the
    occasional inconsistent observation).  The child keeps the subject key and
    every non-contextual column.
    """
    detector = detector or ContextualVariableDetector()
    if contextual_columns is None:
        contextual_columns = detector.contextual_columns(table, subject_column)
    else:
        for name in contextual_columns:
            if name not in table.column_names:
                raise ColumnNotFoundError(name, table.column_names)
        contextual_columns = [name for name in contextual_columns if name != subject_column]

    groups = table.group_indices(subject_column)
    parent_records = []
    for subject, indices in groups.items():
        record = {subject_column: subject}
        for name in contextual_columns:
            column = table.column(name)
            record[name] = _modal_value([column[i] for i in indices])
        parent_records.append(record)
    parent = Table.from_records(parent_records, columns=[subject_column] + list(contextual_columns))

    child_columns = [subject_column] + [
        name for name in table.column_names
        if name != subject_column and name not in set(contextual_columns)
    ]
    child = table.select(child_columns)
    return ParentChildSplit(
        parent=parent,
        child=child,
        subject_column=subject_column,
        contextual_columns=tuple(contextual_columns),
    )


def merge_contextual_parents(first: ParentChildSplit, second: ParentChildSplit) -> Table:
    """Union of two parent tables that share the subject column.

    GReaTER extracts a single parent from the contextual variables of *both*
    child tables (Fig. 1, step 1); when both tables contribute contextual
    columns for the same subjects this merges them into one parent table.
    """
    if first.subject_column != second.subject_column:
        raise ValueError(
            "parents use different subject columns: {!r} vs {!r}".format(
                first.subject_column, second.subject_column
            )
        )
    subject = first.subject_column
    second_by_subject = {row[subject]: row for row in second.parent.iter_rows()}
    extra_columns = [name for name in second.parent.column_names
                     if name != subject and name not in first.parent.column_names]
    records = []
    subjects_seen = set()
    for row in first.parent.iter_rows():
        record = dict(row)
        other = second_by_subject.get(row[subject], {})
        for name in extra_columns:
            record[name] = other.get(name)
        records.append(record)
        subjects_seen.add(row[subject])
    for row in second.parent.iter_rows():
        if row[subject] in subjects_seen:
            continue
        record = {subject: row[subject]}
        for name in first.parent.column_names:
            if name != subject:
                record[name] = None
        for name in extra_columns:
            record[name] = row.get(name)
        records.append(record)
    columns = list(first.parent.column_names) + extra_columns
    return Table.from_records(records, columns=columns)
