"""Atomic filesystem writes for artifacts.

A crashed or concurrent writer must never leave a torn file where a reader
(e.g. the serving layer) could pick it up.  Every artifact write in
:mod:`repro.store` — and the CSV writer in :mod:`repro.frame.io` — goes
through the helper here: the payload is written to a temporary sibling
inside the *target* directory (so the final rename never crosses a
filesystem boundary) and moved into place with ``os.replace``, which is
atomic on POSIX and Windows alike.  Bundles are single files for exactly
this reason: one rename either fully publishes the new artifact or leaves
the old one untouched — there is no in-between state to observe.
"""

from __future__ import annotations

import os
import tempfile
from contextlib import contextmanager
from pathlib import Path


def _process_umask() -> int:
    """The current umask (read non-destructively via a set/restore pair)."""
    current = os.umask(0)
    os.umask(current)
    return current


@contextmanager
def atomic_path(path):
    """Yield a temporary sibling of *path*; rename it over *path* on success.

    The temporary file lives in the same directory as the target, so the
    final ``os.replace`` is a same-filesystem rename.  ``mkstemp`` creates
    the file with mode 0600; it is re-chmodded to honour the process umask
    so the published artifact has the same permissions a plain ``open``
    would have produced.  On any exception the temporary file is removed
    and the target is left untouched.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    handle, name = tempfile.mkstemp(dir=target.parent, prefix=target.name + ".", suffix=".tmp")
    os.close(handle)
    tmp = Path(name)
    try:
        os.chmod(tmp, 0o666 & ~_process_umask())
        yield tmp
        os.replace(tmp, target)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise


def atomic_write_bytes(path, data: bytes) -> Path:
    """Atomically write *data* to *path* (write temp + ``os.replace``)."""
    with atomic_path(path) as tmp:
        tmp.write_bytes(data)
    return Path(path)


def atomic_write_text(path, text: str) -> Path:
    """Atomically write *text* to *path* (write temp + ``os.replace``)."""
    return atomic_write_bytes(path, text.encode("utf-8"))
