"""Typed, pickle-free scalar/JSON codec.

Artifact manifests and bundle parts are JSON files, but plain JSON loses
the distinctions the substrate depends on: tuple vs list (frozen config
fields), int vs float (column dtypes), non-string dictionary keys (mapping
systems over label-encoded columns).  The codec wraps every value in a
small ``{"t": <tag>, "v": <payload>}`` envelope so the round trip is exact
for the closed set of types the repo actually stores: ``None``, ``bool``,
``int``, ``float``, ``str``, ``list``, ``tuple`` and ``dict`` (with
arbitrary encodable keys).

Anything outside that set raises :class:`StoreError` — by design there is
no arbitrary-object escape hatch, which is what keeps the format
pickle-free and safe to load.
"""

from __future__ import annotations

import json


class StoreError(RuntimeError):
    """An artifact could not be encoded, decoded or validated."""


def encode_value(value):
    """Encode *value* into the typed JSON envelope."""
    if value is None:
        return {"t": "none"}
    if isinstance(value, bool):  # before int: bool is an int subclass
        return {"t": "bool", "v": value}
    if isinstance(value, int):
        return {"t": "int", "v": value}
    if isinstance(value, float):
        # json round-trips floats exactly via repr (NaN/Infinity included,
        # using the non-strict tokens both dumps and loads understand)
        return {"t": "float", "v": value}
    if isinstance(value, str):
        return {"t": "str", "v": value}
    if isinstance(value, list):
        return {"t": "list", "v": [encode_value(item) for item in value]}
    if isinstance(value, tuple):
        return {"t": "tuple", "v": [encode_value(item) for item in value]}
    if isinstance(value, dict):
        return {"t": "dict",
                "v": [[encode_value(k), encode_value(v)] for k, v in value.items()]}
    raise StoreError(
        "cannot encode value of type {} into the artifact format".format(type(value).__name__)
    )


def decode_value(payload):
    """Inverse of :func:`encode_value`."""
    try:
        tag = payload["t"]
    except (TypeError, KeyError):
        raise StoreError("malformed typed payload: {!r}".format(payload)) from None
    if tag == "none":
        return None
    if tag in ("bool", "int", "float", "str"):
        return payload["v"]
    if tag == "list":
        return [decode_value(item) for item in payload["v"]]
    if tag == "tuple":
        return tuple(decode_value(item) for item in payload["v"])
    if tag == "dict":
        return {decode_value(k): decode_value(v) for k, v in payload["v"]}
    raise StoreError("unknown type tag {!r} in artifact payload".format(tag))


def dumps(value) -> str:
    """Serialise *value* through the typed envelope to a JSON string."""
    return json.dumps(encode_value(value), indent=2, sort_keys=True)


def loads(text: str):
    """Inverse of :func:`dumps`."""
    return decode_value(json.loads(text))
