"""Versioned, pickle-free artifact bundles for fitted synthesizers.

A *bundle* is a single zip archive of small, typed parts — JSON for
configuration and schemas (through the exact :mod:`repro.store.codec`
envelope), NPZ for arrays and tables (:mod:`repro.store.tablefmt`) — plus
a ``manifest.json`` recording the format version, the bundle kind,
provenance metadata (seed, resolved engines, column schema) and a SHA-256
digest over every part.  Because a bundle is one file, publishing it is
one atomic ``os.replace``: a reader sees either the complete old bundle or
the complete new one, never a torn state — even when a writer overwrites a
bundle a serving process is concurrently loading.

Serializers exist for every fitted object in the synthesis path:

* :func:`save_great_synthesizer` / :func:`load_great_synthesizer` — the
  single-table GReaT synthesizer (tokenizer vocabulary, n-gram count
  arrays, textual decoder schema, training table, perplexity trace);
* :func:`save_parent_child` / :func:`load_parent_child` — the coupled
  parent/child pair plus its relational state;
* :func:`save_fitted_pipeline` / :func:`load_fitted_pipeline` — a whole
  fitted pipeline (enhancer mapping, one or two parent/child synthesizers,
  the original flat reference and the fit-time diagnostics);
* :func:`load_bundle` — kind-dispatched loading.

The model counts are stored as *unpacked* integer n-gram tables (one
``(n_contexts, k)`` context matrix per order plus CSR row pointers), the
canonical sorted layout both training engines already agree on — so a
loaded model reproduces the in-process model bit for bit on both the
``object`` and ``compiled`` engines, regardless of which engine trained it.
"""

from __future__ import annotations

import hashlib
import io
import json
import zipfile
from dataclasses import asdict
from pathlib import Path

import numpy as np

from repro import faults
from repro.enhancement.enhancer import DataSemanticEnhancer, EnhancerConfig
from repro.enhancement.mapping import MappingSystem
from repro.great.synthesizer import GReaTConfig, GReaTSynthesizer
from repro.llm.compiled import _MAX_PACKED_KEY
from repro.llm.engine import resolve_engine_kind
from repro.llm.finetune import FineTuneConfig
from repro.llm.ngram_model import ModelConfig, NGramLanguageModel
from repro.llm.sampler import SamplerConfig
from repro.llm.tokenizer import Vocabulary, WordTokenizer
from repro.llm.training import ArrayTrainedNGramModel, CorpusCounts, resolve_training_engine
from repro.relational.parent_child import ParentChildConfig, ParentChildSynthesizer
import repro.store.codec as codec
import repro.store.npymap as npymap
from repro.store.atomic import atomic_path
from repro.store.codec import StoreError
from repro.store.tablefmt import (
    _decode_strings,
    _encode_strings,
    arrays_to_table,
    table_to_arrays,
)
from repro.textenc.decoder import TextualDecoder
from repro.textenc.encoder import EncoderConfig

#: Version of the bundle layout; readers reject newer versions and migrate
#: older ones on read through :mod:`repro.registry.migrations`.
BUNDLE_FORMAT_VERSION = 1

MANIFEST_NAME = "manifest.json"

#: Bundle kinds understood by :func:`load_bundle`.
BUNDLE_KINDS = ("great_synthesizer", "parent_child_synthesizer", "fitted_pipeline",
                "multitable_synthesizer", "multitable_pipeline")

#: Fixed timestamp for every zip entry (bundle archives and inner NPZ
#: entries).  ``zipfile`` and ``numpy.savez`` stamp wall-clock time into
#: entry headers, which would give two byte-identical parts different
#: archive bytes — fatal for content addressing, part-level dedup and the
#: byte-identity guarantees of format migrations.
_ZIP_EPOCH = (1980, 1, 1, 0, 0, 0)


class BundleIntegrityError(StoreError):
    """A bundle's bytes do not match its manifest (sizes or SHA-256 digest)."""


def _zip_entry(name: str, compression: int = zipfile.ZIP_STORED) -> zipfile.ZipInfo:
    info = zipfile.ZipInfo(name, date_time=_ZIP_EPOCH)
    info.compress_type = compression
    info.external_attr = 0o644 << 16
    return info


def npz_bytes(arrays: dict, compress: bool = False) -> bytes:
    """Serialize a ``name -> ndarray`` mapping to deterministic NPZ bytes.

    Identical arrays always produce identical bytes: entries are written in
    sorted order with the fixed :data:`_ZIP_EPOCH` timestamp (``np.savez``
    would stamp the current time).  The layout is otherwise exactly what
    ``numpy.savez``/``savez_compressed`` produce, so ``numpy.load`` and
    :mod:`repro.store.npymap` read it unchanged.
    """
    from numpy.lib import format as npy_format

    compression = zipfile.ZIP_DEFLATED if compress else zipfile.ZIP_STORED
    buffer = io.BytesIO()
    with zipfile.ZipFile(buffer, "w", compression=compression) as archive:
        for key in sorted(arrays):
            payload = io.BytesIO()
            npy_format.write_array(payload, np.asanyarray(arrays[key]),
                                   allow_pickle=False)
            archive.writestr(_zip_entry(key + ".npy", compression), payload.getvalue())
    return buffer.getvalue()


def parts_digest(parts: dict[str, bytes]) -> str:
    """SHA-256 over every part (name + content, sorted by name).

    The content address of a bundle: the same formula whether the parts
    live in one archive file or in the registry's object store, so a
    bundle file and its registry artifact share one digest.
    """
    sha = hashlib.sha256()
    for name in sorted(parts):
        sha.update(name.encode("utf-8"))
        sha.update(b"\x00")
        sha.update(parts[name])
    return sha.hexdigest()


def archive_bytes(parts: dict[str, bytes], manifest: dict) -> bytes:
    """The deterministic bundle archive holding *parts* plus *manifest*."""
    buffer = io.BytesIO()
    with zipfile.ZipFile(buffer, "w", compression=zipfile.ZIP_STORED) as archive:
        for name in sorted(parts):
            archive.writestr(_zip_entry(name), parts[name])
        archive.writestr(_zip_entry(MANIFEST_NAME),
                         json.dumps(manifest, indent=2, sort_keys=True))
    return buffer.getvalue()


def verify_parts(manifest: dict, parts: dict[str, bytes], source) -> None:
    """Check *parts* against the manifest; raise :class:`BundleIntegrityError`.

    Three layers, cheapest first: the part-name sets must match, every
    part's size must match, and the recomputed content digest must equal
    the manifest's.
    """
    declared = manifest.get("parts", {})
    if set(declared) != set(parts):
        missing = sorted(set(declared) - set(parts))
        extra = sorted(set(parts) - set(declared))
        raise BundleIntegrityError(
            "bundle at {} does not match its manifest (missing parts: {}, "
            "undeclared parts: {})".format(source, missing, extra))
    for name, size in declared.items():
        if len(parts[name]) != size:
            raise BundleIntegrityError(
                "bundle part {!r} at {} is {} bytes, manifest declares {}".format(
                    name, source, len(parts[name]), size))
    digest = parts_digest(parts)
    if digest != manifest.get("digest"):
        raise BundleIntegrityError(
            "bundle at {} fails digest verification: parts hash to {}, "
            "manifest declares {}".format(source, digest, manifest.get("digest")))


# ---------------------------------------------------------------------------
# bundle container
# ---------------------------------------------------------------------------

class BundleWriter:
    """Accumulate named parts in memory, then write them atomically.

    ``compress`` selects the NPZ codec for array parts:
    ``numpy.savez_compressed`` (smaller, slower) when true,
    ``numpy.savez`` (larger, fast) when false.  The manifest records the
    choice; :class:`BundleReader` handles both transparently
    (``numpy.load`` sniffs the per-entry codec).
    """

    def __init__(self, kind: str, meta: dict | None = None, compress: bool = False):
        if kind not in BUNDLE_KINDS:
            raise StoreError("unknown bundle kind {!r}".format(kind))
        self.kind = kind
        self.meta = dict(meta or {})
        self.compress = bool(compress)
        self._parts: dict[str, bytes] = {}

    def add_json(self, name: str, value) -> None:
        """Add a JSON part (typed-codec encoded, so tuples/int keys survive)."""
        self._parts[name + ".json"] = codec.dumps(value).encode("utf-8")

    def add_arrays(self, name: str, arrays: dict) -> None:
        """Add an NPZ part from a name -> ndarray mapping."""
        self._parts[name + ".npz"] = npz_bytes(arrays, compress=self.compress)

    def add_table(self, name: str, table) -> None:
        """Add a table part in the binary columnar format."""
        self.add_arrays(name, table_to_arrays(table))

    @property
    def parts(self) -> dict[str, bytes]:
        """The accumulated parts (name -> bytes) — the registry stores these."""
        return dict(self._parts)

    def digest(self) -> str:
        """SHA-256 digest over every part (name + content, sorted by name)."""
        return parts_digest(self._parts)

    def manifest(self) -> dict:
        """The manifest describing the accumulated parts."""
        return {
            "format_version": BUNDLE_FORMAT_VERSION,
            "kind": self.kind,
            "digest": self.digest(),
            "compress": self.compress,
            "parts": {name: len(blob) for name, blob in sorted(self._parts.items())},
            "meta": self.meta,
        }

    def write(self, path) -> str:
        """Atomically write the bundle archive and return its digest.

        The parts are already compressed (NPZ) or tiny (JSON), so the
        archive stores them uncompressed; the whole file is published with
        one ``os.replace``.  The archive bytes are a pure function of the
        parts (fixed entry timestamps, sorted entries), so saving the same
        fitted state twice produces byte-identical files.
        """
        manifest = self.manifest()
        data = archive_bytes(self._parts, manifest)
        with atomic_path(path) as tmp:
            Path(tmp).write_bytes(data)
        return manifest["digest"]


class BasePartReader:
    """Shared part-decoding surface of every bundle reader.

    Subclasses supply ``manifest``, ``mmap``, a ``path``-like source label,
    and :meth:`_part` returning raw part bytes; the typed accessors
    (:meth:`json`, :meth:`arrays`, :meth:`table`) and the manifest
    properties are common.  The per-kind readers (``_read_great`` & co.)
    accept anything with this surface, which is how the registry loads
    artifacts straight from its object store without a bundle file.
    """

    manifest: dict
    mmap: bool = False

    def _part(self, name: str) -> bytes:
        raise NotImplementedError

    @property
    def kind(self) -> str:
        return self.manifest["kind"]

    @property
    def digest(self) -> str:
        return self.manifest["digest"]

    @property
    def meta(self) -> dict:
        return self.manifest.get("meta", {})

    @property
    def compress(self) -> bool:
        """Whether the array parts were written compressed (manifest record).

        Bundles predating the knob were always compressed.
        """
        return bool(self.manifest.get("compress", True))

    def json(self, name: str):
        return codec.loads(self._part(name + ".json").decode("utf-8"))

    def arrays(self, name: str) -> dict:
        with np.load(io.BytesIO(self._part(name + ".npz"))) as data:
            return {key: data[key] for key in data.files}

    def table(self, name: str):
        arrays = self.arrays(name)
        if self.mmap:
            # tables feed column backends that expect ordinary writable
            # arrays; only the count tables stay mapped
            arrays = {key: np.array(value) if isinstance(value, np.memmap) else value
                      for key, value in arrays.items()}
        return arrays_to_table(arrays)


class BundleReader(BasePartReader):
    """Read parts of a bundle archive written by :class:`BundleWriter`.

    With ``mmap=True`` the NPZ parts are not copied into memory: their byte
    ranges are recorded and :meth:`arrays` hands out read-only
    ``np.memmap`` views of the bundle file (:mod:`repro.store.npymap`), so
    the n-gram count tables are backed by shared page cache instead of
    per-process heap copies.  Entries that cannot be mapped — the deflated
    NPZ entries of compressed bundles, object-dtype arrays — fall back to
    the eager read transparently; the manifest records nothing about the
    knob, it is purely a reader-side choice.

    With ``verify=True`` (the default) every part is re-hashed against the
    manifest's sizes and SHA-256 content digest before any part is
    decoded, raising :class:`BundleIntegrityError` on the first mismatch —
    a truncated copy or a flipped bit is caught at load time, not as a
    corrupt model downstream.

    Bundles whose ``format_version`` predates :data:`BUNDLE_FORMAT_VERSION`
    are migrated in memory on read through the selector-registered
    migrations of :mod:`repro.registry.migrations` (integrity is verified
    against the on-disk manifest *before* migrating; ``mmap`` is moot for
    migrated bundles, which are always materialized).
    """

    def __init__(self, path, mmap: bool = False, verify: bool = True):
        self.path = Path(path)
        self.mmap = bool(mmap)
        if not self.path.is_file():
            raise StoreError("no bundle at {}".format(self.path))
        if faults.check("bundle_truncated") is not None:
            raise StoreError(
                "injected truncated bundle read at {}".format(self.path))
        self._npz_spans: dict[str, tuple[int, int]] = {}
        try:
            with zipfile.ZipFile(self.path) as archive:
                names = archive.namelist()
                if MANIFEST_NAME not in names:
                    raise StoreError("bundle at {} has no manifest".format(self.path))
                try:
                    manifest = json.loads(archive.read(MANIFEST_NAME).decode("utf-8"))
                except (ValueError, UnicodeDecodeError) as error:
                    raise StoreError("bundle manifest at {} is corrupt: {}".format(
                        self.path, error)) from None
                version = manifest.get("format_version")
                if version is None or version > BUNDLE_FORMAT_VERSION:
                    raise StoreError(
                        "bundle format version {} is newer than supported version {}".format(
                            version, BUNDLE_FORMAT_VERSION))
                legacy = version < BUNDLE_FORMAT_VERSION
                part_names = [name for name in names if name != MANIFEST_NAME]
                if legacy or verify or not self.mmap:
                    raw = {name: archive.read(name) for name in part_names}
                else:
                    raw = {}
                if verify:
                    verify_parts(manifest, raw, self.path)
                if legacy:
                    from repro.registry.migrations import apply_migrations

                    manifest, raw, _ = apply_migrations(manifest, raw)
                    self._parts = raw
                elif self.mmap:
                    # keep only the byte ranges of the mappable NPZ parts;
                    # the eager bytes read for verification are dropped
                    self._parts = {}
                    for info in archive.infolist():
                        if info.filename == MANIFEST_NAME:
                            continue
                        stored = info.compress_type == zipfile.ZIP_STORED
                        if stored and info.filename.endswith(".npz"):
                            self._npz_spans[info.filename] = (info.header_offset,
                                                              info.file_size)
                        else:
                            self._parts[info.filename] = (
                                raw[info.filename] if raw
                                else archive.read(info.filename))
                else:
                    self._parts = raw
        except zipfile.BadZipFile as error:
            raise StoreError("not a bundle archive: {} ({})".format(self.path, error)) from None
        except (OSError, EOFError) as error:
            # a bundle cut short mid-transfer can fail inside entry reads
            # rather than at the central-directory check above
            raise StoreError("truncated or unreadable bundle at {}: {}".format(
                self.path, error)) from None
        self.manifest = manifest

    def _part(self, name: str) -> bytes:
        try:
            return self._parts[name]
        except KeyError:
            raise StoreError("bundle at {} is missing part {!r}".format(self.path, name)) from None

    def arrays(self, name: str) -> dict:
        span = self._npz_spans.get(name + ".npz")
        if span is not None:
            return npymap.map_npz(self.path, *span)
        return super().arrays(name)


class MemoryBundleReader(BasePartReader):
    """A reader over an in-memory ``(manifest, parts)`` pair.

    Used by the migration machinery (transform parts, read the result
    without touching disk) and by the registry when loading a
    pre-migration artifact.
    """

    def __init__(self, manifest: dict, parts: dict[str, bytes], verify: bool = False):
        self.path = "<memory>"
        self.mmap = False
        if verify:
            verify_parts(manifest, parts, self.path)
        self.manifest = manifest
        self._parts = dict(parts)

    def _part(self, name: str) -> bytes:
        try:
            return self._parts[name]
        except KeyError:
            raise StoreError("in-memory bundle is missing part {!r}".format(name)) from None


def read_manifest(path) -> dict:
    """The manifest of the bundle at *path* (format version checked).

    A metadata peek, so integrity verification is skipped — loaders verify.
    """
    return BundleReader(path, verify=False).manifest


# ---------------------------------------------------------------------------
# config reconstruction (frozen dataclasses from typed dicts)
# ---------------------------------------------------------------------------

def _build_model_config(d: dict) -> ModelConfig:
    return ModelConfig(**d)


def _build_fine_tune_config(d: dict) -> FineTuneConfig:
    return FineTuneConfig(**{**d, "model": _build_model_config(d["model"])})


def _build_great_config(d: dict) -> GReaTConfig:
    return GReaTConfig(
        fine_tune=_build_fine_tune_config(d["fine_tune"]),
        sampler=SamplerConfig(**d["sampler"]),
        encoder=EncoderConfig(**d["encoder"]),
        sampling_strategy=d["sampling_strategy"],
        permutation_passes=d["permutation_passes"],
        fallback_to_training_rows=d["fallback_to_training_rows"],
        seed=d["seed"],
    )


def _build_parent_child_config(d: dict) -> ParentChildConfig:
    return ParentChildConfig(
        parent=_build_great_config(d["parent"]),
        child=_build_great_config(d["child"]),
        children_per_parent=d["children_per_parent"],
        seed=d["seed"],
    )


def _build_multitable_config(d: dict):
    from repro.schema.inference import InferenceConfig
    from repro.schema.multitable import MultiTableConfig

    return MultiTableConfig(
        backbone=_build_great_config(d["backbone"]),
        children_per_parent=d["children_per_parent"],
        key_format=d["key_format"],
        inference=InferenceConfig(**d["inference"]),
        seed=d["seed"],
    )


# ---------------------------------------------------------------------------
# tokenizer / model parts
# ---------------------------------------------------------------------------

def _add_tokenizer(writer: BundleWriter, prefix: str, tokenizer: WordTokenizer) -> None:
    blob, offsets = _encode_strings(tokenizer.vocabulary.id_to_token)
    writer.add_arrays(prefix + "vocabulary", {"blob": blob, "offsets": offsets})


def _read_tokenizer(reader: BundleReader, prefix: str, lowercase: bool) -> WordTokenizer:
    arrays = reader.arrays(prefix + "vocabulary")
    tokens = _decode_strings(arrays["blob"], arrays["offsets"])
    vocabulary = Vocabulary(
        token_to_id={token: index for index, token in enumerate(tokens)},
        id_to_token=tokens,
    )
    return WordTokenizer(lowercase=lowercase, vocabulary=vocabulary)


def _unpack_context_keys(keys: np.ndarray, k: int, vocab_size: int) -> np.ndarray:
    digits = np.empty((keys.size, k), dtype=np.int64)
    remainder = keys.copy()
    for j in range(k - 1, -1, -1):
        digits[:, j] = remainder % vocab_size
        remainder //= vocab_size
    return digits


def _add_model(writer: BundleWriter, prefix: str, model: NGramLanguageModel) -> None:
    """Persist a trained model as unpacked integer n-gram count tables."""
    if not model.is_trained:
        raise StoreError("can only persist a trained model")
    config = model.config
    order = config.order
    vocab_size = len(model.tokenizer.vocabulary)
    arrays: dict[str, np.ndarray] = {}
    counts = getattr(model, "_array_counts", None)
    if counts is not None:
        for k in range(1, order):
            arrays["k{}_ctx".format(k)] = _unpack_context_keys(counts.keys[k], k, vocab_size)
            arrays["k{}_row_ptr".format(k)] = counts.row_ptr[k]
            arrays["k{}_tokens".format(k)] = counts.tokens[k]
            arrays["k{}_counts".format(k)] = counts.counts[k]
            arrays["k{}_totals".format(k)] = counts.totals[k]
        arrays["k0_tokens"] = counts.tokens0
        arrays["k0_counts"] = counts.counts0
        total0 = int(counts.total0)
    else:
        model._ensure_dict_tables()
        for k in range(1, order):
            items = sorted(model._counts[k].items())  # lexicographic == packed order
            contexts = np.asarray([context for context, _ in items],
                                  dtype=np.int64).reshape(len(items), k)
            row_ptr = np.zeros(len(items) + 1, dtype=np.int64)
            token_chunks: list[np.ndarray] = []
            count_chunks: list[np.ndarray] = []
            totals = np.empty(len(items), dtype=np.int64)
            for row, (context, counter) in enumerate(items):
                ordered = sorted(counter.items())
                token_chunks.append(np.fromiter((t for t, _ in ordered), dtype=np.int64,
                                                count=len(ordered)))
                count_chunks.append(np.fromiter((c for _, c in ordered), dtype=np.int64,
                                                count=len(ordered)))
                row_ptr[row + 1] = row_ptr[row] + len(ordered)
                totals[row] = int(model._context_totals[k].get(context, 0))
            arrays["k{}_ctx".format(k)] = contexts
            arrays["k{}_row_ptr".format(k)] = row_ptr
            arrays["k{}_tokens".format(k)] = (np.concatenate(token_chunks)
                                              if token_chunks else np.empty(0, np.int64))
            arrays["k{}_counts".format(k)] = (np.concatenate(count_chunks)
                                              if count_chunks else np.empty(0, np.int64))
            arrays["k{}_totals".format(k)] = totals
        ordered = sorted(model._counts[0].get((), {}).items())
        arrays["k0_tokens"] = np.fromiter((t for t, _ in ordered), dtype=np.int64,
                                          count=len(ordered))
        arrays["k0_counts"] = np.fromiter((c for _, c in ordered), dtype=np.int64,
                                          count=len(ordered))
        total0 = int(model._context_totals[0].get((), 0))
    writer.add_json(prefix + "model", {
        "config": asdict(config),
        "vocab_size": vocab_size,
        "trained_sentences": model.trained_sentences,
        "total0": total0,
    })
    writer.add_arrays(prefix + "model_arrays", arrays)


def _read_model(reader: BundleReader, prefix: str,
                tokenizer: WordTokenizer) -> NGramLanguageModel:
    header = reader.json(prefix + "model")
    config = _build_model_config(header["config"])
    vocab_size = header["vocab_size"]
    if vocab_size != len(tokenizer.vocabulary):
        raise StoreError(
            "model artifact was trained with vocabulary size {}, bundle vocabulary has {}".format(
                vocab_size, len(tokenizer.vocabulary)
            )
        )
    arrays = reader.arrays(prefix + "model_arrays")
    order = config.order
    packable = vocab_size >= 1 and max(vocab_size, 2) ** order < _MAX_PACKED_KEY
    if packable:
        keys: dict = {}
        row_ptr: dict = {}
        tokens: dict = {}
        counts: dict = {}
        totals: dict = {}
        for k in range(1, order):
            contexts = arrays["k{}_ctx".format(k)].reshape(-1, k)
            packed = np.zeros(contexts.shape[0], dtype=np.int64)
            for j in range(k):
                packed = packed * vocab_size + contexts[:, j]
            keys[k] = packed
            row_ptr[k] = arrays["k{}_row_ptr".format(k)]
            tokens[k] = arrays["k{}_tokens".format(k)]
            counts[k] = arrays["k{}_counts".format(k)]
            totals[k] = arrays["k{}_totals".format(k)]
        corpus_counts = CorpusCounts(
            order=order, vocab_size=vocab_size, keys=keys, row_ptr=row_ptr,
            tokens=tokens, counts=counts, totals=totals,
            tokens0=arrays["k0_tokens"], counts0=arrays["k0_counts"],
            total0=header["total0"],
        )
        return ArrayTrainedNGramModel(tokenizer, config, corpus_counts,
                                      trained_sentences=header["trained_sentences"])
    # vocabulary too large for packed int64 keys: rebuild the dict tables
    from collections import Counter

    model = NGramLanguageModel(tokenizer, config)
    for k in range(1, order):
        contexts = arrays["k{}_ctx".format(k)].reshape(-1, k).tolist()
        row_ptr = arrays["k{}_row_ptr".format(k)].tolist()
        token_list = arrays["k{}_tokens".format(k)].tolist()
        count_list = arrays["k{}_counts".format(k)].tolist()
        total_list = arrays["k{}_totals".format(k)].tolist()
        for row, context in enumerate(contexts):
            lo, hi = row_ptr[row], row_ptr[row + 1]
            key = tuple(context)
            model._counts[k][key] = Counter(dict(zip(token_list[lo:hi], count_list[lo:hi])))
            model._context_totals[k][key] = total_list[row]
    tokens0 = arrays["k0_tokens"].tolist()
    counts0 = arrays["k0_counts"].tolist()
    if tokens0:
        model._counts[0][()] = Counter(dict(zip(tokens0, counts0)))
        model._context_totals[0][()] = int(header["total0"])
    model._trained_sentences = header["trained_sentences"]
    return model


# ---------------------------------------------------------------------------
# GReaT synthesizer parts
# ---------------------------------------------------------------------------

def _add_great(writer: BundleWriter, prefix: str, synth: GReaTSynthesizer) -> None:
    if not synth.is_fitted:
        raise StoreError("can only persist a fitted synthesizer")
    decoder = synth.decoder
    writer.add_json(prefix + "config", asdict(synth.config))
    writer.add_json(prefix + "state", {
        "perplexity_trace": list(synth.perplexity_trace),
        "training_engine": synth.training_engine,
        "lowercase": synth.model.tokenizer.lowercase,
    })
    writer.add_json(prefix + "decoder", {
        "columns": list(decoder.columns),
        "dtypes": dict(decoder.dtypes),
        "pair_separator": decoder.pair_separator,
        "key_value_separator": decoder.key_value_separator,
        "missing_token": decoder.missing_token,
    })
    _add_tokenizer(writer, prefix, synth.model.tokenizer)
    _add_model(writer, prefix, synth.model)
    writer.add_table(prefix + "training_table", synth._training_table)


def _read_great(reader: BundleReader, prefix: str) -> GReaTSynthesizer:
    config = _build_great_config(reader.json(prefix + "config"))
    state = reader.json(prefix + "state")
    tokenizer = _read_tokenizer(reader, prefix, lowercase=state["lowercase"])
    model = _read_model(reader, prefix, tokenizer)
    decoder_state = reader.json(prefix + "decoder")
    decoder = TextualDecoder(
        decoder_state["columns"],
        dtypes=decoder_state["dtypes"],
        pair_separator=decoder_state["pair_separator"],
        key_value_separator=decoder_state["key_value_separator"],
        missing_token=decoder_state["missing_token"],
    )
    return GReaTSynthesizer._from_fitted_state(
        config,
        training_table=reader.table(prefix + "training_table"),
        model=model,
        decoder=decoder,
        perplexity_trace=state["perplexity_trace"],
        training_engine=state["training_engine"],
    )


# ---------------------------------------------------------------------------
# parent/child synthesizer parts
# ---------------------------------------------------------------------------

def _add_parent_child(writer: BundleWriter, prefix: str,
                      synth: ParentChildSynthesizer) -> None:
    if not synth.is_fitted:
        raise StoreError("can only persist a fitted synthesizer")
    writer.add_json(prefix + "config", asdict(synth.config))
    writer.add_json(prefix + "state", {
        "subject_column": synth._subject_column,
        "parent_columns": list(synth._parent_columns),
        "child_columns": list(synth._child_columns),
        "children_per_subject": list(synth._children_per_subject),
    })
    _add_great(writer, prefix + "parent.", synth._parent_synth)
    _add_great(writer, prefix + "child.", synth._child_synth)


def _read_parent_child(reader: BundleReader, prefix: str) -> ParentChildSynthesizer:
    config = _build_parent_child_config(reader.json(prefix + "config"))
    state = reader.json(prefix + "state")
    return ParentChildSynthesizer._from_fitted_state(
        config,
        parent_synth=_read_great(reader, prefix + "parent."),
        child_synth=_read_great(reader, prefix + "child."),
        subject_column=state["subject_column"],
        parent_columns=state["parent_columns"],
        child_columns=state["child_columns"],
        children_per_subject=state["children_per_subject"],
    )


# ---------------------------------------------------------------------------
# multi-table synthesizer parts
# ---------------------------------------------------------------------------

def _add_multitable(writer: BundleWriter, prefix: str, synth) -> None:
    if not synth.is_fitted:
        raise StoreError("can only persist a fitted synthesizer")
    graph = synth.graph
    writer.add_json(prefix + "graph", graph.to_dict())
    writer.add_json(prefix + "config", asdict(synth.config))
    writer.add_json(prefix + "state", {
        "training_rows": dict(synth._training_rows),
        "roots": sorted(synth._root_synths),
        "edges": sorted(synth._edges),
    })
    for name in sorted(synth._root_synths):
        _add_great(writer, "{}root.{}.".format(prefix, name), synth._root_synths[name])
    for name in sorted(synth._edges):
        edge = synth._edges[name]
        edge_prefix = "{}edge.{}.".format(prefix, name)
        writer.add_json(edge_prefix + "edge_state", {
            "fk": edge.fk.to_dict(),
            "children_per_parent": edge.children_per_parent,
            "parent_features": list(edge._parent_features),
            "child_features": list(edge._child_features),
            "prompt_names": dict(edge._prompt_names),
            "counts": list(edge._children_per_parent_counts),
        })
        _add_great(writer, edge_prefix, edge._synth)


def _read_multitable(reader: BundleReader, prefix: str):
    from repro.schema.graph import ForeignKey, SchemaGraph
    from repro.schema.multitable import EdgeSynthesizer, MultiTableSynthesizer

    graph = SchemaGraph.from_dict(reader.json(prefix + "graph"))
    config = _build_multitable_config(reader.json(prefix + "config"))
    state = reader.json(prefix + "state")
    root_synths = {
        name: _read_great(reader, "{}root.{}.".format(prefix, name))
        for name in state["roots"]
    }
    edges = {}
    for name in state["edges"]:
        edge_prefix = "{}edge.{}.".format(prefix, name)
        edge_state = reader.json(edge_prefix + "edge_state")
        edges[name] = EdgeSynthesizer._from_fitted_state(
            config.backbone,
            fk=ForeignKey.from_dict(edge_state["fk"]),
            children_per_parent=edge_state["children_per_parent"],
            synth=_read_great(reader, edge_prefix),
            parent_features=edge_state["parent_features"],
            child_features=edge_state["child_features"],
            prompt_names=edge_state["prompt_names"],
            counts=edge_state["counts"],
        )
    return MultiTableSynthesizer._from_fitted_state(
        config, graph, root_synths=root_synths, edges=edges,
        training_rows=state["training_rows"],
    )


# ---------------------------------------------------------------------------
# enhancer parts
# ---------------------------------------------------------------------------

def _add_enhancer(writer: BundleWriter, prefix: str,
                  enhancer: DataSemanticEnhancer) -> None:
    mapping = enhancer.mapping  # raises before fit
    forward = {column: dict(mapping.mapping_for(column).forward)
               for column in mapping.columns}
    writer.add_json(prefix + "enhancer", {
        "config": asdict(enhancer.config),
        "forward": forward,
        "special_columns": list(enhancer._special_columns),
    })


def _read_enhancer(reader: BundleReader, prefix: str) -> DataSemanticEnhancer:
    state = reader.json(prefix + "enhancer")
    config_dict = dict(state["config"])
    config = EnhancerConfig(**config_dict)
    enhancer = DataSemanticEnhancer(config)
    mapping = MappingSystem()
    for column, forward in state["forward"].items():
        mapping.add_column(column, forward)
    enhancer._mapping = mapping
    enhancer._special_columns = list(state["special_columns"])
    return enhancer


# ---------------------------------------------------------------------------
# public save/load entry points
# ---------------------------------------------------------------------------

def _engine_meta(fine_tune_engine: str, sampler_engine: str) -> dict:
    return {
        "training_engine": resolve_training_engine(fine_tune_engine),
        "generation_engine": resolve_engine_kind(sampler_engine),
    }


def writer_for_great_synthesizer(synth: GReaTSynthesizer,
                                 compress: bool = False) -> BundleWriter:
    """Build the bundle writer for a fitted GReaT synthesizer."""
    if not synth.is_fitted:
        raise StoreError("can only persist a fitted synthesizer")
    writer = BundleWriter("great_synthesizer", compress=compress, meta={
        "seed": synth.config.seed,
        "columns": synth._training_table.dtypes(),
        **_engine_meta(synth.config.fine_tune.engine, synth.config.sampler.engine),
    })
    _add_great(writer, "", synth)
    return writer


def save_great_synthesizer(synth: GReaTSynthesizer, path, compress: bool = False) -> str:
    """Persist a fitted GReaT synthesizer bundle; returns the digest."""
    return writer_for_great_synthesizer(synth, compress=compress).write(path)


def load_great_synthesizer(path, mmap: bool = False,
                           verify: bool = True) -> GReaTSynthesizer:
    reader = BundleReader(path, mmap=mmap, verify=verify)
    if reader.kind != "great_synthesizer":
        raise StoreError("bundle at {} is a {!r}, not a GReaT synthesizer".format(
            path, reader.kind))
    return _read_great(reader, "")


def writer_for_parent_child(synth: ParentChildSynthesizer,
                            compress: bool = False) -> BundleWriter:
    """Build the bundle writer for a fitted parent/child synthesizer."""
    if not synth.is_fitted:
        raise StoreError("can only persist a fitted synthesizer")
    writer = BundleWriter("parent_child_synthesizer", compress=compress, meta={
        "seed": synth.config.seed,
        "subject_column": synth._subject_column,
        **_engine_meta(synth.config.parent.fine_tune.engine,
                       synth.config.parent.sampler.engine),
    })
    _add_parent_child(writer, "", synth)
    return writer


def save_parent_child(synth: ParentChildSynthesizer, path, compress: bool = False) -> str:
    """Persist a fitted parent/child synthesizer bundle; returns the digest."""
    return writer_for_parent_child(synth, compress=compress).write(path)


def load_parent_child(path, mmap: bool = False,
                      verify: bool = True) -> ParentChildSynthesizer:
    reader = BundleReader(path, mmap=mmap, verify=verify)
    if reader.kind != "parent_child_synthesizer":
        raise StoreError("bundle at {} is a {!r}, not a parent/child synthesizer".format(
            path, reader.kind))
    return _read_parent_child(reader, "")


def writer_for_fitted_pipeline(fitted, compress: bool = False) -> BundleWriter:
    """Build the bundle writer for a fitted flat pipeline."""
    writer = BundleWriter("fitted_pipeline", compress=compress, meta={
        "pipeline": fitted.name,
        "seed": fitted.config.seed,
        "columns": fitted.original_flat.dtypes(),
        **_engine_meta(fitted.config.training_engine, fitted.config.generation_engine),
    })
    writer.add_json("pipeline", {
        "name": fitted.name,
        "subject_column": fitted.subject_column,
        "n_training_subjects": fitted.n_training_subjects,
        "n_synthesizers": len(fitted.synthesizers),
        "details": dict(fitted.details),
    })
    writer.add_json("pipeline_config", asdict(fitted.config))
    _add_enhancer(writer, "", fitted.enhancer)
    writer.add_table("original_flat", fitted.original_flat)
    for index, synth in enumerate(fitted.synthesizers):
        _add_parent_child(writer, "synth{}.".format(index), synth)
    return writer


def save_fitted_pipeline(fitted, path, compress: bool = False) -> str:
    """Persist a :class:`repro.pipelines.base.FittedPipeline`; returns the digest."""
    return writer_for_fitted_pipeline(fitted, compress=compress).write(path)


def _read_fitted_pipeline(reader):
    from repro.connecting.connector import ConnectorConfig
    from repro.pipelines.base import FittedPipeline
    from repro.pipelines.config import PipelineConfig

    state = reader.json("pipeline")
    config_dict = reader.json("pipeline_config")
    config = PipelineConfig(**{
        **config_dict,
        "enhancer": EnhancerConfig(**config_dict["enhancer"]),
        "connector": ConnectorConfig(**config_dict["connector"]),
    })
    synthesizers = [
        _read_parent_child(reader, "synth{}.".format(index))
        for index in range(state["n_synthesizers"])
    ]
    fitted = FittedPipeline(
        name=state["name"],
        config=config,
        subject_column=state["subject_column"],
        enhancer=_read_enhancer(reader, ""),
        synthesizers=synthesizers,
        original_flat=reader.table("original_flat"),
        n_training_subjects=state["n_training_subjects"],
        details=state["details"],
    )
    return fitted, reader.digest


def load_fitted_pipeline(path, mmap: bool = False, verify: bool = True):
    """Load a fitted pipeline bundle; returns ``(fitted, digest)``."""
    reader = BundleReader(path, mmap=mmap, verify=verify)
    if reader.kind != "fitted_pipeline":
        raise StoreError("bundle at {} is a {!r}, not a fitted pipeline".format(
            path, reader.kind))
    return _read_fitted_pipeline(reader)


def writer_for_multitable(synth, compress: bool = False) -> BundleWriter:
    """Build the bundle writer for a fitted multi-table synthesizer."""
    if not synth.is_fitted:
        raise StoreError("can only persist a fitted synthesizer")
    backbone = synth.config.backbone
    writer = BundleWriter("multitable_synthesizer", compress=compress, meta={
        "seed": synth.config.seed,
        "tables": synth.graph.table_names,
        "foreign_keys": [fk.edge_name for fk in synth.graph.foreign_keys],
        **_engine_meta(backbone.fine_tune.engine, backbone.sampler.engine),
    })
    _add_multitable(writer, "", synth)
    return writer


def save_multitable(synth, path, compress: bool = False) -> str:
    """Persist a fitted :class:`repro.schema.multitable.MultiTableSynthesizer`."""
    return writer_for_multitable(synth, compress=compress).write(path)


def load_multitable(path, mmap: bool = False, verify: bool = True):
    """Load a fitted multi-table synthesizer bundle."""
    reader = BundleReader(path, mmap=mmap, verify=verify)
    if reader.kind != "multitable_synthesizer":
        raise StoreError("bundle at {} is a {!r}, not a multi-table synthesizer".format(
            path, reader.kind))
    return _read_multitable(reader, "")


def writer_for_multitable_pipeline(fitted, compress: bool = False) -> BundleWriter:
    """Build the bundle writer for a fitted multitable pipeline."""
    backbone = fitted.synthesizer.config.backbone
    writer = BundleWriter("multitable_pipeline", compress=compress, meta={
        "pipeline": fitted.name,
        "seed": fitted.config.seed,
        "tables": fitted.graph.table_names,
        "foreign_keys": [fk.edge_name for fk in fitted.graph.foreign_keys],
        **_engine_meta(backbone.fine_tune.engine, backbone.sampler.engine),
    })
    writer.add_json("pipeline", {"name": fitted.name})
    writer.add_json("pipeline_config", asdict(fitted.config))
    _add_multitable(writer, "synth.", fitted.synthesizer)
    return writer


def save_multitable_pipeline(fitted, path, compress: bool = False) -> str:
    """Persist a :class:`repro.pipelines.multitable.FittedMultiTablePipeline`."""
    return writer_for_multitable_pipeline(fitted, compress=compress).write(path)


def _read_multitable_pipeline(reader):
    from repro.pipelines.multitable import (
        FittedMultiTablePipeline,
        MultiTablePipelineConfig,
    )
    from repro.schema.inference import InferenceConfig

    state = reader.json("pipeline")
    config_dict = reader.json("pipeline_config")
    config = MultiTablePipelineConfig(**{
        **config_dict,
        "inference": InferenceConfig(**config_dict["inference"]),
    })
    fitted = FittedMultiTablePipeline(
        name=state["name"],
        config=config,
        synthesizer=_read_multitable(reader, "synth."),
    )
    return fitted, reader.digest


def load_multitable_pipeline(path, mmap: bool = False, verify: bool = True):
    """Load a fitted multitable-pipeline bundle; returns ``(fitted, digest)``."""
    reader = BundleReader(path, mmap=mmap, verify=verify)
    if reader.kind != "multitable_pipeline":
        raise StoreError("bundle at {} is a {!r}, not a multitable pipeline".format(
            path, reader.kind))
    return _read_multitable_pipeline(reader)


def bundle_writer_for(obj, compress: bool = False) -> BundleWriter:
    """The bundle writer for any persistable fitted object (type-dispatched).

    The registry's save path: it enumerates ``writer.parts`` into the
    content-addressed store instead of writing one archive file.
    """
    if isinstance(obj, GReaTSynthesizer):
        return writer_for_great_synthesizer(obj, compress=compress)
    if isinstance(obj, ParentChildSynthesizer):
        return writer_for_parent_child(obj, compress=compress)
    from repro.pipelines.base import FittedPipeline

    if isinstance(obj, FittedPipeline):
        return writer_for_fitted_pipeline(obj, compress=compress)
    from repro.pipelines.multitable import FittedMultiTablePipeline

    if isinstance(obj, FittedMultiTablePipeline):
        return writer_for_multitable_pipeline(obj, compress=compress)
    from repro.schema.multitable import MultiTableSynthesizer

    if isinstance(obj, MultiTableSynthesizer):
        return writer_for_multitable(obj, compress=compress)
    raise StoreError("no bundle serializer for {!r}".format(type(obj).__name__))


def read_bundle_object(reader):
    """Load whatever fitted object *reader* (any :class:`BasePartReader`) holds.

    Returns the loaded object; for fitted pipelines this is the
    ``(fitted, digest)`` pair of :func:`load_fitted_pipeline` /
    :func:`load_multitable_pipeline`.
    """
    kind = reader.kind
    if kind == "great_synthesizer":
        return _read_great(reader, "")
    if kind == "parent_child_synthesizer":
        return _read_parent_child(reader, "")
    if kind == "fitted_pipeline":
        return _read_fitted_pipeline(reader)
    if kind == "multitable_synthesizer":
        return _read_multitable(reader, "")
    if kind == "multitable_pipeline":
        return _read_multitable_pipeline(reader)
    raise StoreError("unknown bundle kind {!r}".format(kind))


def load_bundle(path, mmap: bool = False, verify: bool = True):
    """Load whatever fitted object the bundle at *path* contains.

    Returns the loaded object; for fitted pipelines this is the
    ``(fitted, digest)`` pair of :func:`load_fitted_pipeline` /
    :func:`load_multitable_pipeline`.
    """
    return read_bundle_object(BundleReader(path, mmap=mmap, verify=verify))
