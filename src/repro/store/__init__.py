"""Artifact store: durable, versioned, pickle-free persistence.

The train-once / serve-many split needs two things the CSV layer cannot
provide: an exact binary round trip for tables (dtypes, validity masks and
dictionary codes preserved bit for bit) and durable bundles for every
fitted object in the synthesis path.  This package provides both:

* :mod:`repro.store.tablefmt` — the NPZ-backed columnar table format
  (:func:`write_table` / :func:`read_table`);
* :mod:`repro.store.bundle` — versioned single-file bundle archives for
  fitted synthesizers and whole fitted pipelines, with a manifest (format
  version, engines, seed, schema) and a content digest;
* :mod:`repro.store.stream` — streaming table sinks (chunked CSV and
  NPZ part directories) for the bounded-memory synthesis path;
* :mod:`repro.store.atomic` — write-then-rename helpers shared by every
  artifact write (and by :func:`repro.frame.io.write_csv`);
* :mod:`repro.store.codec` — the typed JSON envelope that keeps the
  formats pickle-free without losing tuples, ints-as-keys or floats.

The serving layer (:mod:`repro.serving`) loads these bundles once and
answers sampling requests without retraining.

Attributes resolve lazily (PEP 562): importing the lightweight helpers
(``repro.store.atomic``, ``repro.store.codec``) does not pull in the model
stack behind the bundle serializers.
"""

from importlib import import_module

#: public name -> defining submodule, resolved on first attribute access
_EXPORTS = {
    "atomic_path": "repro.store.atomic",
    "atomic_write_bytes": "repro.store.atomic",
    "atomic_write_text": "repro.store.atomic",
    "StoreError": "repro.store.codec",
    "TABLE_FORMAT_VERSION": "repro.store.tablefmt",
    "arrays_to_table": "repro.store.tablefmt",
    "read_table": "repro.store.tablefmt",
    "table_to_arrays": "repro.store.tablefmt",
    "write_table": "repro.store.tablefmt",
    "BUNDLE_FORMAT_VERSION": "repro.store.bundle",
    "BundleIntegrityError": "repro.store.bundle",
    "BundleReader": "repro.store.bundle",
    "BundleWriter": "repro.store.bundle",
    "MemoryBundleReader": "repro.store.bundle",
    "archive_bytes": "repro.store.bundle",
    "bundle_writer_for": "repro.store.bundle",
    "npz_bytes": "repro.store.bundle",
    "parts_digest": "repro.store.bundle",
    "read_bundle_object": "repro.store.bundle",
    "verify_parts": "repro.store.bundle",
    "load_bundle": "repro.store.bundle",
    "load_fitted_pipeline": "repro.store.bundle",
    "load_great_synthesizer": "repro.store.bundle",
    "load_multitable": "repro.store.bundle",
    "load_multitable_pipeline": "repro.store.bundle",
    "load_parent_child": "repro.store.bundle",
    "read_manifest": "repro.store.bundle",
    "save_fitted_pipeline": "repro.store.bundle",
    "save_great_synthesizer": "repro.store.bundle",
    "save_multitable": "repro.store.bundle",
    "save_multitable_pipeline": "repro.store.bundle",
    "save_parent_child": "repro.store.bundle",
    "PARTS_FORMAT_VERSION": "repro.store.stream",
    "TableSink": "repro.store.stream",
    "CsvTableSink": "repro.store.stream",
    "PartTableSink": "repro.store.stream",
    "SpoolingSink": "repro.store.stream",
    "MemorySink": "repro.store.stream",
    "iter_part_tables": "repro.store.stream",
    "read_part_table": "repro.store.stream",
    "part_table_column": "repro.store.stream",
    "part_table_num_rows": "repro.store.stream",
    "map_npz_file": "repro.store.npymap",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name):
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError("module {!r} has no attribute {!r}".format(__name__, name)) from None
    value = getattr(import_module(module_name), name)
    globals()[name] = value  # cache for subsequent lookups
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
