"""Memory-mapped views of NPZ parts inside bundle archives.

Bundle archives are written ``ZIP_STORED`` at the outer level and — when the
``compress`` knob is off — ``numpy.savez`` keeps the inner ``.npy`` entries
stored too.  Uncompressed bytes inside a stored zip sit contiguously on
disk, so an array can be mapped straight out of the bundle file with
:class:`numpy.memmap` instead of being copied into anonymous memory: the
kernel page cache then shares one physical copy of the n-gram count tables
across every process serving the same bundle.

The helpers here locate those byte ranges.  A zip local file header is 30
bytes plus a variable-length name and extra field, so the payload of entry
*e* starts at ``e.header_offset + 30 + len(name) + len(extra)`` — the extra
field length in the *local* header can differ from the central directory's
copy, so it is read from the local header itself.  Inside the payload, the
``.npy`` header (magic, version, dtype/shape dict) is parsed with
:mod:`numpy.lib.format` and the array body mapped from the position the
parser stops at.

Anything that cannot be mapped — deflated entries (compressed bundles),
object-dtype arrays, empty arrays — falls back to the ordinary eager read,
so :func:`map_npz` always succeeds and simply maps as much as it can.
"""

from __future__ import annotations

import io
import struct
import zipfile

import numpy as np
from numpy.lib import format as npy_format

from repro.store.codec import StoreError

#: Fixed-size prefix of a zip local file header (APPNOTE 4.3.7).
_LOCAL_HEADER = struct.Struct("<4s5H3I2H")
_LOCAL_SIGNATURE = b"PK\x03\x04"


class _FileWindow(io.RawIOBase):
    """Read-only file-like view of a byte range of an open file.

    ``zipfile.ZipFile`` needs a seekable stream; this presents the payload
    of one outer archive entry as a standalone file so the inner NPZ
    archive can be walked without copying it out.
    """

    def __init__(self, stream, start: int, size: int):
        self._stream = stream
        self._start = start
        self._size = size
        self._pos = 0

    def readable(self) -> bool:
        return True

    def seekable(self) -> bool:
        return True

    def seek(self, offset: int, whence: int = io.SEEK_SET) -> int:
        if whence == io.SEEK_SET:
            self._pos = offset
        elif whence == io.SEEK_CUR:
            self._pos += offset
        elif whence == io.SEEK_END:
            self._pos = self._size + offset
        else:
            raise ValueError("unsupported whence {!r}".format(whence))
        return self._pos

    def tell(self) -> int:
        return self._pos

    def read(self, size: int = -1):
        remaining = max(self._size - self._pos, 0)
        if size is None or size < 0 or size > remaining:
            size = remaining
        self._stream.seek(self._start + self._pos)
        data = self._stream.read(size)
        self._pos += len(data)
        return data


def data_offset(stream, header_offset: int, base: int = 0) -> int:
    """Absolute file offset of the payload of a stored zip entry.

    *header_offset* is the entry's local-header offset relative to *base*
    (the archive's own start within *stream*).
    """
    stream.seek(base + header_offset)
    header = stream.read(_LOCAL_HEADER.size)
    if len(header) != _LOCAL_HEADER.size:
        raise StoreError("truncated zip local header at offset {}".format(base + header_offset))
    fields = _LOCAL_HEADER.unpack(header)
    if fields[0] != _LOCAL_SIGNATURE:
        raise StoreError("bad zip local header at offset {}".format(base + header_offset))
    name_length, extra_length = fields[-2], fields[-1]
    return base + header_offset + _LOCAL_HEADER.size + name_length + extra_length


def _map_entry(path, stream, start: int):
    """Memory-map one stored ``.npy`` payload, or ``None`` when not mappable."""
    stream.seek(start)
    try:
        version = npy_format.read_magic(stream)
        if version == (1, 0):
            shape, fortran, dtype = npy_format.read_array_header_1_0(stream)
        elif version == (2, 0):
            shape, fortran, dtype = npy_format.read_array_header_2_0(stream)
        else:
            return None
    except ValueError:
        return None
    if dtype.hasobject or dtype.itemsize == 0:
        return None
    order = "F" if fortran else "C"
    if 0 in shape:
        return np.empty(shape, dtype=dtype, order=order)
    return np.memmap(path, dtype=dtype, mode="r", offset=stream.tell(),
                     shape=shape, order=order)


def map_npz_file(path) -> dict:
    """Load a standalone ``.npz`` file, memory-mapping what it can.

    The spill-file counterpart of :func:`map_npz`: stored plain-dtype
    entries come back as read-only ``np.memmap`` views of the file (one
    page-cache copy however many readers), deflated or object entries are
    read eagerly.  Written for the streaming path's FK-key re-reads, where
    spilled tables may dwarf RAM.
    """
    arrays: dict = {}
    with open(path, "rb") as stream:
        with zipfile.ZipFile(stream) as archive:
            for info in archive.infolist():
                name = info.filename
                if not name.endswith(".npy"):
                    continue
                key = name[: -len(".npy")]
                mapped = None
                if info.compress_type == zipfile.ZIP_STORED:
                    mapped = _map_entry(path, stream, data_offset(stream, info.header_offset))
                if mapped is None:
                    with archive.open(name) as entry:
                        mapped = npy_format.read_array(io.BytesIO(entry.read()),
                                                       allow_pickle=False)
                arrays[key] = mapped
    return arrays


def map_npz(path, header_offset: int, size: int) -> dict:
    """Load the NPZ part stored at *header_offset* of the bundle at *path*.

    Returns a ``name -> ndarray`` mapping like ``BundleReader.arrays``.
    Stored plain-dtype entries come back as read-only ``np.memmap`` views
    of the bundle file; everything else (deflated entries of compressed
    bundles, object dtypes) is read eagerly.
    """
    arrays: dict = {}
    with open(path, "rb") as stream:
        start = data_offset(stream, header_offset)
        with zipfile.ZipFile(_FileWindow(stream, start, size)) as inner:
            for info in inner.infolist():
                name = info.filename
                if not name.endswith(".npy"):
                    continue
                key = name[: -len(".npy")]
                mapped = None
                if info.compress_type == zipfile.ZIP_STORED:
                    mapped = _map_entry(path, stream,
                                        data_offset(stream, info.header_offset, base=start))
                if mapped is None:
                    with inner.open(name) as entry:
                        mapped = npy_format.read_array(io.BytesIO(entry.read()),
                                                       allow_pickle=False)
                arrays[key] = mapped
    return arrays
