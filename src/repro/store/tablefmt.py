"""Binary columnar table format (NPZ-backed).

CSV round-trips lose information: dtypes are re-inferred from text, the
``"1_000"`` class of cells is ambiguous, and dictionary encodings are
flattened.  This module persists a :class:`~repro.frame.table.Table`
losslessly as a single ``.npz`` file holding exactly the arrays the storage
backends already keep in memory:

* ``numeric`` columns — the typed ndarray plus its validity mask;
* ``categorical`` columns — the int64 code array plus the category list in
  first-seen order (stored as UTF-8 bytes + offsets, so embedded NULs and
  all of Unicode survive);
* everything else (``mixed``/``empty``/non-string categories) — a tagged
  scalar encoding (one type tag per row plus parallel int/float/string
  arrays), the exact object-backend fallback.

A JSON schema travels inside the archive (entry ``__schema__``) recording
the format version, column names, logical dtypes and per-column storage, so
the file is self-describing and the reconstruction restores the same
backend representation bit for bit — dtypes, validity masks and dictionary
codes included.  Writes are atomic (temp file + ``os.replace``).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.frame.backend import CategoricalBackend, NumericBackend, ObjectBackend
from repro.frame.column import Column
from repro.frame.table import Table
from repro.store.atomic import atomic_path
from repro.store.codec import StoreError

#: Version of the on-disk table layout; bumped on incompatible changes.
TABLE_FORMAT_VERSION = 1

_SCHEMA_KEY = "__schema__"

# tags of the object-fallback scalar encoding
_TAG_NONE, _TAG_BOOL, _TAG_INT, _TAG_FLOAT, _TAG_STR = 0, 1, 2, 3, 4


# ---------------------------------------------------------------------------
# string lists as UTF-8 bytes + offsets (exact for every Python str)
# ---------------------------------------------------------------------------

def _encode_strings(strings) -> tuple[np.ndarray, np.ndarray]:
    blobs = [s.encode("utf-8") for s in strings]
    offsets = np.zeros(len(blobs) + 1, dtype=np.int64)
    np.cumsum([len(b) for b in blobs], out=offsets[1:])
    payload = np.frombuffer(b"".join(blobs), dtype=np.uint8) if blobs else np.empty(0, np.uint8)
    return payload, offsets


def _decode_strings(payload: np.ndarray, offsets: np.ndarray) -> list[str]:
    raw = payload.tobytes()
    bounds = offsets.tolist()
    return [raw[bounds[i]:bounds[i + 1]].decode("utf-8") for i in range(len(bounds) - 1)]


# ---------------------------------------------------------------------------
# column encodings
# ---------------------------------------------------------------------------

def _encode_object_column(values: list, prefix: str, arrays: dict) -> None:
    """Tagged scalar encoding of an object-backed value list."""
    n = len(values)
    tags = np.zeros(n, dtype=np.uint8)
    ints = np.zeros(n, dtype=np.int64)
    floats = np.zeros(n, dtype=np.float64)
    strings = [""] * n
    for i, value in enumerate(values):
        if value is None:
            continue
        if isinstance(value, bool):
            tags[i] = _TAG_BOOL
            ints[i] = int(value)
        elif isinstance(value, int):
            tags[i] = _TAG_INT
            try:
                ints[i] = value
            except OverflowError:
                raise StoreError(
                    "integer {!r} does not fit the int64 artifact encoding".format(value)
                ) from None
        elif isinstance(value, float):
            tags[i] = _TAG_FLOAT
            floats[i] = value
        elif isinstance(value, str):
            tags[i] = _TAG_STR
            strings[i] = value
        else:
            raise StoreError(
                "cannot persist value of type {} (row {}); the artifact format "
                "stores None/bool/int/float/str scalars only".format(type(value).__name__, i)
            )
    blob, offsets = _encode_strings(strings)
    arrays[prefix + "tags"] = tags
    arrays[prefix + "ints"] = ints
    arrays[prefix + "floats"] = floats
    arrays[prefix + "str_blob"] = blob
    arrays[prefix + "str_offsets"] = offsets


def _decode_object_column(prefix: str, arrays: dict) -> list:
    tags = arrays[prefix + "tags"]
    ints = arrays[prefix + "ints"].tolist()
    floats = arrays[prefix + "floats"].tolist()
    strings = _decode_strings(arrays[prefix + "str_blob"], arrays[prefix + "str_offsets"])
    values: list = []
    for i, tag in enumerate(tags.tolist()):
        if tag == _TAG_NONE:
            values.append(None)
        elif tag == _TAG_BOOL:
            values.append(bool(ints[i]))
        elif tag == _TAG_INT:
            values.append(ints[i])
        elif tag == _TAG_FLOAT:
            values.append(floats[i])
        elif tag == _TAG_STR:
            values.append(strings[i])
        else:
            raise StoreError("unknown scalar tag {} in table artifact".format(tag))
    return values


# ---------------------------------------------------------------------------
# table <-> arrays
# ---------------------------------------------------------------------------

def table_to_arrays(table: Table) -> dict[str, np.ndarray]:
    """Flatten *table* into named arrays plus an embedded JSON schema."""
    arrays: dict[str, np.ndarray] = {}
    columns_meta: list[dict] = []
    for index, column in enumerate(table.columns):
        prefix = "c{}_".format(index)
        backend = column._backend
        if isinstance(backend, NumericBackend):
            storage = "numeric"
            arrays[prefix + "data"] = backend.data
            if backend.mask is not None:
                arrays[prefix + "mask"] = backend.mask
        elif isinstance(backend, CategoricalBackend) and all(
            isinstance(c, str) for c in backend.categories
        ):
            storage = "categorical"
            arrays[prefix + "codes"] = backend.codes
            blob, offsets = _encode_strings(backend.categories)
            arrays[prefix + "cat_blob"] = blob
            arrays[prefix + "cat_offsets"] = offsets
        else:
            storage = "object"
            _encode_object_column(backend.tolist(), prefix, arrays)
        columns_meta.append({"name": column.name, "dtype": column.dtype, "storage": storage})
    schema = {
        "format_version": TABLE_FORMAT_VERSION,
        "num_rows": table.num_rows,
        "columns": columns_meta,
    }
    arrays[_SCHEMA_KEY] = np.frombuffer(json.dumps(schema).encode("utf-8"), dtype=np.uint8)
    return arrays


def arrays_to_table(arrays: dict) -> Table:
    """Inverse of :func:`table_to_arrays`: exact backend reconstruction."""
    if _SCHEMA_KEY not in arrays:
        raise StoreError("table artifact is missing its embedded schema")
    schema = json.loads(np.asarray(arrays[_SCHEMA_KEY]).tobytes().decode("utf-8"))
    version = schema.get("format_version")
    if version is None or version > TABLE_FORMAT_VERSION:
        raise StoreError(
            "table artifact format version {} is newer than supported version {}".format(
                version, TABLE_FORMAT_VERSION
            )
        )
    columns: list[Column] = []
    for index, meta in enumerate(schema["columns"]):
        prefix = "c{}_".format(index)
        storage = meta["storage"]
        if storage == "numeric":
            data = arrays[prefix + "data"]
            mask = arrays.get(prefix + "mask")
            backend = NumericBackend(data, None if mask is None else mask)
        elif storage == "categorical":
            categories = _decode_strings(arrays[prefix + "cat_blob"],
                                         arrays[prefix + "cat_offsets"])
            backend = CategoricalBackend(arrays[prefix + "codes"], categories)
        elif storage == "object":
            backend = ObjectBackend(_decode_object_column(prefix, arrays))
        else:
            raise StoreError("unknown column storage {!r} in table artifact".format(storage))
        columns.append(Column._from_backend(meta["name"], backend, meta["dtype"]))
    return Table(columns)


# ---------------------------------------------------------------------------
# file round trip
# ---------------------------------------------------------------------------

def write_table(table: Table, path, compress: bool = True) -> Path:
    """Atomically persist *table* as a single NPZ artifact and return the path.

    ``compress=False`` keeps the inner ``.npy`` entries stored (uncompressed),
    which is what lets :func:`repro.store.npymap.map_npz_file` hand back
    memory-mapped views instead of copies — the spill files of the streaming
    path are written this way.
    """
    path = Path(path)
    save = np.savez_compressed if compress else np.savez
    with atomic_path(path) as tmp:
        with open(tmp, "wb") as handle:
            save(handle, **table_to_arrays(table))
    return path


def read_table(path) -> Table:
    """Load a table persisted by :func:`write_table`."""
    with np.load(Path(path)) as data:
        arrays = {name: data[name] for name in data.files}
    return arrays_to_table(arrays)
