"""Streaming table writers: bounded-memory sinks for chunked synthesis.

The generators grown in this PR (`BatchGenerationEngine.iter_generate_ids_batch`,
``GReaTSynthesizer.iter_sample``, ``FittedPipeline.iter_sample_flat``,
``SynthesisService.iter_sample_table``, ``MultiTableSynthesizer.
iter_sample_database``) emit completed row chunks instead of one monolithic
table.  This module is where those chunks go: a small :class:`TableSink`
interface with two concrete on-disk formats —

* :class:`CsvTableSink` — one growing CSV file, cell formatting identical to
  :func:`repro.frame.io.write_csv`, published atomically (the rows land in a
  temporary sibling which is renamed over the target on :meth:`~TableSink.
  close`, so readers never observe a torn file);
* :class:`PartTableSink` — a directory of numbered NPZ part files in the
  lossless :mod:`repro.store.tablefmt` layout plus a ``manifest.json``
  written last, so a spill directory is either complete or clearly absent.
  Parts default to uncompressed so :func:`part_table_column` can hand back
  memory-mapped column values without materializing the table.

:class:`SpoolingSink` re-chunks any upstream chunk size to a fixed number of
rows, and :class:`MemorySink` collects chunks in memory (the test/bench
reference).  All sinks check column consistency across chunks and support
``with``-statement use: the payload publishes on clean exit and is discarded
when the block raises.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

import numpy as np

from repro import faults
from repro.frame.ops import concat_rows
from repro.obs import trace as obs
from repro.frame.table import Table
from repro.store.atomic import atomic_path, atomic_write_text
from repro.store.codec import StoreError
from repro.store.npymap import map_npz_file
from repro.store.tablefmt import arrays_to_table, read_table, write_table

#: Version of the part-directory layout; bumped on incompatible changes.
PARTS_FORMAT_VERSION = 1

_MANIFEST_NAME = "manifest.json"


class TableSink:
    """Write a table as a sequence of row chunks.

    Subclasses implement :meth:`_write_chunk`, :meth:`_publish` and
    :meth:`_discard`.  The base class enforces the chunk protocol: all
    chunks carry the same columns, nothing is written after :meth:`close`,
    and either :meth:`close` (publish) or :meth:`abort` (discard) runs
    exactly once.
    """

    def __init__(self):
        self._columns: list[str] | None = None
        self._closed = False
        self.rows_written = 0
        self.chunks_written = 0

    def write(self, chunk: Table) -> None:
        """Append one chunk of rows."""
        if self._closed:
            raise StoreError("cannot write to a closed sink")
        if self._columns is None:
            self._columns = list(chunk.column_names)
        elif list(chunk.column_names) != self._columns:
            raise StoreError(
                "chunk columns {} do not match the sink's columns {}".format(
                    list(chunk.column_names), self._columns))
        if faults.check("sink_oserror") is not None:
            raise OSError("injected sink failure at chunk {}".format(self.chunks_written + 1))
        with obs.span("stage.sink_write", attrs={"rows": chunk.num_rows,
                                                 "chunk": self.chunks_written + 1,
                                                 "sink": type(self).__name__}):
            self._write_chunk(chunk)
        self.rows_written += chunk.num_rows
        self.chunks_written += 1

    def write_all(self, chunks) -> "TableSink":
        """Drain an iterable of chunks into the sink (sink left open)."""
        for chunk in chunks:
            self.write(chunk)
        return self

    def close(self) -> None:
        """Publish the written rows; idempotent."""
        if self._closed:
            return
        self._closed = True
        self._publish()

    def abort(self) -> None:
        """Discard everything written so far; idempotent."""
        if self._closed:
            return
        self._closed = True
        self._discard()

    def __enter__(self) -> "TableSink":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:
            self.abort()

    # -- subclass hooks -----------------------------------------------------------

    def _write_chunk(self, chunk: Table) -> None:
        raise NotImplementedError

    def _publish(self) -> None:
        raise NotImplementedError

    def _discard(self) -> None:
        raise NotImplementedError


class CsvTableSink(TableSink):
    """Stream chunks into one CSV file, published atomically on close.

    Cell formatting matches :func:`repro.frame.io.write_csv` exactly
    (``csv.writer`` defaults, ``None`` as the empty cell), so streaming a
    table chunk by chunk produces the identical bytes as writing it whole.
    """

    def __init__(self, path):
        super().__init__()
        self.path = Path(path)
        self._ctx = atomic_path(self.path)
        self._tmp = self._ctx.__enter__()
        self._handle = self._tmp.open("w", newline="")
        self._writer = csv.writer(self._handle)

    def _write_chunk(self, chunk: Table) -> None:
        if self.chunks_written == 0:
            self._writer.writerow(self._columns)
        columns = [chunk.column(name).values for name in self._columns]
        for row in zip(*columns):
            self._writer.writerow(["" if cell is None else cell for cell in row])

    def _publish(self) -> None:
        if self._columns is not None and self.chunks_written == 0:
            self._writer.writerow(self._columns)
        self._handle.close()
        self._ctx.__exit__(None, None, None)

    def _discard(self) -> None:
        self._handle.close()
        # handing atomic_path an exception makes it unlink the temp file
        # instead of renaming; it re-raises the sentinel, which ends here
        try:
            self._ctx.__exit__(StoreError, StoreError("sink aborted"), None)
        except StoreError:
            pass


class PartTableSink(TableSink):
    """Spill chunks as numbered NPZ part files plus a trailing manifest.

    Each chunk lands as ``part-00000.npz``, ``part-00001.npz``, … in the
    lossless :mod:`repro.store.tablefmt` encoding; ``manifest.json`` is
    written (atomically) only on :meth:`close`, so the presence of a
    manifest certifies a complete spill.  With ``compress=False`` (the
    default) the parts stay memory-mappable through
    :func:`part_table_column`.

    ``resume=True`` adopts the intact part files an interrupted spill left
    behind (no manifest yet): each ``part-*.npz`` prefix that decodes
    cleanly is kept on disk and the sink skips rewriting it — the producer
    re-feeds the same chunk sequence (chunk seeds are request-derived, so
    the regenerated prefix is identical by construction) and only the
    missing suffix touches disk.  The first torn or missing part ends the
    adopted prefix; it and any later strays are deleted.  Since
    :func:`~repro.store.tablefmt.write_table` output is byte-deterministic,
    a resumed spill is byte-identical to an uninterrupted one.
    """

    def __init__(self, directory, compress: bool = False, resume: bool = False):
        super().__init__()
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        manifest = self.directory / _MANIFEST_NAME
        if manifest.exists():
            raise StoreError("{} already holds a completed part table".format(self.directory))
        self.compress = compress
        self._row_counts: list[int] = []
        self._adopted_counts: list[int] = []
        if resume:
            self._adopt_parts()

    @property
    def resumed_chunks(self) -> int:
        """How many complete parts of an interrupted spill were adopted."""
        return len(self._adopted_counts)

    def _adopt_parts(self) -> None:
        index = 0
        columns: list[str] | None = None
        while True:
            path = self._part_path(index)
            if not path.exists():
                break
            try:
                part = read_table(path)
            except Exception:
                break  # torn write: this part and everything after is regenerated
            if columns is None:
                columns = list(part.column_names)
            elif list(part.column_names) != columns:
                break
            self._adopted_counts.append(part.num_rows)
            index += 1
        stray = index
        while True:
            path = self._part_path(stray)
            if not path.exists():
                break
            path.unlink()
            stray += 1
        if columns is not None:
            self._columns = columns

    def _part_path(self, index: int) -> Path:
        return self.directory / "part-{:05d}.npz".format(index)

    def _write_chunk(self, chunk: Table) -> None:
        if self.chunks_written < len(self._adopted_counts):
            expected = self._adopted_counts[self.chunks_written]
            if chunk.num_rows != expected:
                raise StoreError(
                    "resumed chunk {} carries {} rows but the adopted part holds {} — "
                    "the producer is not replaying the original chunk sequence".format(
                        self.chunks_written, chunk.num_rows, expected))
            self._row_counts.append(chunk.num_rows)
            return
        write_table(chunk, self._part_path(self.chunks_written), compress=self.compress)
        self._row_counts.append(chunk.num_rows)

    def _publish(self) -> None:
        manifest = {
            "format_version": PARTS_FORMAT_VERSION,
            "columns": self._columns or [],
            "num_rows": self.rows_written,
            "parts": [
                {"name": self._part_path(i).name, "num_rows": count}
                for i, count in enumerate(self._row_counts)
            ],
        }
        atomic_write_text(self.directory / _MANIFEST_NAME,
                          json.dumps(manifest, indent=2, sort_keys=True))

    def _discard(self) -> None:
        for index in range(self.chunks_written):
            self._part_path(index).unlink(missing_ok=True)


class SpoolingSink(TableSink):
    """Re-chunk an upstream chunk stream to a fixed ``chunk_rows`` size.

    Producers emit whatever chunk size falls out of their batching (engine
    lanes, serving blocks); consumers may want a different granularity on
    disk.  This sink buffers rows and forwards exact ``chunk_rows``-sized
    chunks to the wrapped sink (final partial chunk on close), owning the
    wrapped sink's lifecycle.
    """

    def __init__(self, sink: TableSink, chunk_rows: int):
        super().__init__()
        if chunk_rows <= 0:
            raise ValueError("chunk_rows must be positive")
        self.sink = sink
        self.chunk_rows = chunk_rows
        self._buffer: list[Table] = []
        self._buffered_rows = 0

    def _flush(self, final: bool) -> None:
        target = 1 if final else self.chunk_rows
        while self._buffered_rows >= target and self._buffered_rows > 0:
            merged = self._buffer[0] if len(self._buffer) == 1 else concat_rows(self._buffer)
            take = min(self.chunk_rows, merged.num_rows)
            self.sink.write(merged.take(list(range(take))))
            rest = merged.take(list(range(take, merged.num_rows)))
            self._buffer = [rest] if rest.num_rows else []
            self._buffered_rows = rest.num_rows

    def _write_chunk(self, chunk: Table) -> None:
        self._buffer.append(chunk)
        self._buffered_rows += chunk.num_rows
        self._flush(final=False)

    def _publish(self) -> None:
        self._flush(final=True)
        self.sink.close()

    def _discard(self) -> None:
        self.sink.abort()


class MemorySink(TableSink):
    """Collect chunks in memory — the identity reference for tests/benches."""

    def __init__(self):
        super().__init__()
        self.chunks: list[Table] = []

    def _write_chunk(self, chunk: Table) -> None:
        self.chunks.append(chunk)

    def _publish(self) -> None:
        pass

    def _discard(self) -> None:
        self.chunks = []

    def table(self) -> Table:
        """The concatenation of every chunk written so far."""
        if not self.chunks:
            return Table({name: [] for name in (self._columns or [])})
        return concat_rows(self.chunks)


# ---------------------------------------------------------------------------
# part-directory readers
# ---------------------------------------------------------------------------

def _read_manifest(directory: Path) -> dict:
    manifest_path = Path(directory) / _MANIFEST_NAME
    if not manifest_path.exists():
        raise StoreError("{} has no part-table manifest (incomplete spill?)".format(directory))
    manifest = json.loads(manifest_path.read_text())
    version = manifest.get("format_version")
    if version is None or version > PARTS_FORMAT_VERSION:
        raise StoreError(
            "part table format version {} is newer than supported version {}".format(
                version, PARTS_FORMAT_VERSION))
    return manifest


def part_table_is_complete(directory) -> bool:
    """Whether *directory* holds a completed spill (manifest-last protocol:
    the manifest's presence certifies every part landed)."""
    return (Path(directory) / _MANIFEST_NAME).exists()


def iter_part_tables(directory):
    """Yield the part tables of a completed :class:`PartTableSink` spill in order."""
    directory = Path(directory)
    manifest = _read_manifest(directory)
    for part in manifest["parts"]:
        yield read_table(directory / part["name"])


def read_part_table(directory) -> Table:
    """Reassemble a completed spill directory into one in-memory table."""
    directory = Path(directory)
    manifest = _read_manifest(directory)
    parts = list(iter_part_tables(directory))
    if not parts:
        return Table({name: [] for name in manifest["columns"]})
    table = concat_rows(parts)
    if table.num_rows != manifest["num_rows"]:
        raise StoreError(
            "part table at {} reassembled to {} rows, manifest says {}".format(
                directory, table.num_rows, manifest["num_rows"]))
    return table


def part_table_num_rows(directory) -> int:
    """Total row count of a completed spill directory (manifest only, no data read)."""
    return int(_read_manifest(Path(directory))["num_rows"])


def part_table_column(directory, name: str) -> list:
    """The values of one column of a spilled table, via memory-mapped parts.

    Reads only the arrays belonging to *name* out of each part (memory-mapped
    when the part is uncompressed), so pulling FK keys back out of a spill
    touches a fraction of the spilled bytes.  Returns plain Python values in
    row order, like ``table.column(name).values``.
    """
    directory = Path(directory)
    manifest = _read_manifest(directory)
    values: list = []
    for part in manifest["parts"]:
        arrays = map_npz_file(directory / part["name"])
        schema = json.loads(bytes(arrays["__schema__"]).decode("utf-8"))
        index = next((i for i, meta in enumerate(schema["columns"])
                      if meta["name"] == name), None)
        if index is None:
            raise StoreError("column {!r} not present in spilled table at {}".format(
                name, directory))
        # re-key the one column's arrays into a dense c0_ namespace with a
        # matching single-column schema and reuse the normal decoder
        prefix = "c{}_".format(index)
        reduced = {key.replace(prefix, "c0_", 1): value
                   for key, value in arrays.items() if key.startswith(prefix)}
        sub_schema = dict(schema, columns=[schema["columns"][index]])
        reduced["__schema__"] = np.frombuffer(
            json.dumps(sub_schema).encode("utf-8"), dtype=np.uint8)
        values.extend(arrays_to_table(reduced).column(name).values)
    return values
