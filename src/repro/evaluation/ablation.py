"""Pairwise comparison and ablation counting (Fig. 10).

The ablation study compares two fidelity reports built against the *same*
original data: for every column pair scored in both, it asks whether the
candidate configuration improved or worsened the pair's p-value relative to
the baseline configuration.  Fig. 10 then reports the max, min and average of
the improved / worsened counts across the eight independent trials; this
module computes exactly those numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean

from repro.evaluation.fidelity import FidelityReport


@dataclass(frozen=True)
class PairwiseComparison:
    """Improved / worsened / unchanged pair counts between two reports."""

    baseline_label: str
    candidate_label: str
    improved: int
    worsened: int
    unchanged: int
    mean_p_value_baseline: float
    mean_p_value_candidate: float
    mean_w_distance_baseline: float
    mean_w_distance_candidate: float

    @property
    def net_improved(self) -> int:
        """Improved minus worsened pairs (positive means a net fidelity gain)."""
        return self.improved - self.worsened

    @property
    def compared_pairs(self) -> int:
        return self.improved + self.worsened + self.unchanged


def compare_reports(baseline: FidelityReport, candidate: FidelityReport,
                    tolerance: float = 1e-9) -> PairwiseComparison:
    """Count per-pair p-value improvements of *candidate* over *baseline*.

    Only pairs scored in both reports are compared.  A pair is *improved* when
    the candidate's p-value exceeds the baseline's by more than *tolerance*,
    *worsened* in the symmetric case, and *unchanged* otherwise.
    """
    baseline_pairs = baseline.pair_scores()
    candidate_pairs = candidate.pair_scores()
    shared = sorted(set(baseline_pairs) & set(candidate_pairs))
    if not shared:
        raise ValueError("the two reports share no column pairs to compare")

    improved = worsened = unchanged = 0
    for pair in shared:
        delta = candidate_pairs[pair].p_value - baseline_pairs[pair].p_value
        if delta > tolerance:
            improved += 1
        elif delta < -tolerance:
            worsened += 1
        else:
            unchanged += 1

    return PairwiseComparison(
        baseline_label=baseline.label,
        candidate_label=candidate.label,
        improved=improved,
        worsened=worsened,
        unchanged=unchanged,
        mean_p_value_baseline=mean(baseline_pairs[p].p_value for p in shared),
        mean_p_value_candidate=mean(candidate_pairs[p].p_value for p in shared),
        mean_w_distance_baseline=mean(baseline_pairs[p].w_distance for p in shared),
        mean_w_distance_candidate=mean(candidate_pairs[p].w_distance for p in shared),
    )


@dataclass(frozen=True)
class AblationCounts:
    """Max / min / average of the improved and worsened counts across trials (Fig. 10)."""

    candidate_label: str
    baseline_label: str
    n_trials: int
    max_improved: int
    min_improved: int
    avg_improved: float
    max_worsened: int
    min_worsened: int
    avg_worsened: float
    avg_net_improved: float

    def as_row(self) -> dict:
        """One printable row of the Fig. 10 table."""
        return {
            "configuration": self.candidate_label,
            "baseline": self.baseline_label,
            "trials": self.n_trials,
            "improved(max/avg/min)": "{}/{:.1f}/{}".format(
                self.max_improved, self.avg_improved, self.min_improved
            ),
            "worsened(max/avg/min)": "{}/{:.1f}/{}".format(
                self.max_worsened, self.avg_worsened, self.min_worsened
            ),
            "net(avg)": round(self.avg_net_improved, 2),
        }


def summarize_trials(comparisons: list[PairwiseComparison]) -> AblationCounts:
    """Aggregate per-trial comparisons into the Fig. 10 counts."""
    if not comparisons:
        raise ValueError("at least one trial comparison is required")
    labels = {(c.baseline_label, c.candidate_label) for c in comparisons}
    if len(labels) > 1:
        raise ValueError("all comparisons must involve the same baseline and candidate")
    improved = [c.improved for c in comparisons]
    worsened = [c.worsened for c in comparisons]
    return AblationCounts(
        candidate_label=comparisons[0].candidate_label,
        baseline_label=comparisons[0].baseline_label,
        n_trials=len(comparisons),
        max_improved=max(improved),
        min_improved=min(improved),
        avg_improved=mean(improved),
        max_worsened=max(worsened),
        min_worsened=min(worsened),
        avg_worsened=mean(worsened),
        avg_net_improved=mean(c.net_improved for c in comparisons),
    )
