"""Fidelity evaluation (Sec. 4.1.3, Appendix B).

The paper scores synthetic data with the *distribution of distribution
similarity*: for every ordered column pair (x1, x2) it compares the
conditional distribution of x2 given each value of x1 between original and
synthetic data, aggregates per pair with the probability-weighted average of
Algorithm 1, and then looks at the distribution of those per-pair scores.
Two similarity measures are used: the Kolmogorov-Smirnov p-value (higher is
better) and the Wasserstein distance (lower is better).
"""

from repro.evaluation.fidelity import (
    ColumnPairFidelity,
    FidelityEvaluator,
    FidelityReport,
    encode_categories,
)
from repro.evaluation.ablation import (
    AblationCounts,
    PairwiseComparison,
    compare_reports,
    summarize_trials,
)

__all__ = [
    "FidelityEvaluator",
    "FidelityReport",
    "ColumnPairFidelity",
    "encode_categories",
    "compare_reports",
    "PairwiseComparison",
    "AblationCounts",
    "summarize_trials",
]
