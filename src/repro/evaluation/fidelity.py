"""Distribution-of-distribution similarity (Algorithm 1).

For an ordered column pair ``(x1, x2)``:

1. for every value ``v`` of ``x1`` in the original data, collect the
   conditional samples ``x2 | x1 == v`` in the original and in the synthetic
   data;
2. score their similarity with the KS-test p-value and the Wasserstein
   distance (categorical values are first encoded onto a shared numeric
   codebook);
3. aggregate the per-value scores into one per-pair score using the original
   data's ``P(x1 == v)`` as weights (step 6 of Algorithm 1);
4. repeating over all column pairs yields the similarity distribution the
   paper plots in Figs. 7-9 and counts in Fig. 10.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import mean, median

import numpy as np

from repro.frame.table import Table
from repro.obs import trace as obs
from repro.stats.distance import wasserstein_from_samples
from repro.stats.tests import _ks_p_value, ks_two_sample_test


def encode_categories(original_values, synthetic_values) -> tuple[list[float], list[float]]:
    """Map two value samples onto a shared numeric codebook.

    Numeric values are used as-is; non-numeric values are assigned integer
    codes by sorted order of the union of both samples, so the same category
    gets the same code on both sides.
    """
    original_values = [v for v in original_values if v is not None]
    synthetic_values = [v for v in synthetic_values if v is not None]

    def numeric(value):
        return isinstance(value, (int, float)) and not isinstance(value, bool)

    if all(numeric(v) for v in original_values) and all(numeric(v) for v in synthetic_values):
        return [float(v) for v in original_values], [float(v) for v in synthetic_values]

    categories = sorted({str(v) for v in original_values} | {str(v) for v in synthetic_values})
    codebook = {category: float(code) for code, category in enumerate(categories)}
    return (
        [codebook[str(v)] for v in original_values],
        [codebook[str(v)] for v in synthetic_values],
    )


def _translate_codes(codes: np.ndarray, mapping: list[int]) -> np.ndarray:
    """Remap dictionary codes through ``mapping`` (missing ``-1`` stays put)."""
    if not mapping:
        return np.full(codes.shape, -1, dtype=np.int64)
    table = np.asarray(mapping, dtype=np.int64)
    return np.where(codes >= 0, table[np.maximum(codes, 0)], -1)


def _ks_p_and_wasserstein(sample_a: np.ndarray, sample_b: np.ndarray) -> tuple[float, float]:
    """KS p-value and Wasserstein distance from one shared sorted support.

    Computes exactly what :func:`ks_two_sample_test` plus
    :func:`wasserstein_from_samples` compute, but sorts each sample once and
    evaluates both empirical CDFs on a single pooled support — the per-group
    kernel of the vectorized Algorithm 1 loop.
    """
    a = np.sort(np.asarray(sample_a, dtype=np.float64))
    b = np.sort(np.asarray(sample_b, dtype=np.float64))
    support = np.concatenate([a, b])
    support.sort(kind="mergesort")
    cdf_a = np.searchsorted(a, support, side="right") / a.size
    cdf_b = np.searchsorted(b, support, side="right") / b.size
    gaps = np.abs(cdf_a - cdf_b)
    statistic = float(np.max(gaps))
    p_value = _ks_p_value(statistic, a.size, b.size)
    deltas = np.diff(support)
    w_distance = float(np.sum(gaps[:-1] * deltas)) if deltas.size else 0.0
    return p_value, w_distance


def _split_by_code(rows: np.ndarray, codes: np.ndarray, n_groups: int) -> list[np.ndarray]:
    """Partition the row indices by their (non-missing) code, in code order."""
    group_codes = codes[rows]
    order = np.argsort(group_codes, kind="stable")
    counts = np.bincount(group_codes, minlength=n_groups)
    return np.split(rows[order], np.cumsum(counts)[:-1])


@dataclass(frozen=True)
class ColumnPairFidelity:
    """Per-pair fidelity scores (weighted averages over the conditioning values)."""

    conditioning_column: str
    target_column: str
    p_value: float
    w_distance: float
    n_conditioning_values: int

    @property
    def pair(self) -> tuple[str, str]:
        return (self.conditioning_column, self.target_column)


@dataclass
class FidelityReport:
    """All per-pair scores for one (original, synthetic) comparison."""

    pairs: list[ColumnPairFidelity] = field(default_factory=list)
    label: str = ""

    def __len__(self) -> int:
        return len(self.pairs)

    # -- score vectors ------------------------------------------------------------

    def p_values(self) -> list[float]:
        """Per-pair KS p-values (higher means more similar)."""
        return [pair.p_value for pair in self.pairs]

    def w_distances(self) -> list[float]:
        """Per-pair Wasserstein distances (lower means more similar)."""
        return [pair.w_distance for pair in self.pairs]

    def pair_scores(self) -> dict[tuple[str, str], ColumnPairFidelity]:
        """Mapping from (conditioning, target) to the pair's scores."""
        return {pair.pair: pair for pair in self.pairs}

    # -- summary statistics --------------------------------------------------------

    def summary(self) -> dict[str, float]:
        """Mean / median / max / min of both score vectors."""
        p = self.p_values()
        w = self.w_distances()
        if not p:
            raise ValueError("the report contains no column pairs")
        return {
            "mean_p_value": mean(p),
            "median_p_value": median(p),
            "max_p_value": max(p),
            "min_p_value": min(p),
            "mean_w_distance": mean(w),
            "median_w_distance": median(w),
            "max_w_distance": max(w),
            "min_w_distance": min(w),
            "n_pairs": float(len(p)),
        }

    def fraction_above(self, threshold: float = 0.05) -> float:
        """Fraction of pairs whose p-value exceeds *threshold* (the right tail of Fig. 7)."""
        p = self.p_values()
        if not p:
            return 0.0
        return sum(1 for value in p if value > threshold) / len(p)

    def p_value_histogram(self, bins: int = 10) -> tuple[np.ndarray, np.ndarray]:
        """Normalised histogram of the per-pair p-values on [0, 1]."""
        counts, edges = np.histogram(self.p_values(), bins=bins, range=(0.0, 1.0))
        total = counts.sum()
        return (counts / total if total else counts.astype(float)), edges


class FidelityEvaluator:
    """Compute the distribution-of-distribution similarity between two tables.

    Parameters
    ----------
    max_conditioning_values:
        Conditioning columns with more distinct values than this are skipped
        as conditioning columns (they are effectively identifiers and every
        conditional sample would have size one).
    min_conditional_samples:
        Conditional samples smaller than this (on the original side) are
        skipped; their KS p-values carry no signal.
    """

    def __init__(self, max_conditioning_values: int = 60, min_conditional_samples: int = 2,
                 include_self_pairs: bool = False):
        if max_conditioning_values < 1:
            raise ValueError("max_conditioning_values must be positive")
        if min_conditional_samples < 1:
            raise ValueError("min_conditional_samples must be positive")
        self.max_conditioning_values = max_conditioning_values
        self.min_conditional_samples = min_conditional_samples
        self.include_self_pairs = include_self_pairs

    # -- per-pair ------------------------------------------------------------------

    def pair_fidelity(self, original: Table, synthetic: Table,
                      conditioning_column: str, target_column: str) -> ColumnPairFidelity | None:
        """Algorithm 1 for a single ordered column pair.

        Returns ``None`` when the pair cannot be scored (no usable
        conditioning value), so callers can skip it.  Columns on typed storage
        backends run a vectorized implementation of the conditional grouping
        and encoding; mixed columns use the original per-value code.
        """
        orig_cond = original.column(conditioning_column)
        orig_target = original.column(target_column)
        syn_cond = synthetic.column(conditioning_column)
        syn_target = synthetic.column(target_column)
        if all(col.is_vectorized for col in (orig_cond, orig_target, syn_cond, syn_target)):
            return self._pair_fidelity_vectorized(
                orig_cond, orig_target, syn_cond, syn_target,
                conditioning_column, target_column,
            )
        return self._pair_fidelity_generic(
            orig_cond, orig_target, syn_cond, syn_target,
            conditioning_column, target_column,
        )

    def _pair_fidelity_vectorized(self, orig_cond, orig_target, syn_cond, syn_target,
                                  conditioning_column: str, target_column: str
                                  ) -> ColumnPairFidelity | None:
        """Array implementation of the conditional-distribution loop.

        Mirrors :meth:`_pair_fidelity_generic` exactly: same grouping, same
        shared codebooks (numeric values as-is, everything else encoded by
        sorted string order of the per-group union), same weights.
        """
        numeric_kinds = ("int", "float", "empty")
        numeric_mode = (orig_target.dtype in numeric_kinds
                        and syn_target.dtype in numeric_kinds)
        if numeric_mode:
            o_values = orig_target._backend.as_float_array()
            s_values = syn_target._backend.as_float_array()
            o_target_valid = orig_target.validity_mask()
            s_target_valid = syn_target.validity_mask()
        else:
            # global dictionary codes ranked by the string form of each
            # category; restricting the ranking to a group's union reproduces
            # the per-group sorted-string codebook of encode_categories()
            o_raw, o_cats = orig_target.factorize()
            s_raw, s_cats = syn_target.factorize()
            strings = sorted({str(c) for c in o_cats} | {str(c) for c in s_cats})
            rank = {s: i for i, s in enumerate(strings)}
            o_values = _translate_codes(o_raw, [rank[str(c)] for c in o_cats])
            s_values = _translate_codes(s_raw, [rank[str(c)] for c in s_cats])
            o_target_valid = o_raw >= 0
            s_target_valid = s_raw >= 0

        c_codes, c_cats = orig_cond.factorize()
        s_c_raw, s_c_cats = syn_cond.factorize()
        cond_code = {cat: code for code, cat in enumerate(c_cats)}
        s_c_codes = _translate_codes(s_c_raw, [cond_code.get(cat, -1) for cat in s_c_cats])

        o_valid = (c_codes >= 0) & o_target_valid
        s_valid = (s_c_codes >= 0) & s_target_valid
        total = int(np.count_nonzero(o_valid))
        if total == 0:
            return None

        n_groups = len(c_cats)
        o_groups = _split_by_code(np.flatnonzero(o_valid), c_codes, n_groups)
        s_groups = _split_by_code(np.flatnonzero(s_valid), s_c_codes, n_groups)

        weighted_p = 0.0
        weighted_w = 0.0
        weight_total = 0.0
        used_values = 0
        for group in range(n_groups):
            orig_rows = o_groups[group]
            if orig_rows.size < self.min_conditional_samples:
                continue
            weight = orig_rows.size / total
            orig_samples = o_values[orig_rows]
            syn_rows = s_groups[group]
            if syn_rows.size == 0:
                # the synthetic data never produced this conditioning value:
                # maximal dissimilarity for this slice
                if numeric_mode:
                    spread = float(orig_samples.max() - orig_samples.min())
                else:
                    spread = float(np.unique(orig_samples).size - 1)
                weighted_w += weight * max(spread, 1.0)
                weight_total += weight
                used_values += 1
                continue
            syn_samples = s_values[syn_rows]
            if numeric_mode:
                encoded_orig, encoded_syn = orig_samples, syn_samples
            else:
                union = np.union1d(orig_samples, syn_samples)
                encoded_orig = np.searchsorted(union, orig_samples).astype(float)
                encoded_syn = np.searchsorted(union, syn_samples).astype(float)
            p_value, w_dist = _ks_p_and_wasserstein(encoded_orig, encoded_syn)
            weighted_p += weight * p_value
            weighted_w += weight * w_dist
            weight_total += weight
            used_values += 1

        if weight_total == 0.0 or used_values == 0:
            return None
        return ColumnPairFidelity(
            conditioning_column=conditioning_column,
            target_column=target_column,
            p_value=weighted_p / weight_total,
            w_distance=weighted_w / weight_total,
            n_conditioning_values=used_values,
        )

    def _pair_fidelity_generic(self, orig_cond, orig_target, syn_cond, syn_target,
                               conditioning_column: str, target_column: str
                               ) -> ColumnPairFidelity | None:
        """The original per-value implementation, kept for mixed columns."""
        # group targets by conditioning value on both sides
        orig_groups: dict = {}
        for value, target in zip(orig_cond, orig_target):
            if value is None or target is None:
                continue
            orig_groups.setdefault(value, []).append(target)
        syn_groups: dict = {}
        for value, target in zip(syn_cond, syn_target):
            if value is None or target is None:
                continue
            syn_groups.setdefault(value, []).append(target)

        total = sum(len(samples) for samples in orig_groups.values())
        if total == 0:
            return None

        weighted_p = 0.0
        weighted_w = 0.0
        weight_total = 0.0
        used_values = 0
        for value, orig_samples in orig_groups.items():
            if len(orig_samples) < self.min_conditional_samples:
                continue
            syn_samples = syn_groups.get(value, [])
            weight = len(orig_samples) / total
            if not syn_samples:
                # the synthetic data never produced this conditioning value:
                # maximal dissimilarity for this slice
                weighted_p += weight * 0.0
                encoded_orig, _ = encode_categories(orig_samples, orig_samples)
                spread = (max(encoded_orig) - min(encoded_orig)) if encoded_orig else 0.0
                weighted_w += weight * max(spread, 1.0)
                weight_total += weight
                used_values += 1
                continue
            encoded_orig, encoded_syn = encode_categories(orig_samples, syn_samples)
            if not encoded_orig or not encoded_syn:
                continue
            ks = ks_two_sample_test(encoded_orig, encoded_syn)
            w_dist = wasserstein_from_samples(encoded_orig, encoded_syn)
            weighted_p += weight * ks.p_value
            weighted_w += weight * w_dist
            weight_total += weight
            used_values += 1

        if weight_total == 0.0 or used_values == 0:
            return None
        return ColumnPairFidelity(
            conditioning_column=conditioning_column,
            target_column=target_column,
            p_value=weighted_p / weight_total,
            w_distance=weighted_w / weight_total,
            n_conditioning_values=used_values,
        )

    # -- full report ----------------------------------------------------------------

    def _usable_conditioning_columns(self, original: Table, columns: list[str]) -> list[str]:
        usable = []
        for name in columns:
            if original.column(name).nunique() <= self.max_conditioning_values:
                usable.append(name)
        return usable

    def evaluate(self, original: Table, synthetic: Table,
                 columns: list[str] | None = None, label: str = "") -> FidelityReport:
        """Score every ordered column pair shared by both tables."""
        shared = [name for name in original.column_names if name in synthetic.column_names]
        if columns is not None:
            shared = [name for name in columns if name in shared]
        if len(shared) < 2:
            raise ValueError("need at least two shared columns to evaluate fidelity")

        with obs.span("stage.fidelity_evaluate",
                      attrs={"label": label, "columns": len(shared)}) as sp:
            conditioning = self._usable_conditioning_columns(original, shared)
            report = FidelityReport(label=label)
            for cond in conditioning:
                for target in shared:
                    if cond == target and not self.include_self_pairs:
                        continue
                    pair = self.pair_fidelity(original, synthetic, cond, target)
                    if pair is not None:
                        report.pairs.append(pair)
            if not report.pairs:
                raise ValueError("no column pair could be scored; the tables may be too small")
            sp.set_attr("pairs", len(report.pairs))
        return report
