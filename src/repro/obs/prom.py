"""Prometheus text-format exposition (version 0.0.4) for the metrics plane.

Renders a :class:`~repro.serving.metrics.MetricsRegistry` — labeled
counters, gauges and latency histograms (as native ``_bucket{le=...}`` /
``_sum`` / ``_count`` series) — plus any numeric scalars found in a nested
stats dict, flattened into ``repro_<path>`` gauges.  No external client
library: the format is plain text and this writer emits only the subset
the registry needs.
"""

from __future__ import annotations

import re
from typing import Any

__all__ = ["CONTENT_TYPE", "prometheus_text"]

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_OK = re.compile(r"[^a-zA-Z0-9_]")


def _metric_name(raw: str, prefix: str) -> str:
    name = _NAME_OK.sub("_", raw)
    if not name or not (name[0].isalpha() or name[0] == "_"):
        name = "_" + name
    return prefix + name


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(labels: tuple, extra: tuple = ()) -> str:
    pairs = tuple(labels) + tuple(extra)
    if not pairs:
        return ""
    body = ",".join(
        '{}="{}"'.format(key, _escape_label(str(value))) for key, value in pairs
    )
    return "{" + body + "}"


def _format_value(value: float) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def _flatten_scalars(stats: dict, path: tuple = ()) -> list:
    """Depth-first numeric leaves of a nested stats dict as (path, value)."""

    out = []
    for key, value in stats.items():
        here = path + (str(key),)
        if isinstance(value, dict):
            out.extend(_flatten_scalars(value, here))
        elif isinstance(value, bool):
            out.append((here, 1 if value else 0))
        elif isinstance(value, (int, float)):
            out.append((here, value))
    return out


def prometheus_text(registry, extra_stats: dict | None = None, prefix: str = "repro_") -> str:
    """Render the registry (and optional stats scalars) as Prometheus text."""

    lines: list[str] = []

    for name, series in sorted(registry.counter_series().items()):
        metric = _metric_name(name, prefix)
        lines.append("# TYPE {} counter".format(metric))
        for labels, value in sorted(series):
            lines.append("{}{} {}".format(metric, _render_labels(labels), _format_value(value)))

    for name, series in sorted(registry.gauge_series().items()):
        metric = _metric_name(name, prefix)
        lines.append("# TYPE {} gauge".format(metric))
        for labels, value in sorted(series):
            lines.append("{}{} {}".format(metric, _render_labels(labels), _format_value(value)))

    histograms = registry.snapshot()
    if histograms:
        metric = _metric_name("latency_seconds", prefix)
        lines.append("# TYPE {} histogram".format(metric))
        for endpoint, snap in sorted(histograms.items()):
            label = (("endpoint", endpoint),)
            bounds = list(snap["buckets_s"]) + ["+Inf"]
            for bound, cumulative in zip(bounds, snap["cumulative_counts"]):
                le = bound if bound == "+Inf" else repr(float(bound))
                lines.append(
                    "{}_bucket{} {}".format(
                        metric, _render_labels(label, (("le", le),)), cumulative
                    )
                )
            lines.append(
                "{}_sum{} {}".format(metric, _render_labels(label), _format_value(snap["total_s"]))
            )
            lines.append(
                "{}_count{} {}".format(metric, _render_labels(label), snap["count"])
            )

    if extra_stats:
        skip = {"latency", "counters", "gauges"}
        scalars = _flatten_scalars(
            {key: value for key, value in extra_stats.items() if key not in skip}
        )
        for path, value in scalars:
            metric = _metric_name("_".join(path), prefix)
            lines.append("# TYPE {} gauge".format(metric))
            lines.append("{} {}".format(metric, _format_value(value)))

    return "\n".join(lines) + "\n"
