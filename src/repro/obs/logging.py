"""Structured JSON-lines logging to stderr.

One event per line, machine-parsable, with a stable leading key order
(``ts``, ``event``) so the access log stays greppable.  Used by the HTTP
server for its per-request access log; safe to call from any thread.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from typing import Any

__all__ = ["access_log", "log_event"]

_lock = threading.Lock()


def log_event(event: str, **fields: Any) -> None:
    """Write one structured log line to stderr."""

    record: dict[str, Any] = {"ts": round(time.time(), 6), "event": event}
    record.update(fields)
    line = json.dumps(record, separators=(",", ":"), default=str)
    with _lock:
        print(line, file=sys.stderr)


def access_log(
    method: str,
    path: str,
    status: int,
    request_id: str,
    duration_ms: float,
    **fields: Any,
) -> None:
    """One access-log line per HTTP request."""

    log_event(
        "access",
        method=method,
        path=path,
        status=status,
        request_id=request_id,
        duration_ms=round(duration_ms, 3),
        **fields,
    )
