"""Low-overhead tracing: spans, sinks and cross-process context propagation.

The tracer is a process-global singleton armed with :func:`configure` and
torn down with :func:`disable`.  While disabled (the default) every entry
point degrades to a near-free no-op: :func:`span` returns a shared null
context manager, :func:`emit_span`/:func:`emit_raw` return immediately and
:func:`current_context` is ``None``.  That keeps instrumentation safe to
leave inline on hot paths.

Spans are emitted as JSON-serialisable dicts with a fixed key set (see
``repro.obs.schema``): ``trace_id``/``span_id``/``parent_id`` (16-hex ids),
``name``, ``pid``, ``start_us``/``duration_us`` (CLOCK_MONOTONIC
microseconds — shared across processes on Linux, so parent and worker spans
stitch into one tree), ``status`` and free-form ``attrs``/``events``.

Parent linkage is implicit through a :class:`contextvars.ContextVar`: a span
entered as a context manager becomes the current span for nested calls in
the same thread/task.  To cross an executor boundary, run the task inside
``contextvars.copy_context()``; to cross a process boundary, ship
:func:`current_context` with the task frame and pass it back as ``parent=``.
Worker processes buffer spans in a :class:`BufferSink` and ship the drained
list over the existing result pipe; the parent re-emits them verbatim via
:func:`emit_raw`.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from collections import deque
from contextvars import ContextVar
from typing import Any, Iterator

__all__ = [
    "BufferSink",
    "FileSink",
    "NULL_SPAN",
    "RingSink",
    "Span",
    "StderrSink",
    "Tracer",
    "configure",
    "configure_buffered",
    "current_context",
    "disable",
    "emit_raw",
    "emit_span",
    "enabled",
    "monotonic_us",
    "new_trace_id",
    "ring_snapshot",
    "span",
]

DEFAULT_RING_CAPACITY = 4096

_current_span: ContextVar[tuple[str, str] | None] = ContextVar(
    "repro_obs_current_span", default=None
)

_lock = threading.Lock()
_tracer: "Tracer | None" = None


def monotonic_us() -> int:
    """Microseconds on the monotonic clock (comparable across processes)."""

    return time.monotonic_ns() // 1000


def new_trace_id() -> str:
    return os.urandom(8).hex()


def _new_span_id() -> str:
    return os.urandom(8).hex()


class Sink:
    """Destination for finished span dicts."""

    def emit(self, record: dict[str, Any]) -> None:
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - default is a no-op
        pass


def _encode(record: dict[str, Any]) -> str:
    return json.dumps(record, separators=(",", ":"), default=str)


class FileSink(Sink):
    """Append JSON lines to a file with one atomic write per span."""

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self._fd = os.open(self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        self._lock = threading.Lock()

    def emit(self, record: dict[str, Any]) -> None:
        data = (_encode(record) + "\n").encode("utf-8")
        with self._lock:
            os.write(self._fd, data)

    def close(self) -> None:
        with self._lock:
            if self._fd >= 0:
                try:
                    os.close(self._fd)
                except OSError:
                    pass
                self._fd = -1


class StderrSink(Sink):
    def __init__(self) -> None:
        self._lock = threading.Lock()

    def emit(self, record: dict[str, Any]) -> None:
        line = _encode(record)
        with self._lock:
            print(line, file=sys.stderr)


class RingSink(Sink):
    """Bounded in-memory buffer backing ``GET /trace``."""

    def __init__(self, capacity: int = DEFAULT_RING_CAPACITY) -> None:
        if capacity <= 0:
            raise ValueError("ring capacity must be positive, got {}".format(capacity))
        self.capacity = capacity
        self._lock = threading.Lock()
        self._records: deque[dict[str, Any]] = deque(maxlen=capacity)
        self._emitted = 0

    def emit(self, record: dict[str, Any]) -> None:
        with self._lock:
            self._records.append(record)
            self._emitted += 1

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            records = list(self._records)
            emitted = self._emitted
        return {
            "capacity": self.capacity,
            "emitted": emitted,
            "dropped": emitted - len(records),
            "spans": records,
        }


class BufferSink(Sink):
    """Collect spans for shipping across a process boundary.

    Worker processes arm one of these and :meth:`drain` it after every task;
    the drained list rides the result pipe and the parent re-emits it.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._records: list[dict[str, Any]] = []

    def emit(self, record: dict[str, Any]) -> None:
        with self._lock:
            self._records.append(record)

    def drain(self) -> list[dict[str, Any]]:
        with self._lock:
            records = self._records
            self._records = []
        return records


class Span:
    """A started span; finish it by exiting the context manager."""

    __slots__ = (
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "start_us",
        "status",
        "attrs",
        "events",
        "_tracer",
        "_token",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        trace_id: str,
        parent_id: str | None,
        attrs: dict[str, Any] | None,
        start_us: int | None,
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.trace_id = trace_id
        self.span_id = _new_span_id()
        self.parent_id = parent_id
        self.start_us = monotonic_us() if start_us is None else start_us
        self.status = "ok"
        self.attrs: dict[str, Any] = dict(attrs) if attrs else {}
        self.events: list[dict[str, Any]] = []
        self._token = None

    def set_attr(self, key: str, value: Any) -> None:
        self.attrs[key] = value

    def add_event(self, name: str, **attrs: Any) -> None:
        event: dict[str, Any] = {"name": name, "t_us": monotonic_us()}
        if attrs:
            event["attrs"] = attrs
        self.events.append(event)

    def context(self) -> tuple[str, str]:
        return (self.trace_id, self.span_id)

    def __enter__(self) -> "Span":
        self._token = _current_span.set((self.trace_id, self.span_id))
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._token is not None:
            _current_span.reset(self._token)
            self._token = None
        if exc_type is not None:
            self.status = "error"
            self.add_event("error", type=exc_type.__name__, message=str(exc)[:200])
        self._tracer.finish(self)
        return False


class _NullSpan:
    """Shared do-nothing stand-in returned while tracing is disabled."""

    __slots__ = ()
    trace_id = None
    span_id = None
    parent_id = None

    def set_attr(self, key: str, value: Any) -> None:
        pass

    def add_event(self, name: str, **attrs: Any) -> None:
        pass

    def context(self) -> None:
        return None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NULL_SPAN = _NullSpan()


class Tracer:
    def __init__(self, sink: Sink) -> None:
        self.sink = sink

    def start_span(
        self,
        name: str,
        attrs: dict[str, Any] | None = None,
        parent: tuple[str, str] | None = None,
        trace_id: str | None = None,
        start_us: int | None = None,
    ) -> Span:
        parent_id: str | None
        if parent is not None:
            trace_id, parent_id = parent[0], parent[1]
        else:
            current = _current_span.get()
            if current is not None:
                trace_id, parent_id = current
            else:
                trace_id = trace_id or new_trace_id()
                parent_id = None
        return Span(self, name, trace_id, parent_id, attrs, start_us)

    def finish(self, span: Span) -> None:
        now = monotonic_us()
        record: dict[str, Any] = {
            "trace_id": span.trace_id,
            "span_id": span.span_id,
            "parent_id": span.parent_id,
            "name": span.name,
            "pid": os.getpid(),
            "start_us": span.start_us,
            "duration_us": max(0, now - span.start_us),
            "status": span.status,
            "attrs": span.attrs,
            "events": span.events,
        }
        self.sink.emit(record)

    def emit_completed(
        self,
        name: str,
        parent: tuple[str, str] | None,
        start_us: int,
        duration_us: int,
        attrs: dict[str, Any] | None = None,
        status: str = "ok",
        events: list[dict[str, Any]] | None = None,
    ) -> None:
        trace_id = parent[0] if parent is not None else new_trace_id()
        parent_id = parent[1] if parent is not None else None
        record: dict[str, Any] = {
            "trace_id": trace_id,
            "span_id": _new_span_id(),
            "parent_id": parent_id,
            "name": name,
            "pid": os.getpid(),
            "start_us": start_us,
            "duration_us": max(0, duration_us),
            "status": status,
            "attrs": dict(attrs) if attrs else {},
            "events": list(events) if events else [],
        }
        self.sink.emit(record)


def parse_sink_spec(spec: str) -> tuple[str, Any]:
    """Split a ``--trace`` destination spec into ``(kind, arg)``.

    ``"stderr"`` → stderr sink, ``"ring"``/``"ring:N"`` → in-memory ring of N
    spans, anything else is treated as a file path for JSON lines.  Raises
    ``ValueError`` on a malformed ring capacity so bad specs fail at config
    time, not at first span.
    """

    text = str(spec).strip()
    if not text:
        raise ValueError("trace sink spec must not be empty")
    if text == "stderr":
        return ("stderr", None)
    if text == "ring":
        return ("ring", DEFAULT_RING_CAPACITY)
    if text.startswith("ring:"):
        raw = text[len("ring:") :]
        try:
            capacity = int(raw)
        except ValueError:
            raise ValueError("invalid ring capacity {!r}".format(raw)) from None
        if capacity <= 0:
            raise ValueError("ring capacity must be positive, got {}".format(capacity))
        return ("ring", capacity)
    return ("file", text)


def _build_sink(spec: str) -> Sink:
    kind, arg = parse_sink_spec(spec)
    if kind == "stderr":
        return StderrSink()
    if kind == "ring":
        return RingSink(arg)
    return FileSink(arg)


def configure(spec: str) -> Sink:
    """Arm the global tracer with a sink described by ``spec``."""

    global _tracer
    sink = _build_sink(spec)
    with _lock:
        previous = _tracer
        _tracer = Tracer(sink)
    if previous is not None:
        previous.sink.close()
    return sink


def configure_buffered() -> BufferSink:
    """Arm the global tracer with a drainable buffer (worker processes)."""

    global _tracer
    sink = BufferSink()
    with _lock:
        previous = _tracer
        _tracer = Tracer(sink)
    if previous is not None:
        previous.sink.close()
    return sink


def disable() -> None:
    """Disarm tracing; subsequent spans are no-ops."""

    global _tracer
    with _lock:
        previous = _tracer
        _tracer = None
    if previous is not None:
        previous.sink.close()


def enabled() -> bool:
    return _tracer is not None


def span(
    name: str,
    attrs: dict[str, Any] | None = None,
    parent: tuple[str, str] | None = None,
    trace_id: str | None = None,
    start_us: int | None = None,
) -> "Span | _NullSpan":
    """Start a span, or return the shared null span while disabled."""

    tracer = _tracer
    if tracer is None:
        return NULL_SPAN
    return tracer.start_span(
        name, attrs=attrs, parent=parent, trace_id=trace_id, start_us=start_us
    )


def current_context() -> tuple[str, str] | None:
    """The ``(trace_id, span_id)`` of the innermost active span, if any."""

    if _tracer is None:
        return None
    return _current_span.get()


def emit_span(
    name: str,
    parent: tuple[str, str] | None,
    start_us: int,
    duration_us: int,
    attrs: dict[str, Any] | None = None,
    status: str = "ok",
    events: list[dict[str, Any]] | None = None,
) -> None:
    """Emit an already-timed span (e.g. a queue wait measured externally)."""

    tracer = _tracer
    if tracer is None:
        return
    tracer.emit_completed(
        name, parent, start_us, duration_us, attrs=attrs, status=status, events=events
    )


def emit_raw(record: dict[str, Any]) -> None:
    """Re-emit a finished span dict verbatim (worker → parent shipping)."""

    tracer = _tracer
    if tracer is None:
        return
    tracer.sink.emit(record)


def ring_snapshot() -> dict[str, Any] | None:
    """Snapshot of the ring sink, or ``None`` when the sink is not a ring."""

    tracer = _tracer
    if tracer is None or not isinstance(tracer.sink, RingSink):
        return None
    return tracer.sink.snapshot()


def iter_trace_lines(path: str) -> Iterator[dict[str, Any]]:
    """Yield span dicts from a JSON-lines trace file, skipping blank lines."""

    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield json.loads(line)
