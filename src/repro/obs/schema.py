"""Span-record schema validation for trace JSON-lines files.

The documented span schema (see README "Observability") is a closed key
set: every record carries exactly ``trace_id``, ``span_id``, ``parent_id``,
``name``, ``pid``, ``start_us``, ``duration_us``, ``status``, ``attrs``
and ``events`` — no unknown keys, no missing keys.  Cross-record checks:
span IDs are unique, every non-null ``parent_id`` resolves to a span in
the same trace, and each span's event timestamps are monotonic and inside
the span's ``[start_us, start_us + duration_us]`` window.

Runnable as a module for CI::

    python -m repro.obs.schema /tmp/trace.jsonl
"""

from __future__ import annotations

import json
import sys
from typing import Any

__all__ = ["SPAN_KEYS", "validate_file", "validate_lines", "validate_span"]

SPAN_KEYS = frozenset(
    {
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "pid",
        "start_us",
        "duration_us",
        "status",
        "attrs",
        "events",
    }
)

_STATUSES = {"ok", "error"}

#: Event timestamps may trail the recorded span window by this many
#: microseconds: the error event in ``Span.__exit__`` is stamped an
#: instant before ``duration_us`` is, on the same clock.
_EVENT_SLACK_US = 1000


def _is_hex_id(value: Any) -> bool:
    return (
        isinstance(value, str)
        and len(value) == 16
        and all(ch in "0123456789abcdef" for ch in value)
    )


def validate_span(record: Any, where: str = "span") -> list[str]:
    """Structural errors for one span record (empty list = valid)."""

    errors: list[str] = []
    if not isinstance(record, dict):
        return ["{}: not a JSON object".format(where)]
    keys = set(record)
    unknown = keys - SPAN_KEYS
    missing = SPAN_KEYS - keys
    if unknown:
        errors.append("{}: unknown keys {}".format(where, sorted(unknown)))
    if missing:
        errors.append("{}: missing keys {}".format(where, sorted(missing)))
        return errors
    if not _is_hex_id(record["trace_id"]):
        errors.append("{}: trace_id is not a 16-hex id".format(where))
    if not _is_hex_id(record["span_id"]):
        errors.append("{}: span_id is not a 16-hex id".format(where))
    parent_id = record["parent_id"]
    if parent_id is not None and not _is_hex_id(parent_id):
        errors.append("{}: parent_id is neither null nor a 16-hex id".format(where))
    if not isinstance(record["name"], str) or not record["name"]:
        errors.append("{}: name must be a non-empty string".format(where))
    if not isinstance(record["pid"], int) or record["pid"] <= 0:
        errors.append("{}: pid must be a positive integer".format(where))
    start_us = record["start_us"]
    duration_us = record["duration_us"]
    if not isinstance(start_us, int) or start_us < 0:
        errors.append("{}: start_us must be a non-negative integer".format(where))
    if not isinstance(duration_us, int) or duration_us < 0:
        errors.append("{}: duration_us must be a non-negative integer".format(where))
    if record["status"] not in _STATUSES:
        errors.append("{}: status {!r} not in {}".format(where, record["status"], sorted(_STATUSES)))
    if not isinstance(record["attrs"], dict):
        errors.append("{}: attrs must be an object".format(where))
    events = record["events"]
    if not isinstance(events, list):
        errors.append("{}: events must be a list".format(where))
        return errors
    previous_t = None
    for position, event in enumerate(events):
        tag = "{} event[{}]".format(where, position)
        if not isinstance(event, dict):
            errors.append("{}: not an object".format(tag))
            continue
        if set(event) - {"name", "t_us", "attrs"}:
            errors.append("{}: unknown keys {}".format(tag, sorted(set(event) - {"name", "t_us", "attrs"})))
        if not isinstance(event.get("name"), str) or not event.get("name"):
            errors.append("{}: name must be a non-empty string".format(tag))
        t_us = event.get("t_us")
        if not isinstance(t_us, int):
            errors.append("{}: t_us must be an integer".format(tag))
            continue
        if isinstance(start_us, int) and isinstance(duration_us, int):
            if t_us < start_us or t_us > start_us + duration_us + _EVENT_SLACK_US:
                errors.append(
                    "{}: t_us {} outside span window [{}, {}]".format(
                        tag, t_us, start_us, start_us + duration_us
                    )
                )
        if previous_t is not None and t_us < previous_t:
            errors.append("{}: t_us {} precedes prior event {}".format(tag, t_us, previous_t))
        previous_t = t_us
    return errors


def validate_lines(records: list, max_errors: int = 50) -> list[str]:
    """Per-span plus cross-span errors for a batch of records."""

    errors: list[str] = []
    span_ids: dict[str, str] = {}
    for index, record in enumerate(records):
        where = "line {}".format(index + 1)
        errors.extend(validate_span(record, where))
        if isinstance(record, dict) and _is_hex_id(record.get("span_id")):
            span_id = record["span_id"]
            if span_id in span_ids:
                errors.append("{}: duplicate span_id {}".format(where, span_id))
            else:
                span_ids[span_id] = record.get("trace_id")
    for index, record in enumerate(records):
        if not isinstance(record, dict):
            continue
        parent_id = record.get("parent_id")
        if parent_id is None or not _is_hex_id(parent_id):
            continue
        where = "line {}".format(index + 1)
        parent_trace = span_ids.get(parent_id)
        if parent_trace is None:
            errors.append("{}: parent_id {} does not resolve".format(where, parent_id))
        elif parent_trace != record.get("trace_id"):
            errors.append(
                "{}: parent_id {} belongs to trace {}, span is in {}".format(
                    where, parent_id, parent_trace, record.get("trace_id")
                )
            )
    return errors[:max_errors]


def validate_file(path: str) -> tuple[int, list[str]]:
    """``(span_count, errors)`` for a JSON-lines trace file."""

    records = []
    errors: list[str] = []
    with open(path, "r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except ValueError:
                errors.append("line {}: not valid JSON".format(number))
    errors.extend(validate_lines(records))
    return len(records), errors


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if len(argv) != 1:
        print("usage: python -m repro.obs.schema TRACE_FILE", file=sys.stderr)
        return 2
    count, errors = validate_file(argv[0])
    if errors:
        for error in errors:
            print(error, file=sys.stderr)
        print("{}: {} spans, {} schema errors".format(argv[0], count, len(errors)), file=sys.stderr)
        return 1
    print("{}: {} spans, schema ok".format(argv[0], count))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
