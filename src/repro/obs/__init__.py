"""Observability plane: tracing, structured logging, Prometheus exposition.

``repro.obs.trace`` is the span tracer (off by default, no-op when
disabled), ``repro.obs.logging`` the structured stderr logger,
``repro.obs.prom`` the Prometheus text renderer for the metrics registry,
``repro.obs.schema`` the span-schema validator (also runnable as
``python -m repro.obs.schema``), and ``repro.obs.view`` the trace-file
renderers behind the ``trace`` CLI group.
"""

from .logging import access_log, log_event
from .prom import prometheus_text
from .trace import (
    NULL_SPAN,
    configure,
    configure_buffered,
    current_context,
    disable,
    emit_raw,
    emit_span,
    enabled,
    monotonic_us,
    new_trace_id,
    ring_snapshot,
    span,
)

__all__ = [
    "NULL_SPAN",
    "access_log",
    "configure",
    "configure_buffered",
    "current_context",
    "disable",
    "emit_raw",
    "emit_span",
    "enabled",
    "log_event",
    "monotonic_us",
    "new_trace_id",
    "prometheus_text",
    "ring_snapshot",
    "span",
]
