"""Render trace JSON-lines files: stage-latency summary, per-request trees,
slowest-roots listing.  Pure functions over span dicts so the CLI layer
only formats rows."""

from __future__ import annotations

from typing import Any

from .trace import iter_trace_lines

__all__ = ["load_spans", "slow_rows", "summary_rows", "tree_rows"]


def load_spans(path: str) -> list[dict[str, Any]]:
    return list(iter_trace_lines(path))


def _ms(us: int) -> float:
    return round(us / 1000.0, 3)


def _attr_text(span: dict[str, Any], limit: int = 60) -> str:
    parts = ["{}={}".format(key, value) for key, value in sorted(span.get("attrs", {}).items())]
    for event in span.get("events", []):
        parts.append("!{}".format(event.get("name")))
    text = " ".join(parts)
    return text if len(text) <= limit else text[: limit - 1] + "…"


def summary_rows(spans: list[dict[str, Any]]) -> list[dict[str, Any]]:
    """Per-span-name aggregates, sorted by total time descending."""

    groups: dict[str, list[int]] = {}
    errors: dict[str, int] = {}
    for span in spans:
        name = span.get("name", "?")
        groups.setdefault(name, []).append(int(span.get("duration_us", 0)))
        if span.get("status") == "error":
            errors[name] = errors.get(name, 0) + 1
    rows = []
    for name, durations in groups.items():
        total = sum(durations)
        rows.append(
            {
                "span": name,
                "count": len(durations),
                "total_ms": _ms(total),
                "mean_ms": _ms(total // max(1, len(durations))),
                "max_ms": _ms(max(durations)),
                "errors": errors.get(name, 0),
            }
        )
    rows.sort(key=lambda row: (-row["total_ms"], row["span"]))
    return rows


def _trace_groups(spans: list[dict[str, Any]]) -> list[tuple[str, list[dict[str, Any]]]]:
    groups: dict[str, list[dict[str, Any]]] = {}
    for span in spans:
        groups.setdefault(span.get("trace_id", "?"), []).append(span)
    ordered = sorted(
        groups.items(), key=lambda item: min(s.get("start_us", 0) for s in item[1])
    )
    return ordered


def tree_rows(
    spans: list[dict[str, Any]],
    trace_id: str | None = None,
    limit: int | None = None,
) -> list[dict[str, Any]]:
    """Depth-first rows per trace: indentation shows the parent chain.

    Spans whose parent never made it into the file (dropped by a ring, or a
    worker that died before shipping) are promoted to roots so the tree
    still renders complete.
    """

    rows: list[dict[str, Any]] = []
    groups = _trace_groups(spans)
    if trace_id is not None:
        groups = [(tid, group) for tid, group in groups if tid.startswith(trace_id)]
    if limit is not None:
        groups = groups[:limit]
    for tid, group in groups:
        by_id = {span["span_id"]: span for span in group if span.get("span_id")}
        children: dict[str | None, list[dict[str, Any]]] = {}
        for span in group:
            parent = span.get("parent_id")
            if parent is not None and parent not in by_id:
                parent = None
            children.setdefault(parent, []).append(span)
        for bucket in children.values():
            bucket.sort(key=lambda s: (s.get("start_us", 0), s.get("span_id", "")))

        def _walk(span: dict[str, Any], depth: int) -> None:
            rows.append(
                {
                    "trace": tid[:8],
                    "span": "  " * depth + span.get("name", "?"),
                    "ms": _ms(int(span.get("duration_us", 0))),
                    "pid": span.get("pid"),
                    "status": span.get("status", "?"),
                    "detail": _attr_text(span),
                }
            )
            for child in children.get(span.get("span_id"), []):
                _walk(child, depth + 1)

        for root in children.get(None, []):
            _walk(root, 0)
    return rows


def slow_rows(spans: list[dict[str, Any]], top: int = 10) -> list[dict[str, Any]]:
    """The slowest root spans (requests), longest first."""

    span_ids = {span.get("span_id") for span in spans}
    roots = [
        span
        for span in spans
        if span.get("parent_id") is None or span.get("parent_id") not in span_ids
    ]
    roots.sort(key=lambda s: -int(s.get("duration_us", 0)))
    return [
        {
            "trace": span.get("trace_id", "?")[:16],
            "span": span.get("name", "?"),
            "ms": _ms(int(span.get("duration_us", 0))),
            "status": span.get("status", "?"),
            "detail": _attr_text(span),
        }
        for span in roots[:top]
    ]
