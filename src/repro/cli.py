"""Command-line entry point.

``greater <experiment>`` runs one of the paper's experiments and prints its
rows; ``greater list`` shows what is available.  The heavy lifting lives in
:mod:`repro.experiments.figures`, so the CLI, the benchmarks and the examples
all produce the same numbers.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.experiments import (
    dataset_statistics,
    fig2_token_ambiguity,
    fig4_flattening_bias,
    fig5_correlation_heatmap,
    fig7_overall_fidelity,
    fig8_semantic_enhancement,
    fig9_connecting_setups,
    fig10_ablation,
    sec442_special_transform,
)
from repro.experiments.harness import ExperimentConfig

EXPERIMENTS = {
    "fig2": (fig2_token_ambiguity, "token ambiguity of repeated numerical labels"),
    "fig4": (fig4_flattening_bias, "flattening dimensionality and engaged-subject bias"),
    "fig5": (fig5_correlation_heatmap, "correlation heatmap before/after noisy-column removal"),
    "fig7": (fig7_overall_fidelity, "overall fidelity: GReaTER vs DEREC vs direct flattening"),
    "fig8": (fig8_semantic_enhancement, "semantic enhancement setups"),
    "fig9": (fig9_connecting_setups, "cross-table connecting setups"),
    "fig10": (fig10_ablation, "ablation table (improved/worsened pair counts)"),
    "sec442": (sec442_special_transform, "dataset-specific caret->'and' transformation"),
    "dataset": (dataset_statistics, "DIGIX-like dataset statistics"),
}

#: Experiments that accept an :class:`ExperimentConfig`.
_CONFIGURABLE = {"fig5", "fig7", "fig8", "fig9", "fig10", "sec442", "dataset"}


def _print_rows(rows: list[dict]) -> None:
    if not rows:
        print("(no rows)")
        return
    keys: list = []
    seen = set()
    for row in rows:
        for key in row:
            if key not in seen:
                seen.add(key)
                keys.append(key)
    widths = {key: max(len(str(key)), max(len(str(row.get(key, ""))) for row in rows)) for key in keys}
    header = "  ".join(str(key).ljust(widths[key]) for key in keys)
    print(header)
    print("-" * len(header))
    for row in rows:
        print("  ".join(str(row.get(key, "")).ljust(widths[key]) for key in keys))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="greater",
        description="Run the GReaTER reproduction experiments.",
    )
    parser.add_argument("experiment", choices=sorted(EXPERIMENTS) + ["list"],
                        help="experiment to run, or 'list' to show descriptions")
    parser.add_argument("--trials", type=int, default=None,
                        help="number of task-ID trials (defaults to the quick setting)")
    parser.add_argument("--users-per-task", type=int, default=None,
                        help="number of users per task subgroup")
    parser.add_argument("--seed", type=int, default=7, help="random seed")
    parser.add_argument("--json", action="store_true", help="print the rows as JSON")
    return parser


def _experiment_config(args) -> ExperimentConfig:
    base = ExperimentConfig(seed=args.seed)
    return ExperimentConfig(
        n_trials=args.trials if args.trials is not None else base.n_trials,
        n_users_per_task=args.users_per_task if args.users_per_task is not None else base.n_users_per_task,
        ads_rows_per_user=base.ads_rows_per_user,
        feeds_rows_per_user=base.feeds_rows_per_user,
        seed=args.seed,
    )


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.experiment == "list":
        for name in sorted(EXPERIMENTS):
            print("{:8s} {}".format(name, EXPERIMENTS[name][1]))
        return 0

    function, _ = EXPERIMENTS[args.experiment]
    if args.experiment in _CONFIGURABLE:
        outcome = function(config=_experiment_config(args))
    else:
        outcome = function()

    rows = outcome.get("rows", [])
    if args.json:
        print(json.dumps(rows, indent=2, default=str))
    else:
        _print_rows(rows)
    return 0


if __name__ == "__main__":
    sys.exit(main())
