"""Command-line entry point.

``greater <experiment>`` runs one of the paper's experiments and prints its
rows; ``greater list`` shows what is available.  The heavy lifting lives in
:mod:`repro.experiments.figures`, so the CLI, the benchmarks and the examples
all produce the same numbers.

The artifact-store workflow adds subcommands on top of the experiments
(every one supports ``--json`` like the experiment commands):

* ``greater fit`` — fit a pipeline on a DIGIX-like trial and save the
  fitted bundle (see :mod:`repro.store`);
* ``greater sample`` — load a bundle and sample synthetic tables without
  retraining (optionally writing the flat table to CSV);
* ``greater serve-bench`` — serve repeated sampling requests from a bundle
  through :class:`repro.serving.SynthesisService` at several shard counts,
  asserting that every shard count produces the identical table;
* ``greater serve`` — run the asyncio HTTP serving front end on a bundle
  (thread or process executor, bounded request queue with 429
  backpressure, ``/stats`` metrics — see :mod:`repro.serving.server`);
* ``greater client`` — query a running server (table/rows/database
  sampling, stats, health) and print the rows like every other command;
* ``greater trace`` — summarize, print, or rank a trace file written by
  ``serve --trace PATH`` (actions: summary, tree, slow — see
  :mod:`repro.obs`).

The relational-schema workflow (see :mod:`repro.schema`) adds:

* ``greater schema infer --data-dir DIR`` — discover primary/foreign keys
  across a directory of CSVs and optionally write the schema-graph JSON;
* ``greater schema show`` — print a saved schema graph (or the graph
  embedded in a multitable bundle) with its topological order;
* ``greater run --pipeline multitable --data-dir DIR`` — fit the
  whole-database pipeline on the CSVs, sample a synthetic database, and
  optionally persist the fitted bundle and the synthetic CSVs.

The artifact-registry workflow (see :mod:`repro.registry`) adds:

* ``greater fit/run --registry DIR`` — save through the content-addressed
  registry; a repeated fit with an identical spec (pipeline config, seed,
  resolved engines, dataset fingerprint) becomes a verified cache hit.
  ``--json`` output carries the full ``artifact_digest`` and registry
  path, so scripts chain straight into ``serve``;
* ``greater serve --registry DIR --digest HEX`` — serve an artifact by
  content digest out of the registry (workers resolve the same digest);
* ``greater registry ls|show|gc|migrate|fingerprint`` — inspect artifacts
  and their shared parts, reclaim unreferenced objects, batch-apply
  format migrations to bundle files, and fingerprint a dataset directory.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.experiments import (
    dataset_statistics,
    fig2_token_ambiguity,
    fig4_flattening_bias,
    fig5_correlation_heatmap,
    fig7_overall_fidelity,
    fig8_semantic_enhancement,
    fig9_connecting_setups,
    fig10_ablation,
    sec442_special_transform,
)
from repro.experiments.harness import ExperimentConfig

EXPERIMENTS = {
    "fig2": (fig2_token_ambiguity, "token ambiguity of repeated numerical labels"),
    "fig4": (fig4_flattening_bias, "flattening dimensionality and engaged-subject bias"),
    "fig5": (fig5_correlation_heatmap, "correlation heatmap before/after noisy-column removal"),
    "fig7": (fig7_overall_fidelity, "overall fidelity: GReaTER vs DEREC vs direct flattening"),
    "fig8": (fig8_semantic_enhancement, "semantic enhancement setups"),
    "fig9": (fig9_connecting_setups, "cross-table connecting setups"),
    "fig10": (fig10_ablation, "ablation table (improved/worsened pair counts)"),
    "sec442": (sec442_special_transform, "dataset-specific caret->'and' transformation"),
    "dataset": (dataset_statistics, "DIGIX-like dataset statistics"),
}

#: Experiments that accept an :class:`ExperimentConfig`.
_CONFIGURABLE = {"fig5", "fig7", "fig8", "fig9", "fig10", "sec442", "dataset"}

#: Artifact-store and schema subcommands (name -> description), shown by ``list``.
COMMANDS = {
    "fit": "fit a pipeline on a DIGIX-like trial and save the fitted bundle",
    "sample": "load a fitted bundle and sample synthetic tables (no retraining)",
    "serve-bench": "serve sampling requests from a bundle at several shard counts",
    "serve": "run the HTTP serving front end on a bundle (thread/process executor)",
    "client": "query a running 'greater serve' server (table, rows, database, stats)",
    "trace": "inspect a trace file from serve --trace (actions: summary, tree, slow)",
    "schema": "infer or show a relational schema graph (actions: infer, show)",
    "run": "fit the multitable pipeline on a directory of CSVs and sample a database",
    "registry": "inspect or maintain an artifact registry "
                "(actions: ls, show, gc, migrate, fingerprint)",
}

_PIPELINES = ("greater", "direct_flatten", "derec")


def _print_rows(rows: list[dict]) -> None:
    if not rows:
        print("(no rows)")
        return
    keys: list = []
    seen = set()
    for row in rows:
        for key in row:
            if key not in seen:
                seen.add(key)
                keys.append(key)
    widths = {key: max(len(str(key)), max(len(str(row.get(key, ""))) for row in rows)) for key in keys}
    header = "  ".join(str(key).ljust(widths[key]) for key in keys)
    print(header)
    print("-" * len(header))
    for row in rows:
        print("  ".join(str(row.get(key, "")).ljust(widths[key]) for key in keys))


def _emit_rows(rows: list[dict], as_json: bool) -> None:
    """Shared output path: aligned table or the experiments' JSON format."""
    if as_json:
        print(json.dumps(rows, indent=2, default=str))
    else:
        _print_rows(rows)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="greater",
        description="Run the GReaTER reproduction experiments.",
    )
    parser.add_argument("experiment", choices=sorted(EXPERIMENTS) + ["list"],
                        help="experiment to run, or 'list' to show descriptions")
    parser.add_argument("--trials", type=int, default=None,
                        help="number of task-ID trials (defaults to the quick setting)")
    parser.add_argument("--users-per-task", type=int, default=None,
                        help="number of users per task subgroup")
    parser.add_argument("--seed", type=int, default=7, help="random seed")
    parser.add_argument("--json", action="store_true", help="print the rows as JSON")
    return parser


def _experiment_config(args) -> ExperimentConfig:
    base = ExperimentConfig(seed=args.seed)
    return ExperimentConfig(
        n_trials=args.trials if args.trials is not None else base.n_trials,
        n_users_per_task=args.users_per_task if args.users_per_task is not None else base.n_users_per_task,
        ads_rows_per_user=base.ads_rows_per_user,
        feeds_rows_per_user=base.feeds_rows_per_user,
        seed=args.seed,
    )


# ---------------------------------------------------------------------------
# artifact-store subcommands
# ---------------------------------------------------------------------------

def _command_parser(command: str) -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="greater {}".format(command),
        description=COMMANDS[command],
    )
    parser.add_argument("--json", action="store_true", help="print the rows as JSON")
    if command == "trace":
        parser.add_argument("action", choices=("summary", "tree", "slow"),
                            help="summary: per-span-name timing rollup; tree: the "
                                 "stitched span trees; slow: slowest root spans")
        parser.add_argument("path", help="trace file written by serve --trace PATH")
        parser.add_argument("--trace-id", default=None,
                            help="tree action: show only this trace id (prefix ok)")
        parser.add_argument("--top", type=int, default=10,
                            help="slow action: how many root spans to rank (default 10)")
        parser.add_argument("--limit", type=int, default=None,
                            help="tree action: cap the printed rows")
        return parser
    if command == "schema":
        parser.add_argument("action", choices=("infer", "show"),
                            help="infer a schema graph from CSVs, or show a saved one")
        parser.add_argument("--data-dir", default=None,
                            help="directory of CSV files (one table per file)")
        parser.add_argument("--out", default=None,
                            help="write the inferred schema-graph JSON to this path")
        parser.add_argument("--schema", default=None,
                            help="schema-graph JSON path to show")
        parser.add_argument("--bundle", default=None,
                            help="multitable bundle whose embedded graph to show")
        return parser
    if command == "registry":
        parser.add_argument("action",
                            choices=("ls", "show", "gc", "migrate", "fingerprint"),
                            help="ls: artifacts in a registry; show: one artifact's "
                                 "parts, refcounts and bound runs; gc: delete "
                                 "unreferenced objects; migrate: rewrite bundle files "
                                 "in the current format; fingerprint: hash a dataset "
                                 "directory")
        parser.add_argument("--registry", default=None,
                            help="registry directory (ls, show, gc)")
        parser.add_argument("--digest", default=None,
                            help="artifact digest or unique prefix (show)")
        parser.add_argument("paths", nargs="*",
                            help="bundle files (migrate) or one dataset directory "
                                 "(fingerprint)")
        parser.add_argument("--out", default=None,
                            help="migrate: write the rewritten bundle here instead of "
                                 "in place (single input only)")
        return parser
    if command == "run":
        parser.add_argument("--pipeline", choices=("multitable",), default="multitable",
                            help="which pipeline to run (multitable)")
        parser.add_argument("--data-dir", required=True,
                            help="directory of CSV files (one table per file)")
        parser.add_argument("--schema", default=None,
                            help="optional schema-graph JSON (skips inference)")
        parser.add_argument("--bundle", default=None,
                            help="optionally save the fitted bundle to this path")
        parser.add_argument("--registry", default=None,
                            help="save through the artifact registry at this directory "
                                 "(an identical pipeline/seed/dataset spec becomes a "
                                 "cache hit — no refit)")
        parser.add_argument("--compress", action="store_true",
                            help="compress the bundle's array parts")
        parser.add_argument("--n", type=int, default=None,
                            help="rows per root table (default: training sizes)")
        parser.add_argument("--seed", type=int, default=7, help="random seed")
        parser.add_argument("--out-dir", default=None,
                            help="write the synthetic tables as CSVs into this directory")
        parser.add_argument("--chunk-rows", type=int, default=None,
                            help="stream each table to --out-dir in chunks of this many "
                                 "rows, spilling completed tables to disk so at most one "
                                 "table is in RAM (requires --out-dir)")
        parser.add_argument("--spool", default=None,
                            help="spill completed tables into this directory instead of "
                                 "a temporary one (requires --chunk-rows; keeps parts "
                                 "on disk so an interrupted run can --resume)")
        parser.add_argument("--resume", action="store_true",
                            help="resume an interrupted spill in --spool: tables whose "
                                 "spill completed are reused, the rest regenerate "
                                 "byte-identically (requires --spool)")
        return parser
    if command == "serve":
        parser.add_argument("--bundle", default=None,
                            help="bundle path written by 'greater fit'")
        parser.add_argument("--registry", default=None,
                            help="serve an artifact out of the registry at this "
                                 "directory instead of a bundle file (needs --digest)")
        parser.add_argument("--digest", default=None,
                            help="artifact digest or unique prefix inside --registry")
        parser.add_argument("--host", default="127.0.0.1", help="bind address")
        parser.add_argument("--port", type=int, default=0,
                            help="bind port (default 0: pick an ephemeral port)")
        parser.add_argument("--workers", type=int, default=1,
                            help="sampling workers (shards) behind the server")
        parser.add_argument("--executor", choices=("thread", "process"), default="thread",
                            help="where sampling runs: in-process threads or a "
                                 "bundle-loaded worker-process pool")
        parser.add_argument("--mmap", action="store_true",
                            help="memory-map the bundle's count tables on load")
        parser.add_argument("--block-size", type=int, default=64,
                            help="synthetic subjects per serving block (default 64)")
        parser.add_argument("--max-queue", type=int, default=64,
                            help="in-flight request bound before 429 rejection")
        parser.add_argument("--ready-file", default=None,
                            help="write 'host port' here once the socket listens")
        parser.add_argument("--max-seconds", type=float, default=None,
                            help="stop after this many seconds (default: run forever)")
        parser.add_argument("--timeout-s", type=float, default=None,
                            help="default per-request deadline in seconds (requests "
                                 "may override with their own timeout_s)")
        parser.add_argument("--retries", type=int, default=2,
                            help="re-dispatches of a task orphaned by a worker "
                                 "crash before the request fails (default 2)")
        parser.add_argument("--breaker-threshold", type=int, default=5,
                            help="worker deaths within the breaker window that trip "
                                 "the crash-loop breaker (0 disables; default 5)")
        parser.add_argument("--degraded-mode", choices=("serial", "fail_fast"),
                            default="serial",
                            help="while the breaker is open: sample serially "
                                 "in-process, or fail fast with 503 (default serial)")
        parser.add_argument("--faults", default=None,
                            help="fault-injection plan, e.g. 'worker_crash%%25' "
                                 "(see repro.faults; for chaos testing)")
        parser.add_argument("--drain-timeout-s", type=float, default=30.0,
                            help="seconds SIGTERM waits for in-flight requests "
                                 "before exiting (default 30)")
        parser.add_argument("--trace", default=None,
                            help="arm request tracing: a span-file path, 'stderr', "
                                 "or 'ring[:capacity]' (exposes GET /trace); "
                                 "disabled by default at zero overhead")
        return parser
    if command == "client":
        parser.add_argument("mode",
                            choices=("table", "rows", "database", "stats", "health",
                                     "ready"),
                            help="what to request from the server")
        parser.add_argument("--host", default="127.0.0.1", help="server address")
        parser.add_argument("--port", type=int, required=True, help="server port")
        parser.add_argument("--n", type=int, default=None,
                            help="subjects (table), rows (rows) or rows per root (database)")
        parser.add_argument("--seed", type=int, default=None, help="sampling seed")
        parser.add_argument("--conditions", default=None,
                            help="JSON object of column: value conditions (rows mode)")
        parser.add_argument("--stream", action="store_true",
                            help="table mode: request a chunked ndjson stream instead "
                                 "of one JSON body")
        parser.add_argument("--timeout", type=float, default=120.0,
                            help="request timeout in seconds (default 120)")
        parser.add_argument("--deadline-s", type=float, default=None,
                            help="server-side deadline for this request (sent as "
                                 "timeout_s; the server answers 503 when missed)")
        return parser
    if command == "fit":
        parser.add_argument("--pipeline", choices=_PIPELINES, default="greater",
                            help="which pipeline to fit (default greater)")
        parser.add_argument("--bundle", default=None,
                            help="output bundle path for the fitted pipeline")
        parser.add_argument("--registry", default=None,
                            help="save through the artifact registry at this directory "
                                 "(an identical pipeline/seed/dataset spec becomes a "
                                 "cache hit — no refit)")
        parser.add_argument("--seed", type=int, default=7, help="random seed")
        parser.add_argument("--users-per-task", type=int, default=12,
                            help="users per task subgroup of the generated trial")
        parser.add_argument("--semantic-level", default="none",
                            choices=("none", "differentiability", "understandability"),
                            help="Data Semantic Enhancement level (default none)")
        parser.add_argument("--compress", action="store_true",
                            help="compress the bundle's array parts")
    else:
        parser.add_argument("--bundle", required=True,
                            help="bundle path written by 'greater fit'")
        parser.add_argument("--n", type=int, default=None,
                            help="synthetic subjects to sample (default: training size)")
        parser.add_argument("--seed", type=int, default=None,
                            help="sampling seed (default: the bundle's fit seed)")
    if command == "sample":
        parser.add_argument("--out", default=None,
                            help="optionally write the synthetic flat table to this CSV path")
        parser.add_argument("--chunk-rows", type=int, default=None,
                            help="stream the table to --out in blocks of this many "
                                 "subjects instead of materializing it (requires --out)")
    if command == "serve-bench":
        parser.add_argument("--requests", type=int, default=4,
                            help="sampling requests per shard count (default 4)")
        parser.add_argument("--shards", default="1,2,4",
                            help="comma-separated worker counts to benchmark (default 1,2,4)")
        parser.add_argument("--block-size", type=int, default=64,
                            help="synthetic subjects per serving block (default 64)")
    return parser


def _run_fit(args) -> list[dict]:
    from repro.connecting.connector import ConnectorConfig
    from repro.enhancement.enhancer import EnhancerConfig
    from repro.pipelines.config import PipelineConfig
    from repro.pipelines.derec import DERECPipeline
    from repro.pipelines.flatten_baseline import DirectFlattenPipeline
    from repro.pipelines.greater import GReaTERPipeline

    if not args.bundle and not args.registry:
        raise SystemExit("fit requires --bundle and/or --registry")
    pipelines = {"greater": GReaTERPipeline, "direct_flatten": DirectFlattenPipeline,
                 "derec": DERECPipeline}
    experiment = ExperimentConfig(n_trials=1, n_users_per_task=args.users_per_task,
                                  seed=args.seed)
    trial = experiment.dataset().trials()[0]
    config = PipelineConfig(
        seed=args.seed,
        drop_columns=("task_id",),
        enhancer=EnhancerConfig(semantic_level=args.semantic_level, seed=args.seed),
        connector=ConnectorConfig(remove_noisy_columns=False),
    )
    pipeline = pipelines[args.pipeline](config)
    cache_hit = None
    save_s = 0.0
    start = time.perf_counter()
    if args.registry:
        from repro.registry import Registry

        result = Registry(args.registry).fit_or_load(
            pipeline, trial.ads, trial.feeds, compress=args.compress)
        fitted, digest, cache_hit = result.fitted, result.digest, result.cache_hit
        fit_s = time.perf_counter() - start
    else:
        fitted = pipeline.fit(trial.ads, trial.feeds)
        fit_s = time.perf_counter() - start
        digest = None
    if args.bundle:
        start = time.perf_counter()
        digest = fitted.save(args.bundle, compress=args.compress)
        save_s = time.perf_counter() - start
    row = {
        "command": "fit",
        "pipeline": args.pipeline,
        "digest": digest[:12],
        # the full digest + registry path let scripts chain
        # ``fit --json`` -> ``serve --registry ... --digest ...`` directly
        "artifact_digest": digest,
        "n_training_subjects": fitted.n_training_subjects,
        "seed": args.seed,
        "fit_s": round(fit_s, 4),
        "save_s": round(save_s, 4),
    }
    if args.bundle:
        row["bundle"] = args.bundle
    if args.registry:
        row["registry"] = args.registry
        row["cache_hit"] = cache_hit
    return [row]


def _run_sample(args) -> list[dict]:
    from repro.frame.io import write_csv
    from repro.store.bundle import load_fitted_pipeline
    from repro.store.stream import CsvTableSink

    if args.chunk_rows is not None and not args.out:
        raise SystemExit("sample --chunk-rows requires --out")
    start = time.perf_counter()
    fitted, digest = load_fitted_pipeline(args.bundle)
    load_s = time.perf_counter() - start
    row = {
        "command": "sample",
        "pipeline": fitted.name,
        "digest": digest[:12],
        "seed": fitted.config.seed if args.seed is None else args.seed,
        "load_s": round(load_s, 4),
    }
    start = time.perf_counter()
    if args.chunk_rows is not None:
        with CsvTableSink(args.out) as sink:
            sink.write_all(fitted.iter_sample_flat(
                n_subjects=args.n, seed=args.seed, chunk_rows=args.chunk_rows))
            rows_written, chunks_written = sink.rows_written, sink.chunks_written
        row.update(rows=rows_written, chunks=chunks_written,
                   chunk_rows=args.chunk_rows, out=args.out)
    else:
        result = fitted.sample(n_subjects=args.n, seed=args.seed)
        row.update(rows=result.synthetic_flat.num_rows,
                   columns=result.synthetic_flat.num_columns)
        if args.out:
            write_csv(result.synthetic_flat, args.out)
            row["out"] = args.out
    row["sample_s"] = round(time.perf_counter() - start, 4)
    return [row]


def _run_serve_bench(args) -> list[dict]:
    from repro.serving import ServingConfig, SynthesisService

    try:
        shard_counts = [int(part) for part in str(args.shards).split(",") if part.strip()]
    except ValueError:
        raise SystemExit("--shards must be a comma-separated list of integers")
    base_seed = 0 if args.seed is None else args.seed
    rows: list[dict] = []
    all_identical = True
    reference = None
    for shards in shard_counts:
        service = SynthesisService.from_bundle(args.bundle, ServingConfig(
            shards=shards, block_size=args.block_size, cache_bytes=0))
        if service.is_multitable:
            raise SystemExit(
                "serve-bench serves flat-table bundles; {} is a multitable bundle "
                "(sample whole databases with 'run' or "
                "SynthesisService.sample_database)".format(args.bundle))
        n = service.fitted._resolve_n(args.n)
        start = time.perf_counter()
        tables = [service.sample_table(n, seed=base_seed + index)
                  for index in range(args.requests)]
        elapsed = time.perf_counter() - start
        if reference is None:
            reference = tables
        identical = all(a == b for a, b in zip(tables, reference))
        all_identical = all_identical and identical
        total_rows = sum(table.num_rows for table in tables)
        rows.append({
            "command": "serve-bench",
            "shards": shards,
            "requests": args.requests,
            "n_subjects": n,
            "seconds": round(elapsed, 4),
            "requests_per_s": round(args.requests / elapsed, 3) if elapsed > 0 else float("inf"),
            "rows_per_s": round(total_rows / elapsed, 1) if elapsed > 0 else float("inf"),
            "identical_across_shards": identical,
        })
    if not all_identical:
        _emit_rows(rows, args.json)
        raise SystemExit("ERROR: sharded serving output diverged between shard counts")
    return rows


def _run_serve(args) -> list[dict]:
    from repro.serving import ServingConfig, SynthesisService
    from repro.serving.server import run_server
    from repro.store.atomic import atomic_write_text

    if bool(args.bundle) == bool(args.registry):
        raise SystemExit("serve requires exactly one of --bundle or --registry")
    if args.registry and not args.digest:
        raise SystemExit("serve --registry requires --digest")
    config = ServingConfig(shards=args.workers, block_size=args.block_size,
                           executor=args.executor, mmap=args.mmap,
                           timeout_s=args.timeout_s, retries=args.retries,
                           breaker_threshold=args.breaker_threshold,
                           degraded_mode=args.degraded_mode, faults=args.faults,
                           trace=args.trace)
    if args.registry:
        service = SynthesisService.from_registry(args.registry, args.digest, config)
        source = "{}#{}".format(args.registry, service.digest[:12])
    else:
        service = SynthesisService.from_bundle(args.bundle, config)
        source = args.bundle
    started = time.perf_counter()

    def ready(host, port):
        if args.ready_file:
            atomic_write_text(args.ready_file, "{} {}\n".format(host, port))
        print("serving artifact {} on http://{}:{} ({} {} worker{})".format(
            service.digest[:12], host, port, args.workers, args.executor,
            "s" if args.workers != 1 else ""), file=sys.stderr, flush=True)

    try:
        run_server(service, host=args.host, port=args.port,
                   max_queue=args.max_queue, ready_callback=ready,
                   max_seconds=args.max_seconds,
                   drain_timeout_s=args.drain_timeout_s)
    finally:
        service.close()
    stats = service.stats()
    return [{
        "command": "serve",
        "bundle": source,
        "digest": service.digest[:12],
        "executor": args.executor,
        "workers": args.workers,
        "uptime_s": round(time.perf_counter() - started, 3),
        "table_requests": stats["table_requests"],
        "row_requests": stats["row_requests"],
        "database_requests": stats["database_requests"],
    }]


def _run_client(args) -> list[dict]:
    from repro.serving.server import request_json

    def call(method, path, payload=None):
        try:
            status, body = request_json(args.host, args.port, method, path,
                                        payload, timeout=args.timeout)
        except OSError as error:
            raise SystemExit("cannot reach {}:{}: {}".format(args.host, args.port, error))
        if status != 200:
            raise SystemExit("server returned {}: {}".format(
                status, (body or {}).get("error", body)))
        return body

    if args.mode == "health":
        return [{"command": "client health", **call("GET", "/healthz")}]
    if args.mode == "ready":
        # 503 is a meaningful readiness answer (draining / degraded), not a
        # failure of the client — report the body either way
        try:
            status, body = request_json(args.host, args.port, "GET", "/readyz",
                                        timeout=args.timeout)
        except OSError as error:
            raise SystemExit("cannot reach {}:{}: {}".format(args.host, args.port, error))
        return [{"command": "client ready", "status": status, **(body or {})}]
    if args.mode == "stats":
        stats = call("GET", "/stats")
        flat = {key: value for key, value in stats.items()
                if not isinstance(value, dict)}
        flat.update({"server_" + key: value
                     for key, value in stats.get("server", {}).items()})
        for endpoint, histogram in stats.get("latency", {}).items():
            flat["{}_count".format(endpoint)] = histogram["count"]
            flat["{}_mean_ms".format(endpoint)] = round(
                1000.0 * histogram["total_s"] / max(histogram["count"], 1), 3)
            flat["{}_max_ms".format(endpoint)] = round(1000.0 * histogram["max_s"], 3)
        return [{"command": "client stats", **flat}]
    payload = {}
    if args.n is not None:
        payload["n"] = args.n
    if args.seed is not None:
        payload["seed"] = args.seed
    if args.deadline_s is not None:
        payload["timeout_s"] = args.deadline_s
    if args.mode == "table":
        if args.stream:
            from repro.serving.server import IncompleteStream, request_json_stream

            try:
                status, lines = request_json_stream(args.host, args.port, payload,
                                                    timeout=args.timeout)
            except IncompleteStream as error:
                raise SystemExit("stream dropped mid-transfer ({}); the partial "
                                 "table is NOT complete".format(error))
            except OSError as error:
                raise SystemExit("cannot reach {}:{}: {}".format(
                    args.host, args.port, error))
            if status != 200:
                raise SystemExit("server returned {}: {}".format(
                    status, (lines or {}).get("error", lines)))
            # the final line is the {"done": ..., "chunks": ..., "rows": N}
            # summary; every other line is a block payload with row records
            return [row for line in lines if not line.get("done")
                    for row in line.get("rows", [])]
        return call("POST", "/sample_table", payload)["rows"]
    if args.mode == "rows":
        if args.n is None:
            raise SystemExit("client rows requires --n")
        if args.conditions:
            try:
                payload["conditions"] = json.loads(args.conditions)
            except json.JSONDecodeError as error:
                raise SystemExit("--conditions must be a JSON object: {}".format(error))
        return call("POST", "/sample_rows", payload)["rows"]
    tables = call("POST", "/sample_database", payload)["tables"]
    return [{"command": "client database", "table": name,
             "rows": len(table["rows"]), "columns": len(table["columns"])}
            for name, table in sorted(tables.items())]


def _run_trace(args) -> list[dict]:
    from repro.obs.view import load_spans, slow_rows, summary_rows, tree_rows

    try:
        spans = load_spans(args.path)
    except OSError as error:
        raise SystemExit("cannot read trace file {}: {}".format(args.path, error))
    if not spans:
        raise SystemExit("no spans in {} (was the server run with --trace, and "
                         "did it handle any requests?)".format(args.path))
    if args.action == "summary":
        return [{"command": "trace summary", **row} for row in summary_rows(spans)]
    if args.action == "slow":
        return [{"command": "trace slow", **row}
                for row in slow_rows(spans, top=args.top)]
    trace_id = None
    if args.trace_id:
        matches = sorted({span["trace_id"] for span in spans
                          if span["trace_id"].startswith(args.trace_id)})
        if not matches:
            raise SystemExit("no trace id starting with {!r} in {}".format(
                args.trace_id, args.path))
        if len(matches) > 1:
            raise SystemExit("trace id prefix {!r} is ambiguous: {}".format(
                args.trace_id, ", ".join(matches)))
        trace_id = matches[0]
    return tree_rows(spans, trace_id=trace_id, limit=args.limit)


def _load_graph_for_show(args):
    from pathlib import Path

    from repro.schema import SchemaGraph
    from repro.store.bundle import BundleReader

    if args.schema:
        return SchemaGraph.from_json(Path(args.schema).read_text())
    if args.bundle:
        reader = BundleReader(args.bundle)
        prefix = {"multitable_pipeline": "synth.", "multitable_synthesizer": ""}.get(reader.kind)
        if prefix is None:
            raise SystemExit("bundle at {} is a {!r}; only multitable bundles "
                             "embed a schema graph".format(args.bundle, reader.kind))
        return SchemaGraph.from_dict(reader.json(prefix + "graph"))
    raise SystemExit("schema show requires --schema or --bundle")


def _run_schema(args) -> list[dict]:
    from repro.schema import infer_schema, load_tables
    from repro.store.atomic import atomic_write_text

    if args.action == "infer":
        if not args.data_dir:
            raise SystemExit("schema infer requires --data-dir")
        start = time.perf_counter()
        graph = infer_schema(load_tables(args.data_dir))
        infer_s = time.perf_counter() - start
        if args.out:
            atomic_write_text(args.out, graph.to_json())
        rows = [{"command": "schema infer", **row} for row in graph.describe()]
        rows[0]["infer_s"] = round(infer_s, 4)
        if args.out:
            rows[0]["out"] = args.out
        return rows
    graph = _load_graph_for_show(args)
    order = {name: position for position, name in enumerate(graph.topological_order())}
    return [{"command": "schema show", "order": order[row["table"]], **row}
            for row in graph.describe()]


def _run_multitable(args) -> list[dict]:
    import contextlib
    import tempfile
    from pathlib import Path

    from repro.frame.io import write_csv
    from repro.pipelines.multitable import (
        MultiTablePipelineConfig,
        MultiTableSchemaPipeline,
    )
    from repro.schema import SchemaGraph, load_tables
    from repro.store.stream import CsvTableSink, SpoolingSink

    if args.chunk_rows is not None and not args.out_dir:
        raise SystemExit("run --chunk-rows requires --out-dir")
    if args.spool and args.chunk_rows is None:
        raise SystemExit("run --spool requires --chunk-rows")
    if args.resume and not args.spool:
        raise SystemExit("run --resume requires --spool")
    tables = load_tables(args.data_dir)
    graph = SchemaGraph.from_json(Path(args.schema).read_text()) if args.schema else None
    config = MultiTablePipelineConfig(seed=args.seed)
    cache_hit = None
    start = time.perf_counter()
    if args.registry:
        from repro.registry import Registry

        result = Registry(args.registry).fit_or_load(
            MultiTableSchemaPipeline(config), tables, graph, compress=args.compress)
        fitted, digest, cache_hit = result.fitted, result.digest, result.cache_hit
    else:
        fitted = MultiTableSchemaPipeline(config).fit(tables, graph)
        digest = None
    fit_s = time.perf_counter() - start
    if args.bundle:
        digest = fitted.save(args.bundle, compress=args.compress)

    start = time.perf_counter()
    if args.chunk_rows is not None:
        out_dir = Path(args.out_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        synthetic_rows, out_paths = {}, {}
        if args.spool:
            Path(args.spool).mkdir(parents=True, exist_ok=True)
            spool_context = contextlib.nullcontext(args.spool)
        else:
            spool_context = tempfile.TemporaryDirectory(prefix="greater-spool-")
        with spool_context as spool:
            for name, table in fitted.iter_sample_database(
                    args.n, seed=args.seed, spool=Path(spool), resume=args.resume):
                out_paths[name] = out_dir / "{}.csv".format(name)
                with SpoolingSink(CsvTableSink(out_paths[name]),
                                  args.chunk_rows) as sink:
                    sink.write(table)
                    synthetic_rows[name] = table.num_rows
        database = None
    else:
        database = fitted.sample_database(args.n, seed=args.seed)
    sample_s = time.perf_counter() - start

    rows = []
    for describe_row in fitted.graph.describe():
        name = describe_row["table"]
        row = {"command": "run", "pipeline": args.pipeline, **describe_row}
        if database is None:
            row["synthetic_rows"] = synthetic_rows[name]
            row["out"] = str(out_paths[name])
            row["chunk_rows"] = args.chunk_rows
        else:
            table = database[name]
            row["synthetic_rows"] = table.num_rows
            if args.out_dir:
                out_path = Path(args.out_dir) / "{}.csv".format(name)
                out_path.parent.mkdir(parents=True, exist_ok=True)
                write_csv(table, out_path)
                row["out"] = str(out_path)
        rows.append(row)
    rows[0]["seed"] = args.seed
    rows[0]["fit_s"] = round(fit_s, 4)
    rows[0]["sample_s"] = round(sample_s, 4)
    if digest:
        rows[0]["digest"] = digest[:12]
        rows[0]["artifact_digest"] = digest
    if args.bundle:
        rows[0]["bundle"] = args.bundle
    if args.registry:
        rows[0]["registry"] = args.registry
        rows[0]["cache_hit"] = cache_hit
    return rows


def _run_registry(args) -> list[dict]:
    from repro.registry import Registry, fingerprint_directory, migrate_bundle

    if args.action in ("ls", "show", "gc"):
        if not args.registry:
            raise SystemExit("registry {} requires --registry".format(args.action))
        registry = Registry(args.registry)
    if args.action == "ls":
        refcounts = registry.refcounts()
        rows = []
        for record in registry.artifacts():
            entries = record["parts"].values()
            rows.append({
                "command": "registry ls",
                "digest": record["digest"][:12],
                "kind": record["kind"],
                "format_version": record["format_version"],
                "parts": len(record["parts"]),
                "bytes": sum(entry["size"] for entry in entries),
                "shared_parts": sum(1 for entry in entries
                                    if refcounts.get(entry["object"], 0) > 1),
            })
        if not rows:
            rows = [{"command": "registry ls", "artifacts": 0,
                     "objects": len(registry.store.digests()),
                     "bytes": registry.store.total_bytes()}]
        return rows
    if args.action == "show":
        if not args.digest:
            raise SystemExit("registry show requires --digest")
        record = registry.artifact(args.digest)
        refcounts = registry.refcounts()
        rows = [{
            "command": "registry show",
            "part": name,
            "object": entry["object"][:12],
            "bytes": entry["size"],
            "refcount": refcounts.get(entry["object"], 0),
        } for name, entry in sorted(record["parts"].items())]
        bound = [run["spec_digest"][:12] for run in registry.runs()
                 if run.get("artifact") == record["digest"]]
        rows[0].update(digest=record["digest"], kind=record["kind"],
                       format_version=record["format_version"],
                       runs=",".join(bound) or "-")
        return rows
    if args.action == "gc":
        return [{"command": "registry gc", **registry.gc()}]
    if args.action == "migrate":
        if not args.paths:
            raise SystemExit("registry migrate requires at least one bundle path")
        if args.out and len(args.paths) != 1:
            raise SystemExit("registry migrate --out takes exactly one bundle")
        rows = []
        for path in args.paths:
            info = migrate_bundle(path, out=args.out)
            rows.append({
                "command": "registry migrate",
                "path": info["path"],
                "from_version": info["from_version"],
                "to_version": info["to_version"],
                "changed": info["changed"],
                "digest": info["digest"][:12],
            })
        return rows
    if len(args.paths) != 1:
        raise SystemExit("registry fingerprint takes exactly one dataset directory")
    result = fingerprint_directory(args.paths[0])
    rows = [{"command": "registry fingerprint", "file": "<combined>",
             "sha256": result["fingerprint"]}]
    rows.extend({"command": "registry fingerprint", "file": name, "sha256": digest}
                for name, digest in sorted(result["files"].items()))
    return rows


_COMMAND_RUNNERS = {"fit": _run_fit, "sample": _run_sample,
                    "serve-bench": _run_serve_bench,
                    "serve": _run_serve, "client": _run_client,
                    "trace": _run_trace,
                    "schema": _run_schema, "run": _run_multitable,
                    "registry": _run_registry}


def _run_command(argv: list[str]) -> int:
    command, rest = argv[0], argv[1:]
    args = _command_parser(command).parse_args(rest)
    rows = _COMMAND_RUNNERS[command](args)
    _emit_rows(rows, args.json)
    return 0


# ---------------------------------------------------------------------------
# entry point
# ---------------------------------------------------------------------------

def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] in COMMANDS:
        return _run_command(argv)

    args = build_parser().parse_args(argv)
    if args.experiment == "list":
        for name in sorted(EXPERIMENTS):
            print("{:12s} {}".format(name, EXPERIMENTS[name][1]))
        for name in sorted(COMMANDS):
            print("{:12s} {}".format(name, COMMANDS[name]))
        return 0

    function, _ = EXPERIMENTS[args.experiment]
    if args.experiment in _CONFIGURABLE:
        outcome = function(config=_experiment_config(args))
    else:
        outcome = function()

    rows = outcome.get("rows", [])
    _emit_rows(rows, args.json)
    return 0


if __name__ == "__main__":
    sys.exit(main())
