"""Association measures between table columns.

The Cross-table Connecting Method decides which columns are "independent of
everything else" from a pairwise association matrix (Fig. 4 / Fig. 5).  Since
the DIGIX-like features are mostly categorical the paper uses Cramer's V;
numeric column pairs fall back to the absolute Pearson correlation.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

from repro.frame.ops import crosstab
from repro.frame.table import Table
from repro.stats._arrays import as_float_array


def pearson_correlation(x: Sequence[float], y: Sequence[float]) -> float:
    """Pearson product-moment correlation coefficient of two numeric sequences.

    Returns 0.0 when either sequence is constant (no linear association can be
    measured) and raises ``ValueError`` on length mismatch or empty input.
    """
    x = as_float_array(x)
    y = as_float_array(y)
    if x.shape != y.shape:
        raise ValueError("sequences must have the same length, got {} and {}".format(len(x), len(y)))
    if x.size == 0:
        raise ValueError("cannot compute correlation of empty sequences")
    mask = ~(np.isnan(x) | np.isnan(y))
    x, y = x[mask], y[mask]
    if x.size < 2:
        return 0.0
    sx = x.std()
    sy = y.std()
    if sx == 0.0 or sy == 0.0:
        return 0.0
    return float(np.mean((x - x.mean()) * (y - y.mean())) / (sx * sy))


def cramers_v(contingency: np.ndarray, bias_correction: bool = True) -> float:
    """Cramer's V association coefficient from a contingency table.

    Implements the bias-corrected estimator (Bergsma 2013) by default, which
    is what practical toolkits report and what keeps the DIGIX-like features'
    association "ranging at about 0.2" (Sec. 4.1.1) rather than inflated.
    Returns a value in ``[0, 1]``.
    """
    observed = np.asarray(contingency, dtype=float)
    if observed.ndim != 2:
        raise ValueError("contingency table must be 2-dimensional")
    n = observed.sum()
    if n <= 0:
        return 0.0
    r, k = observed.shape
    if r < 2 or k < 2:
        return 0.0

    row_totals = observed.sum(axis=1, keepdims=True)
    col_totals = observed.sum(axis=0, keepdims=True)
    expected = row_totals @ col_totals / n
    with np.errstate(divide="ignore", invalid="ignore"):
        terms = np.where(expected > 0, (observed - expected) ** 2 / expected, 0.0)
    chi2 = terms.sum()
    phi2 = chi2 / n

    if bias_correction:
        phi2 = max(0.0, phi2 - (k - 1) * (r - 1) / max(n - 1, 1))
        r_corr = r - (r - 1) ** 2 / max(n - 1, 1)
        k_corr = k - (k - 1) ** 2 / max(n - 1, 1)
        denom = min(r_corr - 1, k_corr - 1)
    else:
        denom = min(r - 1, k - 1)
    if denom <= 0:
        return 0.0
    return float(math.sqrt(phi2 / denom))


def column_association(table: Table, first: str, second: str,
                       bias_correction: bool = True) -> float:
    """Association between two columns of a table in ``[0, 1]``.

    Numeric/numeric pairs use ``|Pearson|``; every other pair (the common case
    on the DIGIX-like data) uses Cramer's V on the contingency table.
    """
    col_a = table.column(first)
    col_b = table.column(second)
    if col_a.is_numeric() and col_b.is_numeric() and col_a.nunique() > 20 and col_b.nunique() > 20:
        return abs(pearson_correlation(col_a.as_array(), col_b.as_array()))
    contingency, _, _ = crosstab(table, first, second)
    return cramers_v(contingency, bias_correction=bias_correction)


def association_matrix(table: Table, columns: Sequence[str] | None = None,
                       bias_correction: bool = True) -> tuple[np.ndarray, list[str]]:
    """Pairwise association matrix of the given columns (all columns by default).

    Returns ``(matrix, names)`` where ``matrix[i, j]`` is the association
    between ``names[i]`` and ``names[j]``; the diagonal is 1.
    """
    names = list(columns) if columns is not None else table.column_names
    size = len(names)
    matrix = np.eye(size, dtype=float)
    for i in range(size):
        for j in range(i + 1, size):
            value = column_association(table, names[i], names[j], bias_correction=bias_correction)
            matrix[i, j] = value
            matrix[j, i] = value
    return matrix, names


def pairwise_matrix(table: Table, measure, columns: Sequence[str] | None = None) -> tuple[np.ndarray, list[str]]:
    """Generic symmetric pairwise matrix using a caller-supplied measure.

    ``measure(table, name_a, name_b)`` must return a float.  Used by tests and
    ablations that swap Cramer's V for the chi-square p-value or other
    association definitions (Sec. 3.3.1 notes the method is test-agnostic).
    """
    names = list(columns) if columns is not None else table.column_names
    size = len(names)
    matrix = np.zeros((size, size), dtype=float)
    for i in range(size):
        for j in range(i, size):
            if i == j:
                matrix[i, j] = 1.0
                continue
            value = float(measure(table, names[i], names[j]))
            matrix[i, j] = value
            matrix[j, i] = value
    return matrix, names
