"""Distribution distances.

The Wasserstein (earth mover's) distance is the paper's secondary fidelity
score (Sec. 4.1.3, Fig. 9); the total-variation distance is used in tests and
ablations as a cross-check.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from repro.stats._arrays import as_float_array


def wasserstein_from_samples(sample_a: Sequence[float], sample_b: Sequence[float]) -> float:
    """1-Wasserstein distance between two empirical one-dimensional samples.

    Equals the integral of the absolute difference between the two empirical
    CDFs, computed exactly from the pooled sorted support.
    """
    a = np.sort(as_float_array(sample_a))
    b = np.sort(as_float_array(sample_b))
    if a.size == 0 or b.size == 0:
        raise ValueError("Wasserstein distance requires two non-empty samples")
    support = np.concatenate([a, b])
    support.sort(kind="mergesort")
    deltas = np.diff(support)
    if deltas.size == 0:
        return 0.0
    cdf_a = np.searchsorted(a, support[:-1], side="right") / a.size
    cdf_b = np.searchsorted(b, support[:-1], side="right") / b.size
    return float(np.sum(np.abs(cdf_a - cdf_b) * deltas))


def wasserstein_distance(dist_a: Mapping[object, float] | Sequence[float],
                         dist_b: Mapping[object, float] | Sequence[float]) -> float:
    """1-Wasserstein distance between two distributions.

    Accepts either raw samples (sequences of numbers) or explicit categorical
    distributions (mappings from a *numeric* support value to a probability);
    categorical supports are aligned and the probabilities renormalised.
    """
    if isinstance(dist_a, Mapping) and isinstance(dist_b, Mapping):
        support = sorted(set(dist_a) | set(dist_b))
        a = np.asarray([float(dist_a.get(v, 0.0)) for v in support], dtype=float)
        b = np.asarray([float(dist_b.get(v, 0.0)) for v in support], dtype=float)
        if a.sum() <= 0 or b.sum() <= 0:
            raise ValueError("distributions must have positive total mass")
        a = a / a.sum()
        b = b / b.sum()
        points = np.asarray([float(v) for v in support], dtype=float)
        deltas = np.diff(points)
        cdf_a = np.cumsum(a)[:-1]
        cdf_b = np.cumsum(b)[:-1]
        if deltas.size == 0:
            return 0.0
        return float(np.sum(np.abs(cdf_a - cdf_b) * deltas))
    return wasserstein_from_samples(dist_a, dist_b)


def total_variation_distance(dist_a: Mapping[object, float], dist_b: Mapping[object, float]) -> float:
    """Total variation distance between two categorical distributions."""
    support = set(dist_a) | set(dist_b)
    a_total = sum(dist_a.values())
    b_total = sum(dist_b.values())
    if a_total <= 0 or b_total <= 0:
        raise ValueError("distributions must have positive total mass")
    return 0.5 * sum(
        abs(dist_a.get(v, 0.0) / a_total - dist_b.get(v, 0.0) / b_total) for v in support
    )
