"""Shared sample-to-array conversion for the statistics kernels.

Every statistical function historically converted its input with a per-value
``[float(v) for v in sample]`` list comprehension.  The vectorized frame
backends hand the same functions typed ndarrays (and
:class:`~repro.frame.column.Column` objects expose them zero-copy), so the
conversion below short-circuits for arrays and keeps the element-wise
behaviour — including its error messages on non-numeric values — for plain
Python sequences.
"""

from __future__ import annotations

import numpy as np


def as_float_array(sample) -> np.ndarray:
    """Convert a sample to a float64 ndarray without copying typed arrays."""
    if isinstance(sample, np.ndarray):
        return sample.astype(np.float64, copy=False)
    column_array = getattr(sample, "as_array", None)
    if column_array is not None:
        return np.asarray(column_array(), dtype=np.float64)
    return np.asarray([float(v) for v in sample], dtype=np.float64)
