"""Statistical toolkit used across the GReaTER pipeline and its evaluation.

Everything the paper's preprocessing and evaluation rely on lives here:

* association measures — Pearson correlation, Cramer's V (Sec. 4.1.2) and the
  pairwise association matrix used to decide column independence;
* goodness-of-fit tests — the Kolmogorov-Smirnov test whose p-value is the
  paper's primary fidelity score, plus the chi-square and Fisher's exact tests
  named as alternatives in Sec. 3.3.1;
* distances — the Wasserstein distance (the paper's secondary fidelity score);
* agglomerative hierarchical clustering — the second independence-detection
  method of Sec. 3.3.1.
"""

from repro.stats.correlation import (
    association_matrix,
    cramers_v,
    pairwise_matrix,
    pearson_correlation,
)
from repro.stats.clustering import (
    AgglomerativeClustering,
    ClusterNode,
    fcluster_by_distance,
    fcluster_by_count,
)
from repro.stats.distance import (
    total_variation_distance,
    wasserstein_distance,
    wasserstein_from_samples,
)
from repro.stats.histogram import (
    empirical_cdf,
    categorical_distribution,
    normalized_histogram,
)
from repro.stats.tests import (
    TestResult,
    chi_square_test,
    fisher_exact_test,
    ks_two_sample_test,
)

__all__ = [
    "pearson_correlation",
    "cramers_v",
    "association_matrix",
    "pairwise_matrix",
    "AgglomerativeClustering",
    "ClusterNode",
    "fcluster_by_distance",
    "fcluster_by_count",
    "wasserstein_distance",
    "wasserstein_from_samples",
    "total_variation_distance",
    "empirical_cdf",
    "categorical_distribution",
    "normalized_histogram",
    "TestResult",
    "ks_two_sample_test",
    "chi_square_test",
    "fisher_exact_test",
]
