"""Goodness-of-fit and independence tests.

The paper's primary fidelity score is the p-value of the two-sample
Kolmogorov-Smirnov test between conditional distributions of original and
synthetic data (Sec. 4.1.3); the chi-square and Fisher's exact tests are the
alternative independence tests mentioned in Sec. 3.3.1.  All three are
implemented here from first principles (scipy is only used by the test-suite
to cross-check the implementations).
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.stats._arrays import as_float_array


@dataclass(frozen=True)
class TestResult:
    """Outcome of a statistical test."""

    statistic: float
    p_value: float
    test_name: str

    def significant(self, alpha: float = 0.05) -> bool:
        """True when the null hypothesis is rejected at level *alpha*."""
        return self.p_value < alpha


# ---------------------------------------------------------------------------
# Kolmogorov-Smirnov two-sample test
# ---------------------------------------------------------------------------

def _ks_statistic(sample_a: np.ndarray, sample_b: np.ndarray) -> float:
    """Maximum absolute difference between the two empirical CDFs."""
    all_points = np.concatenate([sample_a, sample_b])
    all_points.sort(kind="mergesort")
    cdf_a = np.searchsorted(np.sort(sample_a), all_points, side="right") / sample_a.size
    cdf_b = np.searchsorted(np.sort(sample_b), all_points, side="right") / sample_b.size
    return float(np.max(np.abs(cdf_a - cdf_b)))


def _ks_p_value(statistic: float, n: int, m: int) -> float:
    """Asymptotic two-sided p-value of the two-sample KS statistic.

    Uses the Kolmogorov distribution approximation
    ``Q(lambda) = 2 * sum_{k>=1} (-1)^{k-1} exp(-2 k^2 lambda^2)`` with the
    standard effective-sample-size correction.
    """
    if n <= 0 or m <= 0:
        raise ValueError("both samples must be non-empty")
    en = n * m / (n + m)
    lam = (math.sqrt(en) + 0.12 + 0.11 / math.sqrt(en)) * statistic
    if lam <= 0:
        return 1.0
    total = 0.0
    for k in range(1, 101):
        term = 2.0 * (-1.0) ** (k - 1) * math.exp(-2.0 * k * k * lam * lam)
        total += term
        if abs(term) < 1e-12:
            break
    return float(min(max(total, 0.0), 1.0))


def ks_two_sample_test(sample_a: Sequence[float], sample_b: Sequence[float]) -> TestResult:
    """Two-sample Kolmogorov-Smirnov goodness-of-fit test.

    Both samples are treated as draws from unknown one-dimensional
    distributions; categorical data should be mapped to a shared numeric
    codebook first (see :func:`repro.evaluation.fidelity.encode_categories`).
    """
    a = as_float_array(sample_a)
    b = as_float_array(sample_b)
    if a.size == 0 or b.size == 0:
        raise ValueError("KS test requires two non-empty samples")
    statistic = _ks_statistic(a, b)
    p_value = _ks_p_value(statistic, a.size, b.size)
    return TestResult(statistic=statistic, p_value=p_value, test_name="ks_two_sample")


# ---------------------------------------------------------------------------
# Chi-square test of independence
# ---------------------------------------------------------------------------

def _regularized_upper_gamma(s: float, x: float) -> float:
    """Regularized upper incomplete gamma function Q(s, x).

    Series expansion for ``x < s + 1`` and continued fraction otherwise
    (Numerical Recipes style); accurate enough for p-value computation.
    """
    if x < 0 or s <= 0:
        raise ValueError("invalid arguments to the incomplete gamma function")
    if x == 0:
        return 1.0
    if x < s + 1.0:
        # lower series, then complement
        term = 1.0 / s
        total = term
        a = s
        for _ in range(500):
            a += 1.0
            term *= x / a
            total += term
            if abs(term) < abs(total) * 1e-14:
                break
        lower = total * math.exp(-x + s * math.log(x) - math.lgamma(s))
        return float(min(max(1.0 - lower, 0.0), 1.0))
    # continued fraction for the upper function
    tiny = 1e-300
    b = x + 1.0 - s
    c = 1.0 / tiny
    d = 1.0 / b
    h = d
    for i in range(1, 500):
        an = -i * (i - s)
        b += 2.0
        d = an * d + b
        if abs(d) < tiny:
            d = tiny
        c = b + an / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < 1e-14:
            break
    upper = math.exp(-x + s * math.log(x) - math.lgamma(s)) * h
    return float(min(max(upper, 0.0), 1.0))


def chi_square_p_value(statistic: float, dof: int) -> float:
    """Survival function of the chi-square distribution with *dof* degrees."""
    if dof <= 0:
        raise ValueError("degrees of freedom must be positive")
    if statistic <= 0:
        return 1.0
    return _regularized_upper_gamma(dof / 2.0, statistic / 2.0)


def chi_square_test(contingency: np.ndarray) -> TestResult:
    """Pearson chi-square test of independence on a contingency table."""
    observed = np.asarray(contingency, dtype=float)
    if observed.ndim != 2 or observed.shape[0] < 2 or observed.shape[1] < 2:
        raise ValueError("chi-square test requires an r x k contingency table with r, k >= 2")
    n = observed.sum()
    if n <= 0:
        raise ValueError("contingency table must contain at least one observation")
    row_totals = observed.sum(axis=1, keepdims=True)
    col_totals = observed.sum(axis=0, keepdims=True)
    expected = row_totals @ col_totals / n
    with np.errstate(divide="ignore", invalid="ignore"):
        terms = np.where(expected > 0, (observed - expected) ** 2 / expected, 0.0)
    statistic = float(terms.sum())
    dof = (observed.shape[0] - 1) * (observed.shape[1] - 1)
    return TestResult(statistic=statistic, p_value=chi_square_p_value(statistic, dof),
                      test_name="chi_square")


# ---------------------------------------------------------------------------
# Fisher's exact test (2x2)
# ---------------------------------------------------------------------------

def _log_binom(n: int, k: int) -> float:
    return math.lgamma(n + 1) - math.lgamma(k + 1) - math.lgamma(n - k + 1)


def fisher_exact_test(contingency: np.ndarray) -> TestResult:
    """Fisher's exact test (two-sided) on a 2x2 contingency table.

    Enumerates the hypergeometric distribution of the top-left cell given the
    margins and sums the probabilities of tables at least as extreme as the
    observed one.  The statistic reported is the odds ratio.
    """
    observed = np.asarray(contingency, dtype=float)
    if observed.shape != (2, 2):
        raise ValueError("Fisher's exact test requires a 2x2 table")
    a, b = observed[0]
    c, d = observed[1]
    if min(a, b, c, d) < 0:
        raise ValueError("contingency counts must be non-negative")
    a, b, c, d = int(round(a)), int(round(b)), int(round(c)), int(round(d))
    n = a + b + c + d
    if n == 0:
        raise ValueError("contingency table must contain at least one observation")

    row1 = a + b
    col1 = a + c

    def log_prob(x: int) -> float:
        return (_log_binom(row1, x) + _log_binom(n - row1, col1 - x) - _log_binom(n, col1))

    lo = max(0, col1 - (n - row1))
    hi = min(row1, col1)
    observed_lp = log_prob(a)
    p_value = 0.0
    for x in range(lo, hi + 1):
        lp = log_prob(x)
        if lp <= observed_lp + 1e-12:
            p_value += math.exp(lp)
    odds_ratio = math.inf if b * c == 0 and a * d > 0 else (
        0.0 if a * d == 0 else (a * d) / (b * c)
    )
    return TestResult(statistic=float(odds_ratio), p_value=float(min(p_value, 1.0)),
                      test_name="fisher_exact")
