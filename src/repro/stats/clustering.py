"""Agglomerative hierarchical clustering.

The second independence-detection method of the Cross-table Connecting Method
(Sec. 3.3.1) separates features "into different subgroups based on their
average pairwise Euclidean distance" — i.e. average-linkage agglomerative
clustering on the column dissimilarity matrix.  Implemented from scratch so
the whole pipeline runs without scipy's cluster module; scipy is used only by
the test-suite as a cross-check.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

LINKAGES = ("average", "single", "complete")


@dataclass
class ClusterNode:
    """A node of the dendrogram.

    Leaves have ``left is None and right is None`` and carry a single original
    item index; merged nodes carry the merge height (cophenetic distance).
    """

    node_id: int
    members: tuple[int, ...]
    height: float = 0.0
    left: "ClusterNode | None" = None
    right: "ClusterNode | None" = None

    def is_leaf(self) -> bool:
        return self.left is None and self.right is None


@dataclass
class AgglomerativeClustering:
    """Bottom-up hierarchical clustering over a precomputed distance matrix.

    Parameters
    ----------
    linkage:
        How the distance between two clusters is derived from the pairwise
        item distances: ``"average"`` (the paper's choice), ``"single"`` or
        ``"complete"``.
    """

    linkage: str = "average"
    merges_: list[tuple[int, int, float]] = field(default_factory=list, init=False)
    root_: ClusterNode | None = field(default=None, init=False)
    n_items_: int = field(default=0, init=False)

    def __post_init__(self):
        if self.linkage not in LINKAGES:
            raise ValueError("linkage must be one of {}, got {!r}".format(LINKAGES, self.linkage))

    # -- fitting -------------------------------------------------------------------

    def fit(self, distance_matrix: np.ndarray) -> "AgglomerativeClustering":
        """Build the dendrogram from a symmetric pairwise distance matrix."""
        distances = np.asarray(distance_matrix, dtype=float)
        if distances.ndim != 2 or distances.shape[0] != distances.shape[1]:
            raise ValueError("distance matrix must be square")
        if not np.allclose(distances, distances.T, atol=1e-9):
            raise ValueError("distance matrix must be symmetric")
        n = distances.shape[0]
        if n == 0:
            raise ValueError("cannot cluster zero items")
        self.n_items_ = n
        self.merges_ = []

        nodes = {i: ClusterNode(node_id=i, members=(i,)) for i in range(n)}
        active = set(range(n))
        # cluster-to-cluster distances in a dense upper-triangular matrix
        # indexed by node id (rows/cols of inactive clusters stay at +inf), so
        # the closest active pair is one vectorized argmin away
        total_nodes = 2 * n - 1
        pair_distance = np.full((total_nodes, total_nodes), np.inf)
        upper = np.triu_indices(n, k=1)
        pair_distance[upper] = distances[upper]

        next_id = n
        while len(active) > 1:
            # closest pair of active clusters; ties resolve to the smallest
            # (i, j) in lexicographic order, like the original scan
            flat = int(np.argmin(pair_distance))
            i, j = divmod(flat, total_nodes)
            best_distance = float(pair_distance[i, j])
            merged_members = tuple(sorted(nodes[i].members + nodes[j].members))
            merged = ClusterNode(
                node_id=next_id,
                members=merged_members,
                height=best_distance,
                left=nodes[i],
                right=nodes[j],
            )
            self.merges_.append((i, j, best_distance))
            nodes[next_id] = merged
            active.discard(i)
            active.discard(j)
            pair_distance[i, :] = np.inf
            pair_distance[:, i] = np.inf
            pair_distance[j, :] = np.inf
            pair_distance[:, j] = np.inf

            # update distances from the new cluster to every other active cluster
            for k in sorted(active):
                d = self._linkage_distance(distances, merged_members, nodes[k].members)
                pair_distance[min(k, next_id), max(k, next_id)] = d
            active.add(next_id)
            next_id += 1

        self.root_ = nodes[next(iter(active))]
        return self

    def _linkage_distance(self, distances: np.ndarray, members_a: Sequence[int],
                          members_b: Sequence[int]) -> float:
        block = distances[np.ix_(list(members_a), list(members_b))]
        if self.linkage == "average":
            return float(block.mean())
        if self.linkage == "single":
            return float(block.min())
        return float(block.max())

    # -- flat cluster extraction -----------------------------------------------------

    def _require_fitted(self):
        if self.root_ is None:
            raise RuntimeError("call fit() before extracting clusters")

    def clusters_at_distance(self, threshold: float) -> list[list[int]]:
        """Cut the dendrogram so no merge above *threshold* is applied.

        Returns a partition of the original item indices; items whose nearest
        neighbours are all farther than the threshold end up as singletons —
        exactly the "independent column" notion of Sec. 3.3.1.
        """
        self._require_fitted()
        clusters: list[list[int]] = []

        def collect(node: ClusterNode):
            if node.is_leaf() or node.height <= threshold:
                clusters.append(sorted(node.members))
                return
            collect(node.left)
            collect(node.right)

        collect(self.root_)
        return sorted(clusters)

    def clusters_by_count(self, n_clusters: int) -> list[list[int]]:
        """Cut the dendrogram into exactly *n_clusters* flat clusters."""
        self._require_fitted()
        if not 1 <= n_clusters <= self.n_items_:
            raise ValueError(
                "n_clusters must be between 1 and {}, got {}".format(self.n_items_, n_clusters)
            )
        # undo the last (n_clusters - 1) merges
        frontier = [self.root_]
        while len(frontier) < n_clusters:
            # split the node with the largest merge height
            splittable = [node for node in frontier if not node.is_leaf()]
            if not splittable:
                break
            node = max(splittable, key=lambda nd: nd.height)
            frontier.remove(node)
            frontier.extend([node.left, node.right])
        return sorted(sorted(node.members) for node in frontier)


def fcluster_by_distance(distance_matrix: np.ndarray, threshold: float,
                         linkage: str = "average") -> list[list[int]]:
    """One-shot convenience: fit and cut the dendrogram at a distance threshold."""
    model = AgglomerativeClustering(linkage=linkage).fit(distance_matrix)
    return model.clusters_at_distance(threshold)


def fcluster_by_count(distance_matrix: np.ndarray, n_clusters: int,
                      linkage: str = "average") -> list[list[int]]:
    """One-shot convenience: fit and cut the dendrogram into *n_clusters* groups."""
    model = AgglomerativeClustering(linkage=linkage).fit(distance_matrix)
    return model.clusters_by_count(n_clusters)
