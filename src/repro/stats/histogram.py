"""Empirical distributions and histograms.

Small helpers shared by the fidelity metrics and the dataset generator.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Sequence

import numpy as np

from repro.frame.ops import ranked_value_counts
from repro.stats._arrays import as_float_array


def empirical_cdf(sample: Sequence[float]):
    """Return a callable empirical CDF of a one-dimensional sample."""
    values = np.sort(as_float_array(sample))
    if values.size == 0:
        raise ValueError("cannot build a CDF from an empty sample")

    def cdf(x: float) -> float:
        return float(np.searchsorted(values, x, side="right")) / values.size

    return cdf


def categorical_distribution(values: Sequence, normalize: bool = True) -> "OrderedDict":
    """Frequency distribution of a categorical sample, most frequent first."""
    return ranked_value_counts(values, normalize=normalize)


def normalized_histogram(sample: Sequence[float], bins: int = 10,
                         value_range: tuple[float, float] | None = None) -> tuple[np.ndarray, np.ndarray]:
    """Normalised histogram (probabilities summing to 1) and its bin edges."""
    values = as_float_array(sample)
    if values.size == 0:
        raise ValueError("cannot build a histogram from an empty sample")
    counts, edges = np.histogram(values, bins=bins, range=value_range)
    total = counts.sum()
    probabilities = counts / total if total > 0 else counts.astype(float)
    return probabilities, edges
