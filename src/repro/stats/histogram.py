"""Empirical distributions and histograms.

Small helpers shared by the fidelity metrics and the dataset generator.
"""

from __future__ import annotations

from collections import Counter, OrderedDict
from collections.abc import Sequence

import numpy as np


def empirical_cdf(sample: Sequence[float]):
    """Return a callable empirical CDF of a one-dimensional sample."""
    values = np.sort(np.asarray([float(v) for v in sample], dtype=float))
    if values.size == 0:
        raise ValueError("cannot build a CDF from an empty sample")

    def cdf(x: float) -> float:
        return float(np.searchsorted(values, x, side="right")) / values.size

    return cdf


def categorical_distribution(values: Sequence, normalize: bool = True) -> "OrderedDict":
    """Frequency distribution of a categorical sample, most frequent first."""
    counter = Counter(v for v in values if v is not None)
    total = sum(counter.values())
    ordered = OrderedDict(counter.most_common())
    if normalize and total > 0:
        return OrderedDict((k, v / total) for k, v in ordered.items())
    return ordered


def normalized_histogram(sample: Sequence[float], bins: int = 10,
                         value_range: tuple[float, float] | None = None) -> tuple[np.ndarray, np.ndarray]:
    """Normalised histogram (probabilities summing to 1) and its bin edges."""
    values = np.asarray([float(v) for v in sample], dtype=float)
    if values.size == 0:
        raise ValueError("cannot build a histogram from an empty sample")
    counts, edges = np.histogram(values, bins=bins, range=value_range)
    total = counts.sum()
    probabilities = counts / total if total > 0 else counts.astype(float)
    return probabilities, edges
