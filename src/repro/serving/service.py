"""Synthesis serving: load a bundle once, answer sampling requests forever.

:class:`SynthesisService` is the serve-many half of the train-once /
serve-many split.  It wraps a :class:`~repro.pipelines.base.FittedPipeline`
(usually loaded from a :mod:`repro.store` bundle) and serves two request
shapes without ever retraining:

* :meth:`~SynthesisService.sample_table` — a full synthetic flat table of
  ``n`` subjects.  The request is decomposed into fixed-size *blocks*, each
  sampled with a deterministically derived seed (:func:`derive_seed`), so
  the output is a pure function of ``(bundle, n, seed, block_size)`` — a
  run sharded across ``W`` workers is bit-identical to the single-process
  run, for any ``W``.
* :meth:`~SynthesisService.sample_rows` — ``n`` conditioned rows from the
  child synthesizer (e.g. "rows for a user with these contextual
  attributes").  Concurrent requests are coalesced: a leader thread drains
  the pending queue and advances *every* request's lanes through **one**
  batched engine pass per column (one dense-mass/candidate-scoring call for
  the merged batch).  Each request draws from its own named RNG stream, so
  a request's output never depends on what it was batched with.
* :meth:`~SynthesisService.sample_database` — a whole synthetic multi-table
  database from a loaded ``multitable`` bundle (see :mod:`repro.schema`).
  Tables of one schema depth level are sampled across the worker pool; the
  per-table seeds are ``SeedSequence``-derived inside the synthesizer, so
  every ``shards`` setting produces the identical database.

Results are memoised in an LRU cache keyed by ``(bundle digest, request)``
— identical requests against the same artifact are served from memory.
The cache is bounded by **approximate result bytes**
(``ServingConfig.cache_bytes``), not entry count, so one huge table cannot
silently pin the memory a thousand small results would fit in.
"""

from __future__ import annotations

import sys
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.frame.ops import concat_rows
from repro.frame.table import Table
from repro.llm.engine import _choose_indices, derive_seed
from repro.obs import trace as obs
from repro.pipelines.base import TABLE_BLOCK_STREAM, FittedPipeline, block_plan
from repro.pipelines.multitable import FittedMultiTablePipeline
from repro.serving.metrics import MetricsRegistry


class ServingError(RuntimeError):
    """A request the loaded bundle cannot serve."""


class DeadlineExceeded(ServingError):
    """A request missed its ``timeout_s`` deadline (HTTP 503, retryable)."""


class PoolDegraded(ServingError):
    """The worker pool's crash-loop breaker is open (HTTP 503, retryable)."""


#: Named sub-streams of the request seed (table blocks vs row requests), so
#: the two request shapes never share RNG state.  Table blocks use the
#: pipeline layer's shared stream so streaming writers reproduce served
#: tables exactly.
_TABLE_STREAM = TABLE_BLOCK_STREAM
_ROWS_STREAM = 13


def process_peak_rss_bytes() -> int | None:
    """This process's peak resident set size in bytes (``None`` if unknown).

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS; other platforms
    report whatever the libc says, so only the two known unit conventions
    are trusted.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - exercised on macOS only
        return int(peak)
    return int(peak) * 1024


def approx_table_bytes(table: Table) -> int:
    """Approximate in-memory footprint of a table, in bytes.

    Typed backends are sized from their arrays; object columns estimate
    ~48 bytes of boxing overhead plus the stringified payload per value.
    Cheap by construction — this runs on every cache insert.
    """
    total = 0
    for column in table.columns:
        backend = column._backend
        data = getattr(backend, "data", None)
        if isinstance(data, np.ndarray):  # NumericBackend
            total += data.nbytes
            mask = getattr(backend, "mask", None)
            if isinstance(mask, np.ndarray):
                total += mask.nbytes
            continue
        codes = getattr(backend, "codes", None)
        if isinstance(codes, np.ndarray):  # CategoricalBackend
            total += codes.nbytes
            total += sum(48 + len(str(c)) for c in backend.categories)
            continue
        total += sum(48 + len(str(v)) for v in backend.tolist())
    return total


def approx_result_bytes(value) -> int:
    """Approximate size of a cached serving result (table or table mapping)."""
    if isinstance(value, Table):
        return approx_table_bytes(value)
    if isinstance(value, dict):
        return sum(approx_result_bytes(item) for item in value.values())
    return 64


@dataclass(frozen=True)
class ServingConfig:
    """Knobs of the serving layer.

    ``shards`` is the worker count for block-sharded table sampling and
    level-sharded database sampling (the output is identical for every
    value — only throughput changes); ``block_size`` the number of
    synthetic subjects per independently seeded block; ``cache_bytes`` the
    approximate byte budget of the LRU result cache (0 disables caching);
    ``batch_window_s`` how long a coalescing leader waits for followers
    before draining the queue.

    ``executor`` picks where the sampling work runs: ``"thread"`` shards
    across a thread pool in-process (GIL-bound — identical output, little
    speedup), ``"process"`` across a :class:`repro.serving.workers`
    worker-process pool of ``shards`` bundle-loaded workers (requires
    loading the service from a bundle path).  ``mmap`` makes bundle loads
    memory-map the n-gram count tables instead of copying them — with
    process workers the tables then share one page-cache copy.

    Resilience knobs (process executor; see the README's "Failure model &
    operations"): ``timeout_s`` is the default per-request deadline
    (``None`` = no deadline; requests can override), ``retries`` the
    re-dispatch budget for tasks orphaned by a worker death (seed-derived
    work units make every retry bit-identical), ``retry_backoff_s`` the
    base of the exponential backoff between attempts.  ``breaker_threshold``
    worker deaths within ``breaker_window_s`` trip the crash-loop breaker
    (0 disables it); while open, ``degraded_mode`` decides whether requests
    fall back to in-process serial sampling (``"serial"`` — identical
    output, slower) or fail fast with :class:`PoolDegraded`
    (``"fail_fast"``).  ``faults`` is a :mod:`repro.faults` plan shipped to
    worker processes for chaos testing.

    ``trace`` arms the process-global tracer (:mod:`repro.obs.trace`) with a
    sink spec — ``"stderr"``, ``"ring"``/``"ring:N"`` (in-memory, served at
    ``GET /trace``) or a file path for JSON lines.  Worker processes buffer
    their spans and ship them back on the result pipe, so one request yields
    one stitched trace across the pool.  ``None`` (the default) leaves
    tracing disabled: every span site degrades to a no-op.
    """

    shards: int = 1
    block_size: int = 256
    cache_bytes: int = 64 * 2**20
    batch_window_s: float = 0.002
    executor: str = "thread"
    mmap: bool = False
    timeout_s: float | None = None
    retries: int = 2
    retry_backoff_s: float = 0.05
    breaker_threshold: int = 5
    breaker_window_s: float = 30.0
    breaker_cooldown_s: float = 5.0
    degraded_mode: str = "serial"
    faults: str | None = None
    trace: str | None = None

    def __post_init__(self):
        if self.shards < 1:
            raise ValueError("shards must be at least 1")
        if self.block_size < 1:
            raise ValueError("block_size must be at least 1")
        if self.cache_bytes < 0:
            raise ValueError("cache_bytes must be non-negative")
        if self.batch_window_s < 0:
            raise ValueError("batch_window_s must be non-negative")
        if self.executor not in ("thread", "process"):
            raise ValueError('executor must be "thread" or "process"')
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive (or None for no deadline)")
        if self.retries < 0:
            raise ValueError("retries must be non-negative")
        if self.retry_backoff_s < 0:
            raise ValueError("retry_backoff_s must be non-negative")
        if self.breaker_threshold < 0:
            raise ValueError("breaker_threshold must be non-negative (0 disables)")
        if self.breaker_window_s <= 0 or self.breaker_cooldown_s <= 0:
            raise ValueError("breaker window and cooldown must be positive")
        if self.degraded_mode not in ("serial", "fail_fast"):
            raise ValueError('degraded_mode must be "serial" or "fail_fast"')
        if self.faults is not None:
            from repro.faults import parse_plan

            parse_plan(self.faults)  # reject typos at config time, not mid-chaos
        if self.trace is not None:
            obs.parse_sink_spec(self.trace)  # same: bad sink specs fail here


@dataclass(frozen=True)
class RowRequest:
    """One conditioned row-sampling request (the coalescable unit)."""

    n: int
    conditions: tuple = ()  # sorted (column, value) pairs; dicts accepted by the service
    seed: int = 0

    def __post_init__(self):
        if self.n <= 0:
            raise ValueError("n must be positive")


class LruCache:
    """A thread-safe LRU mapping bounded by approximate result bytes.

    ``capacity_bytes`` is the byte budget (0 disables the cache); every
    entry is sized once at insert time by *sizer* (default
    :func:`approx_result_bytes`) and the least-recently-used entries are
    evicted until the total fits.  A single result larger than the whole
    budget is never cached — it would only evict everything else and then
    miss anyway.
    """

    def __init__(self, capacity_bytes: int, sizer=approx_result_bytes):
        self.capacity_bytes = capacity_bytes
        self._sizer = sizer
        self._entries: "OrderedDict" = OrderedDict()  # key -> (value, size)
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.bytes_used = 0

    def get(self, key):
        if self.capacity_bytes == 0:
            return None
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.hits += 1
                return self._entries[key][0]
            self.misses += 1
            return None

    def put(self, key, value) -> None:
        if self.capacity_bytes == 0:
            return
        size = self._sizer(value)
        with self._lock:
            if key in self._entries:
                self.bytes_used -= self._entries.pop(key)[1]
            if size > self.capacity_bytes:
                return
            self._entries[key] = (value, size)
            self.bytes_used += size
            while self.bytes_used > self.capacity_bytes:
                _, (_, evicted) = self._entries.popitem(last=False)
                self.bytes_used -= evicted


@dataclass
class _PendingRequest:
    request: RowRequest
    timeout_s: float | None = None
    event: threading.Event = field(default_factory=threading.Event)
    result: Table | None = None
    error: BaseException | None = None


class SynthesisService:
    """Serve sampling requests from one loaded fitted pipeline.

    Accepts either a flat :class:`FittedPipeline` (full-table and
    conditioned-row requests) or a
    :class:`~repro.pipelines.multitable.FittedMultiTablePipeline`
    (whole-database requests); asking the wrong shape raises
    :class:`ServingError`.
    """

    def __init__(self, fitted: FittedPipeline | FittedMultiTablePipeline,
                 config: ServingConfig | None = None,
                 digest: str | None = None,
                 pool=None, metrics: MetricsRegistry | None = None):
        self.fitted = fitted
        self.config = config or ServingConfig()
        if self.config.executor == "process" and pool is None:
            raise ServingError(
                "the process executor needs bundle-loaded workers; build the "
                "service with SynthesisService.from_bundle")
        if self.config.trace is not None and not obs.enabled():
            obs.configure(self.config.trace)
        #: cache namespace; bundle-loaded services use the content digest so
        #: equal artifacts share keys, in-memory ones get a unique token
        self.digest = digest or "unsaved-{:x}".format(id(fitted))
        #: the process worker pool when ``executor == "process"`` (else None)
        self.pool = pool
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._cache = LruCache(self.config.cache_bytes)
        self._stats_lock = threading.Lock()
        self._stats = {"table_requests": 0, "row_requests": 0, "database_requests": 0,
                       "coalesced_batches": 0, "coalesced_requests_max": 0,
                       "streamed_requests": 0, "streamed_chunks": 0, "streamed_rows": 0,
                       "degraded_fallbacks": 0}
        self._batch_lock = threading.Lock()
        self._pending: list[_PendingRequest] = []
        self._draining = False

    @classmethod
    def from_bundle(cls, path, config: ServingConfig | None = None) -> "SynthesisService":
        """Load a fitted-pipeline bundle (flat or multitable) once and serve from it.

        With ``config.executor == "process"`` this also cold-starts a
        :class:`~repro.serving.workers.WorkerPool` of ``config.shards``
        worker processes from the same bundle path, each verifying the
        content digest before the service accepts requests.
        """
        from repro.store.bundle import (
            load_fitted_pipeline,
            load_multitable_pipeline,
            read_manifest,
        )

        config = config or ServingConfig()
        # arm tracing before the pool forks so workers inherit the decision
        if config.trace is not None and not obs.enabled():
            obs.configure(config.trace)
        if read_manifest(path)["kind"] == "multitable_pipeline":
            fitted, digest = load_multitable_pipeline(path, mmap=config.mmap)
        else:
            fitted, digest = load_fitted_pipeline(path, mmap=config.mmap)
        pool = None
        metrics = MetricsRegistry()
        if config.executor == "process":
            from repro.serving.workers import WorkerPool

            pool = WorkerPool(path, workers=config.shards, mmap=config.mmap,
                              block_size=config.block_size, expected_digest=digest,
                              retries=config.retries,
                              retry_backoff_s=config.retry_backoff_s,
                              breaker_threshold=config.breaker_threshold,
                              breaker_window_s=config.breaker_window_s,
                              breaker_cooldown_s=config.breaker_cooldown_s,
                              faults_spec=config.faults, metrics=metrics)
        return cls(fitted, config=config, digest=digest, pool=pool, metrics=metrics)

    @classmethod
    def from_registry(cls, root, digest, config: ServingConfig | None = None) -> "SynthesisService":
        """Serve an artifact resolved by content digest from a registry.

        The registry analogue of :meth:`from_bundle`: ``digest`` (full or a
        unique prefix) names the artifact, the parts stream straight from
        the content-addressed object store (with ``config.mmap`` they are
        memory-mapped from the object files, so every worker process
        sharing the registry shares one page-cache copy per part), and the
        worker pool cold-starts from a :class:`~repro.registry.cas.RegistrySource`
        instead of a bundle path.
        """
        from repro.registry.cas import RegistrySource
        from repro.registry.record import Registry

        config = config or ServingConfig()
        if config.trace is not None and not obs.enabled():
            obs.configure(config.trace)
        registry = Registry(root)
        resolved = registry.resolve(digest)
        record = registry.artifact(resolved)
        if record["kind"] not in ("fitted_pipeline", "multitable_pipeline"):
            raise ServingError(
                "artifact {} is a {!r}; serving needs a fitted pipeline".format(
                    resolved[:12], record["kind"]))
        fitted, digest = registry.load(resolved, mmap=config.mmap)
        pool = None
        metrics = MetricsRegistry()
        if config.executor == "process":
            from repro.serving.workers import WorkerPool

            source = RegistrySource(str(registry.root), resolved)
            pool = WorkerPool(source, workers=config.shards, mmap=config.mmap,
                              block_size=config.block_size, expected_digest=digest,
                              retries=config.retries,
                              retry_backoff_s=config.retry_backoff_s,
                              breaker_threshold=config.breaker_threshold,
                              breaker_window_s=config.breaker_window_s,
                              breaker_cooldown_s=config.breaker_cooldown_s,
                              faults_spec=config.faults, metrics=metrics)
        return cls(fitted, config=config, digest=digest, pool=pool, metrics=metrics)

    def close(self) -> None:
        """Release the process worker pool (no-op for thread executors)."""
        if self.pool is not None:
            self.pool.close()

    def __enter__(self) -> "SynthesisService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def is_multitable(self) -> bool:
        return isinstance(self.fitted, FittedMultiTablePipeline)

    def _require_flat(self):
        if self.is_multitable:
            raise ServingError(
                "this service wraps a multitable pipeline; use sample_database")

    def _require_multitable(self):
        if not self.is_multitable:
            raise ServingError(
                "whole-database serving needs a multitable bundle; the {!r} "
                "pipeline serves tables and rows".format(self.fitted.name))

    # -- public request API ----------------------------------------------------------

    def sample(self, n: int | None = None, seed: int | None = None,
               conditions: dict | None = None) -> Table:
        """Serve one sampling request.

        Without *conditions*: a full synthetic flat table of *n* subjects
        (block-sharded, see :meth:`sample_table`).  With *conditions*: *n*
        child rows conditioned on the given column values (coalescable, see
        :meth:`sample_rows`).
        """
        if conditions is not None:
            if n is None:
                raise ValueError("conditioned sampling requires an explicit n")
            return self.sample_rows(n, conditions=conditions, seed=seed)
        return self.sample_table(n, seed=seed)

    def stats(self) -> dict:
        """Serving counters, cache hit/miss totals and per-endpoint latency.

        ``latency`` maps each endpoint to the
        :meth:`~repro.serving.metrics.LatencyHistogram.snapshot` schema
        (``count``/``total_s``/``max_s`` plus cumulative bucket counts) —
        the same shape the HTTP server reports under ``/stats``, so both
        read paths share one decoder.
        """
        with self._stats_lock:
            out = dict(self._stats)
        out["cache_hits"] = self._cache.hits
        out["cache_misses"] = self._cache.misses
        out["cache_bytes_used"] = self._cache.bytes_used
        out["executor"] = self.config.executor
        out["latency"] = self.metrics.snapshot()
        out["counters"] = self.metrics.counters_snapshot()
        out["gauges"] = self.metrics.gauges_snapshot()
        out["peak_rss_bytes"] = process_peak_rss_bytes()
        if self.pool is not None:
            out["worker_restarts"] = self.pool.restarts
            out["pool"] = self.pool.stats()
        return out

    def readiness(self) -> tuple[bool, dict]:
        """Whether the service can take traffic now, plus why if it cannot.

        Distinct from liveness: a live process whose worker pool is held
        open by the crash-loop breaker (and configured to fail fast) is not
        ready.  In ``degraded_mode="serial"`` a degraded pool still serves
        — slower, in-process — so the service stays ready and reports the
        degradation instead.
        """
        info: dict = {"executor": self.config.executor}
        if self.pool is None:
            return True, info
        state = self.pool.breaker_state
        info["breaker_state"] = state
        if state != "open":
            return True, info
        info["degraded_mode"] = self.config.degraded_mode
        if self.config.degraded_mode == "serial":
            info["reason"] = "worker pool degraded; serving serially in-process"
            return True, info
        info["reason"] = "worker pool degraded; crash-loop breaker open"
        return False, info

    def _degrade_to_serial(self, error: PoolDegraded):
        """Count a pool-degraded fallback, or re-raise in fail-fast mode."""
        if self.config.degraded_mode != "serial":
            raise error
        with self._stats_lock:
            self._stats["degraded_fallbacks"] += 1

    def _resolve_timeout(self, timeout_s: float | None) -> float | None:
        timeout_s = self.config.timeout_s if timeout_s is None else timeout_s
        if timeout_s is not None and timeout_s <= 0:
            raise ServingError("timeout_s must be positive")
        return timeout_s

    # -- whole-database sampling (multitable bundles) ----------------------------------

    def sample_database(self, n: int | dict | None = None,
                        seed: int | None = None,
                        timeout_s: float | None = None) -> dict:
        """A whole synthetic database from a loaded ``multitable`` bundle.

        Tables of one schema depth level are mutually independent, so with
        ``shards > 1`` they are sampled across a thread pool; the per-table
        seeds are derived inside the synthesizer from the deterministic
        topological order, so every shard count returns the identical
        database (same guarantee as :meth:`sample_table`).
        """
        self._require_multitable()
        seed = self.fitted.config.seed if seed is None else seed
        timeout_s = self._resolve_timeout(timeout_s)
        with self._stats_lock:
            self._stats["database_requests"] += 1
        self.metrics.counter("requests_total", endpoint="sample_database").increment()
        with self.metrics.histogram("sample_database").time(), \
                obs.span("service.sample_database", attrs={"seed": seed}) as sp:
            n_key = tuple(sorted(n.items())) if isinstance(n, dict) else n
            key = (self.digest, "database", n_key, seed)
            cached = self._cache.get(key)
            if cached is not None:
                sp.set_attr("cache_hit", True)
                return cached
            try:
                if self.pool is not None:
                    try:
                        database = self.pool.sample_database(n, seed, deadline_s=timeout_s)
                    except PoolDegraded as error:
                        self._degrade_to_serial(error)
                        sp.add_event("degraded_fallback")
                        database = self.fitted.sample_database(n, seed=seed)
                elif self.config.shards == 1:
                    database = self.fitted.sample_database(n, seed=seed)
                else:
                    from concurrent.futures import ThreadPoolExecutor

                    with ThreadPoolExecutor(max_workers=self.config.shards) as pool:
                        database = self.fitted.sample_database(n, seed=seed, map_fn=pool.map)
            except DeadlineExceeded:
                sp.add_event("deadline_exceeded")
                raise
            self._cache.put(key, database)
            return database

    # -- full-table sampling (block-sharded) -------------------------------------------

    def _blocks(self, n: int, seed: int) -> list[tuple[int, int, int]]:
        return block_plan(n, seed, self.config.block_size)

    def sample_table(self, n: int | None = None, seed: int | None = None,
                     timeout_s: float | None = None) -> Table:
        """The synthetic flat table for *n* subjects (defaults as in the pipeline).

        The request is partitioned into ``block_size`` blocks, each sampled
        with a seed derived from ``(seed, block index)`` — independent of
        worker count, so every ``shards`` setting produces the identical
        table.  *timeout_s* (default :attr:`ServingConfig.timeout_s`) is
        enforced as a per-block deadline on the process executor — a worker
        stuck past it is killed and the request fails with
        :class:`DeadlineExceeded`.
        """
        self._require_flat()
        n = self.fitted._resolve_n(n)
        seed = self.fitted.config.seed if seed is None else seed
        timeout_s = self._resolve_timeout(timeout_s)
        with self._stats_lock:
            self._stats["table_requests"] += 1
        self.metrics.counter("requests_total", endpoint="sample_table").increment()
        with self.metrics.histogram("sample_table").time(), \
                obs.span("service.sample_table", attrs={"n": n, "seed": seed}) as sp:
            key = (self.digest, "table", n, seed, self.config.block_size)
            cached = self._cache.get(key)
            if cached is not None:
                sp.set_attr("cache_hit", True)
                return cached
            blocks = self._blocks(n, seed)
            sp.set_attr("blocks", len(blocks))
            try:
                if self.pool is not None:
                    try:
                        parts = self.pool.sample_blocks(blocks, deadline_s=timeout_s)
                    except PoolDegraded as error:
                        self._degrade_to_serial(error)
                        sp.add_event("degraded_fallback")
                        parts = [self.fitted.sample_block(start, count, block_seed)
                                 for start, count, block_seed in blocks]
                elif self.config.shards == 1 or len(blocks) == 1:
                    parts = [self.fitted.sample_block(start, count, block_seed)
                             for start, count, block_seed in blocks]
                else:
                    from concurrent.futures import ThreadPoolExecutor

                    with ThreadPoolExecutor(max_workers=self.config.shards) as pool:
                        parts = list(pool.map(
                            lambda block: self.fitted.sample_block(*block), blocks))
            except DeadlineExceeded:
                sp.add_event("deadline_exceeded")
                raise
            table = concat_rows(parts)
            self._cache.put(key, table)
            return table

    def iter_sample_table(self, n: int | None = None, seed: int | None = None,
                          timeout_s: float | None = None):
        """Yield the table of :meth:`sample_table` one block at a time.

        Blocks are the exact ``block_size`` partition that :meth:`sample_table`
        concatenates (same :func:`~repro.pipelines.base.block_plan`), so
        writing the yielded chunks in order reproduces the served table bit
        for bit while holding one block in memory.  The streaming path
        bypasses the result cache — its point is not to materialize the
        table.  Validation is eager.
        """
        self._require_flat()
        n = self.fitted._resolve_n(n)
        seed = self.fitted.config.seed if seed is None else seed
        timeout_s = self._resolve_timeout(timeout_s)
        blocks = self._blocks(n, seed)
        with self._stats_lock:
            self._stats["streamed_requests"] += 1
        self.metrics.counter("requests_total", endpoint="sample_table_stream").increment()
        # generator steps may run on other threads; pin the parent explicitly
        parent_ctx = obs.current_context()

        def chunks():
            for block in blocks:
                with obs.span("service.stream_block", parent=parent_ctx,
                              attrs={"start": block[0], "count": block[1]}):
                    if self.pool is not None:
                        try:
                            part = self.pool.sample_blocks([block], deadline_s=timeout_s)[0]
                        except PoolDegraded as error:
                            self._degrade_to_serial(error)
                            part = self.fitted.sample_block(*block)
                    else:
                        part = self.fitted.sample_block(*block)
                with self._stats_lock:
                    self._stats["streamed_chunks"] += 1
                    self._stats["streamed_rows"] += part.num_rows
                yield part
        return chunks()

    # -- conditioned row sampling (coalesced) ------------------------------------------

    @property
    def _child_synth(self):
        self._require_flat()
        if len(self.fitted.synthesizers) != 1:
            raise ServingError(
                "conditioned row serving needs a single parent/child synthesizer; "
                "the {!r} pipeline has {}".format(self.fitted.name,
                                                  len(self.fitted.synthesizers))
            )
        synth = self.fitted.synthesizers[0]._child_synth
        if synth.config.sampling_strategy != "guided":
            raise ServingError("conditioned row serving requires the guided strategy")
        return synth

    def _normalize_request(self, n: int, conditions: dict | None,
                           seed: int | None) -> RowRequest:
        synth = self._child_synth
        subject = self.fitted.subject_column
        allowed = [name for name in synth._training_table.column_names if name != subject]
        conditions = dict(conditions or {})
        unknown = [name for name in conditions if name not in allowed]
        if unknown:
            raise ServingError(
                "unknown condition columns {}; conditionable columns are {}".format(
                    unknown, allowed))
        seed = self.fitted.config.seed if seed is None else seed
        pinned = tuple(sorted(conditions.items(), key=lambda item: item[0]))
        return RowRequest(n=n, conditions=pinned, seed=seed)

    def _enhanced_conditions(self, request: RowRequest) -> dict:
        """Map original-label conditions into the enhanced space the child
        synthesizer was trained in (one-row table through the fitted mapping)."""
        conditions = dict(request.conditions)
        if not conditions:
            return {}
        one_row = Table({name: [value] for name, value in conditions.items()})
        return self.fitted.enhancer.transform(one_row).row(0)

    def sample_rows(self, n: int, conditions: dict | None = None,
                    seed: int | None = None,
                    timeout_s: float | None = None) -> Table:
        """Sample *n* conditioned child rows (original label space).

        Concurrent callers are coalesced into one batched engine pass; the
        result only depends on ``(bundle, n, conditions, seed)``.  Deadlines
        apply at batch granularity: the coalesced pass runs under the
        smallest timeout of its members, so a missed deadline fails every
        request batched with it (all are retryable).
        """
        self.metrics.counter("requests_total", endpoint="sample_rows").increment()
        with self.metrics.histogram("sample_rows").time(), \
                obs.span("service.sample_rows",
                         attrs={"n": n, "conditions": len(conditions or {})}) as sp:
            try:
                return self._sample_rows_timed(n, conditions, seed, timeout_s)
            except DeadlineExceeded:
                sp.add_event("deadline_exceeded")
                raise

    def _sample_rows_timed(self, n: int, conditions: dict | None,
                           seed: int | None, timeout_s: float | None = None) -> Table:
        request = self._normalize_request(n, conditions, seed)
        timeout_s = self._resolve_timeout(timeout_s)
        key = (self.digest, "rows", request)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        entry = _PendingRequest(request, timeout_s=timeout_s)
        with self._batch_lock:
            self._pending.append(entry)
            leader = not self._draining
            if leader:
                self._draining = True
        if leader:
            if self.config.batch_window_s > 0:
                time.sleep(self.config.batch_window_s)
            with self._batch_lock:
                batch, self._pending = self._pending, []
                self._draining = False
            timeouts = [e.timeout_s for e in batch if e.timeout_s is not None]
            batch_timeout = min(timeouts) if timeouts else None
            try:
                results = self.sample_rows_many([e.request for e in batch],
                                                timeout_s=batch_timeout)
            except BaseException as error:  # propagate to every waiter
                for waiter in batch:
                    waiter.error = error
                    waiter.event.set()
                raise
            for waiter, result in zip(batch, results):
                waiter.result = result
                waiter.event.set()
        entry.event.wait()
        if entry.error is not None:
            raise entry.error
        self._cache.put(key, entry.result)
        return entry.result

    def sample_rows_many(self, requests: list[RowRequest],
                         timeout_s: float | None = None) -> list[Table]:
        """Serve a batch of row requests through one engine pass per column.

        This is the deterministic coalescing unit: every request occupies a
        contiguous lane range of one merged guided session, candidate
        scoring runs once per column across all lanes, and each request
        draws from its own ``(seed)``-derived RNG stream — so the result
        per request is identical whether it is served alone or merged.
        """
        if not requests:
            return []
        with self._stats_lock:
            self._stats["row_requests"] += len(requests)
            self._stats["coalesced_batches"] += 1
            self._stats["coalesced_requests_max"] = max(
                self._stats["coalesced_requests_max"], len(requests))
        if self.pool is not None:
            # the whole coalesced batch goes to ONE worker so it still runs
            # as a single merged engine pass per column
            try:
                return self.pool.sample_rows_many(requests, deadline_s=timeout_s)
            except PoolDegraded as error:
                self._degrade_to_serial(error)
        batch_start_us = obs.monotonic_us()
        synth = self._child_synth
        engine = synth._engine
        temperature = synth.config.sampler.temperature
        subject = self.fitted.subject_column

        sizes = [request.n for request in requests]
        bounds = np.zeros(len(sizes) + 1, dtype=np.int64)
        np.cumsum(sizes, out=bounds[1:])
        total = int(bounds[-1])
        slices = [slice(int(bounds[i]), int(bounds[i + 1])) for i in range(len(sizes))]
        rngs = [np.random.default_rng([_ROWS_STREAM, derive_seed(request.seed)])
                for request in requests]
        prompts = [self._enhanced_conditions(request) for request in requests]

        # the session's own RNG is never drawn from — every draw below comes
        # from the owning request's stream
        session = engine.guided_session(total, seed=0)
        rows: list[list[dict]] = [[{} for _ in range(n)] for n in sizes]
        columns = synth._training_table.column_names
        for name in columns:
            session.extend_shared(synth._structure_token_ids[name])
            candidates = synth._column_candidates[name]
            token_lists = synth._candidate_token_ids[name]
            fixed = [name in prompt for prompt in prompts]
            scores = None
            if len(candidates) > 1 and not all(fixed):
                # the one batched engine pass for this column: candidate
                # scores for every lane of every pending request at once
                scores = engine._score_candidates(session.contexts, session.lengths,
                                                  token_lists)
            lane_tokens: list = [None] * total
            for index, request in enumerate(requests):
                window = slices[index]
                request_rows = rows[index]
                if fixed[index]:
                    value = prompts[index][name]
                    tokens = synth._encode_value_tokens(value)
                    picks = None
                elif len(candidates) == 1:
                    value, tokens, picks = candidates[0], token_lists[0], None
                else:
                    picks = _choose_indices(scores[window], rngs[index], temperature)
                for offset in range(window.stop - window.start):
                    if picks is not None:
                        choice = int(picks[offset])
                        value, tokens = candidates[choice], token_lists[choice]
                    request_rows[offset][name] = value
                    lane_tokens[window.start + offset] = tokens
            session.extend_rows(lane_tokens)
            session.extend_shared(synth._separator_ids)

        tables = []
        for request_rows in rows:
            table = Table.from_records(request_rows, columns=columns)
            table = self.fitted.enhancer.inverse_transform(table)
            if subject in table.column_names:
                table = table.drop(subject)
            tables.append(table)
        obs.emit_span("service.rows_batch", obs.current_context(), batch_start_us,
                      obs.monotonic_us() - batch_start_us,
                      attrs={"requests": len(requests), "lanes": total})
        return tables
