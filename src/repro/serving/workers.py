"""Process worker pool for CPU-parallel sampling.

Thread sharding cannot speed up the sampling hot path — it is pure
Python/NumPy under the GIL — so this pool runs the same deterministic work
units (:meth:`FittedPipeline.sample_block` blocks, coalesced row batches,
whole databases) in worker *processes*.  Each worker cold-starts by
loading the bundle from its digest-addressed path (optionally memory-mapped
so the n-gram count tables share page cache across workers) and verifies
the content digest before reporting ready.  Because every work unit's seed
is ``SeedSequence``-derived from the request seed alone, results are
bit-identical for any worker count and identical to the thread-sharded and
serial paths.

Transport stays in the repo's pickle-free spirit: tables cross the process
boundary as NPZ bytes through :mod:`repro.store.tablefmt`, requests as
plain tuples of primitives.

Failure model: a worker that dies (OOM kill, hard crash) fails the tasks
assigned to it — each with a :class:`ServingError` naming the worker and
its exit code — while every other worker keeps serving; the pool
immediately respawns a replacement so capacity recovers without
intervention.
"""

from __future__ import annotations

import io
import multiprocessing
import os
import threading
import time
from multiprocessing.connection import wait as connection_wait

import numpy as np

from repro.serving.service import RowRequest, ServingConfig, ServingError, SynthesisService
from repro.store.tablefmt import arrays_to_table, table_to_arrays

#: Seconds a worker gets to load the bundle and report ready.
_READY_TIMEOUT_S = 60.0
_JOIN_TIMEOUT_S = 5.0


def encode_table(table) -> bytes:
    """Serialize a table to NPZ bytes (the columnar wire format)."""
    buffer = io.BytesIO()
    np.savez(buffer, **table_to_arrays(table))
    return buffer.getvalue()


def decode_table(blob: bytes):
    """Inverse of :func:`encode_table`."""
    with np.load(io.BytesIO(blob)) as data:
        return arrays_to_table({key: data[key] for key in data.files})


def _execute(service: SynthesisService, method: str, payload):
    """Run one task against the worker-local service; returns wire payload."""
    if method == "sample_block":
        start, count, seed = payload
        return encode_table(service.fitted.sample_block(start, count, seed))
    if method == "sample_rows_many":
        requests = [RowRequest(n=n, conditions=conditions, seed=seed)
                    for n, conditions, seed in payload]
        return [encode_table(table) for table in service.sample_rows_many(requests)]
    if method == "sample_database":
        n, seed = payload
        database = service.fitted.sample_database(n, seed=seed)
        return {name: encode_table(table) for name, table in database.items()}
    if method == "ping":
        return None
    if method == "crash":  # test hook: die without cleanup, like an OOM kill
        os._exit(3)
    raise ServingError("unknown worker method {!r}".format(method))


def _worker_main(worker_index: int, bundle_path: str, mmap: bool, block_size: int,
                 tasks, results) -> None:
    """Worker process entry point: cold-start from the bundle, then serve."""
    try:
        config = ServingConfig(shards=1, block_size=block_size, cache_bytes=0,
                               batch_window_s=0.0, mmap=mmap)
        service = SynthesisService.from_bundle(bundle_path, config=config)
    except BaseException as error:
        results.put(("failed", None, worker_index, repr(error)))
        return
    results.put(("ready", None, worker_index, service.digest))
    while True:
        item = tasks.get()
        if item is None:
            return
        task_id, method, payload = item
        try:
            outcome = _execute(service, method, payload)
        except BaseException as error:
            results.put(("error", task_id, worker_index, repr(error)))
        else:
            results.put(("done", task_id, worker_index, outcome))


class _Task:
    """A submitted work unit awaiting its result."""

    __slots__ = ("task_id", "method", "event", "value", "error", "worker_index")

    def __init__(self, task_id: int, method: str):
        self.task_id = task_id
        self.method = method
        self.event = threading.Event()
        self.value = None
        self.error: Exception | None = None
        self.worker_index: int | None = None

    def result(self, timeout: float | None = None):
        if not self.event.wait(timeout):
            raise ServingError("timed out waiting for worker task {!r}".format(self.method))
        if self.error is not None:
            raise self.error
        return self.value


class WorkerPool:
    """A fixed-size pool of bundle-loaded sampling processes.

    Tasks are dispatched round-robin onto per-worker queues; a collector
    thread resolves results and a monitor thread watches process sentinels
    so a crashed worker fails only its in-flight tasks and is respawned.
    """

    def __init__(self, bundle_path, workers: int = 1, mmap: bool = False,
                 block_size: int = 256, expected_digest: str | None = None,
                 start_method: str | None = None):
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self.bundle_path = str(bundle_path)
        self.workers = workers
        self.mmap = bool(mmap)
        self.block_size = block_size
        methods = multiprocessing.get_all_start_methods()
        if start_method is None:
            start_method = "fork" if "fork" in methods else methods[0]
        self._context = multiprocessing.get_context(start_method)
        self._results = self._context.Queue()
        self._task_queues = [self._context.Queue() for _ in range(workers)]
        self._lock = threading.Lock()
        self._tasks: dict[int, _Task] = {}
        self._next_task_id = 0
        self._next_worker = 0
        self._closing = False
        self.digest: str | None = None
        self.restarts = 0

        self._processes = [self._spawn(index) for index in range(workers)]
        self._await_ready(range(workers), expected_digest)
        self._collector = threading.Thread(target=self._collect, daemon=True,
                                           name="workerpool-collector")
        self._collector.start()
        self._monitor = threading.Thread(target=self._watch, daemon=True,
                                         name="workerpool-monitor")
        self._monitor.start()

    # -- lifecycle ---------------------------------------------------------------------

    def _spawn(self, index: int):
        process = self._context.Process(
            target=_worker_main,
            args=(index, self.bundle_path, self.mmap, self.block_size,
                  self._task_queues[index], self._results),
            daemon=True,
            name="repro-worker-{}".format(index),
        )
        process.start()
        return process

    def _await_ready(self, indices, expected_digest: str | None) -> None:
        """Block until every listed worker reports a verified cold start."""
        pending = set(indices)
        while pending:
            try:
                kind, _, worker_index, payload = self._results.get(timeout=_READY_TIMEOUT_S)
            except Exception:
                self.close()
                raise ServingError("workers {} never reported ready".format(sorted(pending)))
            if kind == "failed":
                self.close()
                raise ServingError("worker {} failed to load bundle: {}".format(
                    worker_index, payload))
            if kind != "ready":
                continue
            if expected_digest is not None and payload != expected_digest:
                self.close()
                raise ServingError(
                    "worker {} loaded digest {} but the pool serves {}".format(
                        worker_index, payload, expected_digest))
            if self.digest is None:
                self.digest = payload
            pending.discard(worker_index)

    def close(self) -> None:
        """Stop every worker and fail whatever is still in flight."""
        with self._lock:
            if self._closing:
                return
            self._closing = True
            leftovers = list(self._tasks.values())
            self._tasks.clear()
        for task in leftovers:
            task.error = ServingError("worker pool closed")
            task.event.set()
        for queue in self._task_queues:
            try:
                queue.put(None)
            except Exception:
                pass
        for process in self._processes:
            process.join(timeout=_JOIN_TIMEOUT_S)
            if process.is_alive():
                process.terminate()
                process.join(timeout=_JOIN_TIMEOUT_S)
        self._results.put(None)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- dispatch ----------------------------------------------------------------------

    def submit(self, method: str, payload) -> _Task:
        with self._lock:
            if self._closing:
                raise ServingError("worker pool is closed")
            task = _Task(self._next_task_id, method)
            self._next_task_id += 1
            # the parent assigns work at submit time, so it always knows which
            # worker owns a task — a worker that dies without managing to send
            # anything still fails exactly its own tasks
            task.worker_index = self._next_worker
            self._next_worker = (self._next_worker + 1) % self.workers
            self._tasks[task.task_id] = task
        self._task_queues[task.worker_index].put((task.task_id, method, payload))
        return task

    def _collect(self) -> None:
        while True:
            item = self._results.get()
            if item is None:
                return
            kind, task_id, worker_index, payload = item
            if kind == "ready":  # a respawned worker came up
                continue
            with self._lock:
                task = self._tasks.pop(task_id, None)
                if task is None:
                    continue
            if kind == "done":
                task.value = payload
            else:
                task.error = ServingError("worker {} failed {}: {}".format(
                    worker_index, task.method, payload))
            task.event.set()

    def _watch(self) -> None:
        """Fail in-flight tasks of dead workers and respawn replacements."""
        while True:
            with self._lock:
                if self._closing:
                    return
                sentinels = {process.sentinel: index
                             for index, process in enumerate(self._processes)
                             if process.is_alive()}
            if not sentinels:
                return
            fired = connection_wait(list(sentinels), timeout=0.2)
            for sentinel in fired:
                index = sentinels[sentinel]
                process = self._processes[index]
                process.join(timeout=_JOIN_TIMEOUT_S)
                # give the collector a beat to drain "picked"/"done" messages
                # the worker managed to send before dying, so finished tasks
                # are not failed retroactively
                time.sleep(0.1)
                with self._lock:
                    if self._closing:
                        return
                    orphans = [task for task in self._tasks.values()
                               if task.worker_index == index]
                    for task in orphans:
                        del self._tasks[task.task_id]
                    self.restarts += 1
                    self._processes[index] = self._spawn(index)
                for task in orphans:
                    task.error = ServingError(
                        "worker {} died (exit code {}) while serving {}".format(
                            index, process.exitcode, task.method))
                    task.event.set()

    # -- typed helpers -----------------------------------------------------------------

    def sample_blocks(self, blocks) -> list:
        """Run ``sample_block`` tasks for every ``(start, count, seed)`` block."""
        tasks = [self.submit("sample_block", tuple(block)) for block in blocks]
        return [decode_table(task.result()) for task in tasks]

    def sample_rows_many(self, requests) -> list:
        """Ship one coalesced row batch to a single worker (one merged pass)."""
        payload = [(request.n, tuple(request.conditions), request.seed)
                   for request in requests]
        task = self.submit("sample_rows_many", payload)
        return [decode_table(blob) for blob in task.result()]

    def sample_database(self, n, seed) -> dict:
        task = self.submit("sample_database", (n, seed))
        return {name: decode_table(blob) for name, blob in task.result().items()}
