"""Process worker pool for CPU-parallel sampling.

Thread sharding cannot speed up the sampling hot path — it is pure
Python/NumPy under the GIL — so this pool runs the same deterministic work
units (:meth:`FittedPipeline.sample_block` blocks, coalesced row batches,
whole databases) in worker *processes*.  Each worker cold-starts by
loading the bundle from its digest-addressed path (optionally memory-mapped
so the n-gram count tables share page cache across workers) and verifies
the content digest before reporting ready.  Because every work unit's seed
is ``SeedSequence``-derived from the request seed alone, results are
bit-identical for any worker count and identical to the thread-sharded and
serial paths.

Transport stays in the repo's pickle-free spirit: tables cross the process
boundary as NPZ bytes through :mod:`repro.store.tablefmt`, requests as
plain tuples of primitives.

Failure model (see also the README's "Failure model & operations"):

* **Retries.** A dead worker's orphaned tasks are re-dispatched to live
  workers with a bounded budget (``retries`` beyond the first attempt) and
  exponential backoff.  Only the task the worker was actually serving (the
  oldest-dispatched orphan) is charged an attempt; tasks still waiting in
  the dead worker's queue re-dispatch without touching their budget — deep
  queues do not burn retries on work that never started.  Seeds travel in
  the payload, so a retried result is bit-identical to the single-shot path
  no matter which worker runs it.  With the budget exhausted (or
  ``retries=0``) a task fails with a :class:`ServingError` naming the
  worker and exit code.
* **Deadlines.** ``submit(..., deadline_s=...)`` arms a watchdog: a task
  still unresolved past its deadline fails with
  :class:`DeadlineExceeded` and the worker holding it is killed and
  respawned, so one wedged request cannot pin a worker forever.
* **Crash-loop breaker.** ``breaker_threshold`` worker deaths inside
  ``breaker_window_s`` trip the pool open: respawning stops, ``submit``
  raises :class:`PoolDegraded` (callers fall back or fail fast), and after
  ``breaker_cooldown_s`` the pool half-opens — dead workers respawn as a
  probe; a successful cold start or task result closes the breaker, a
  further death re-opens it.
"""

from __future__ import annotations

import io
import multiprocessing
import os
import threading
import time
from collections import deque
from multiprocessing.connection import wait as connection_wait
from queue import Empty

import numpy as np

from repro import faults
from repro.obs import trace as obs_trace
from repro.serving.metrics import Counter
from repro.serving.service import (DeadlineExceeded, PoolDegraded, RowRequest,
                                   ServingConfig, ServingError, SynthesisService,
                                   process_peak_rss_bytes)
from repro.store.tablefmt import arrays_to_table, table_to_arrays

#: Seconds a worker gets to load the bundle and report ready.
_READY_TIMEOUT_S = 60.0
_JOIN_TIMEOUT_S = 5.0
#: Upper bound on one retry backoff sleep, whatever the budget says.
_MAX_BACKOFF_S = 2.0
#: How long a ``task_hang`` fault sleeps when the plan gives no argument.
_HANG_DEFAULT_S = 3600.0


def encode_table(table) -> bytes:
    """Serialize a table to NPZ bytes (the columnar wire format)."""
    buffer = io.BytesIO()
    np.savez(buffer, **table_to_arrays(table))
    return buffer.getvalue()


def decode_table(blob: bytes):
    """Inverse of :func:`encode_table`."""
    with np.load(io.BytesIO(blob)) as data:
        return arrays_to_table({key: data[key] for key in data.files})


def _execute(service: SynthesisService, method: str, payload):
    """Run one task against the worker-local service; returns wire payload."""
    if method == "sample_block":
        start, count, seed = payload
        return encode_table(service.fitted.sample_block(start, count, seed))
    if method == "sample_rows_many":
        requests = [RowRequest(n=n, conditions=conditions, seed=seed)
                    for n, conditions, seed in payload]
        return [encode_table(table) for table in service.sample_rows_many(requests)]
    if method == "sample_database":
        n, seed = payload
        database = service.fitted.sample_database(n, seed=seed)
        return {name: encode_table(table) for name, table in database.items()}
    if method == "ping":
        return None
    raise ServingError("unknown worker method {!r}".format(method))


def _crash(results, code: int = 3) -> None:
    """Die abruptly, but flush this process's result-channel feeder first.

    ``os._exit`` alone can kill the queue's feeder thread mid-write, tearing
    a frame in the *shared* results pipe (or dying while holding its write
    lock) — which wedges the collector for every other worker.  A scripted
    crash simulates a dead worker, not corrupted IPC, so flush then die."""
    try:
        results.close()
        results.join_thread()
    except Exception:
        pass
    os._exit(code)


def _worker_main(worker_index: int, bundle_path: str, mmap: bool, block_size: int,
                 tasks, results, fault_spec: str | None = None,
                 trace_enabled: bool = False) -> None:
    """Worker process entry point: cold-start from the bundle, then serve."""
    if fault_spec:
        # each worker life arms its own injector, so per-process hit counters
        # (e.g. "crash on every 25th task") restart from zero on respawn
        faults.arm(fault_spec)
    # a forked worker inherits the parent's tracer; replace it with a local
    # buffer (drained into every result's meta) or disarm it outright
    if trace_enabled:
        span_buffer = obs_trace.configure_buffered()
    else:
        obs_trace.disable()
        span_buffer = None
    fired_last: dict[str, int] = {}

    def _meta() -> dict:
        """Per-result sideband: peak RSS, buffered spans, fault-fired deltas."""
        meta: dict = {"rss": process_peak_rss_bytes()}
        if span_buffer is not None:
            meta["spans"] = span_buffer.drain()
        fired = faults.fired_snapshot()
        delta = {point: count - fired_last.get(point, 0)
                 for point, count in fired.items()
                 if count > fired_last.get(point, 0)}
        if delta:
            meta["faults"] = delta
            fired_last.update(fired)
        return meta

    try:
        from repro.registry.cas import RegistrySource

        config = ServingConfig(shards=1, block_size=block_size, cache_bytes=0,
                               batch_window_s=0.0, mmap=mmap)
        if isinstance(bundle_path, RegistrySource):
            service = SynthesisService.from_registry(bundle_path.root,
                                                     bundle_path.digest,
                                                     config=config)
        else:
            service = SynthesisService.from_bundle(bundle_path, config=config)
    except BaseException as error:
        results.put(("failed", None, worker_index, repr(error), _meta()))
        return
    results.put(("ready", None, worker_index, service.digest, _meta()))
    while True:
        item = tasks.get()
        if item is None:
            return
        task_id, method, payload, trace_ctx = item
        received_us = obs_trace.monotonic_us()
        if method == "crash":  # test hook: die instead of serving, like an OOM kill
            _crash(results)
        if faults.check("worker_crash") is not None:
            _crash(results)
        hang = faults.check("task_hang")
        if hang is not None:
            time.sleep(hang.arg if hang.arg is not None else _HANG_DEFAULT_S)
        if trace_ctx is not None and span_buffer is not None:
            parent = (trace_ctx[0], trace_ctx[1])
            obs_trace.emit_span("pool.queue_wait", parent, trace_ctx[2],
                                received_us - trace_ctx[2],
                                attrs={"worker": worker_index})
            task_span = obs_trace.span("worker.task", parent=parent,
                                       attrs={"worker": worker_index, "method": method})
        else:
            task_span = obs_trace.NULL_SPAN
        try:
            with task_span:
                outcome = _execute(service, method, payload)
        except BaseException as error:
            results.put(("error", task_id, worker_index, repr(error), _meta()))
        else:
            results.put(("done", task_id, worker_index, outcome, _meta()))


class _Task:
    """A submitted work unit awaiting its result.

    The payload is kept so the pool can re-dispatch the task verbatim if
    its worker dies; ``deadline`` is an absolute ``time.monotonic`` instant
    the watchdog enforces.
    """

    __slots__ = ("task_id", "method", "payload", "event", "value", "error",
                 "worker_index", "attempts", "deadline", "dispatch_seq",
                 "trace_ctx", "_pool")

    def __init__(self, task_id: int, method: str, payload=None, pool=None):
        self.task_id = task_id
        self.method = method
        self.payload = payload
        self.event = threading.Event()
        self.value = None
        self.error: Exception | None = None
        self.worker_index: int | None = None
        self.attempts = 1
        self.deadline: float | None = None
        self.dispatch_seq = 0
        #: ``(trace_id, span_id, submitted_us)`` shipped with the task frame
        #: so the worker can stitch its spans under the submitting request.
        self.trace_ctx: tuple | None = None
        self._pool = pool

    def result(self, timeout: float | None = None):
        if not self.event.wait(timeout):
            # drop the abandoned entry from the pool's registry so its
            # payload cannot be pinned forever by a caller that gave up
            if self._pool is not None:
                self._pool._forget(self)
            if not self.event.is_set():  # may have resolved in the race window
                raise ServingError("timed out waiting for worker task {!r}".format(self.method))
        if self.error is not None:
            raise self.error
        return self.value


class WorkerPool:
    """A fixed-size pool of bundle-loaded sampling processes.

    Tasks are dispatched round-robin onto per-worker queues; a collector
    thread resolves results and a monitor thread watches process sentinels
    and task deadlines so a crashed or wedged worker costs at most one
    retry round, not the request.
    """

    def __init__(self, bundle_path, workers: int = 1, mmap: bool = False,
                 block_size: int = 256, expected_digest: str | None = None,
                 start_method: str | None = None, retries: int = 0,
                 retry_backoff_s: float = 0.05, breaker_threshold: int = 0,
                 breaker_window_s: float = 30.0, breaker_cooldown_s: float = 5.0,
                 faults_spec: str | None = None, metrics=None,
                 trace: bool | None = None):
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if retries < 0:
            raise ValueError("retries must be non-negative")
        if retry_backoff_s < 0:
            raise ValueError("retry_backoff_s must be non-negative")
        if breaker_threshold < 0:
            raise ValueError("breaker_threshold must be non-negative (0 disables)")
        from repro.registry.cas import RegistrySource

        # a RegistrySource travels to the workers as-is (it is a frozen
        # picklable reference); anything else is a bundle file path
        self.bundle_path = (bundle_path if isinstance(bundle_path, RegistrySource)
                            else str(bundle_path))
        self.workers = workers
        self.mmap = bool(mmap)
        self.block_size = block_size
        self.retries = retries
        self.retry_backoff_s = retry_backoff_s
        self.breaker_threshold = breaker_threshold
        self.breaker_window_s = breaker_window_s
        self.breaker_cooldown_s = breaker_cooldown_s
        self.faults_spec = faults_spec
        self._metrics = metrics
        # decided once at construction: workers are told whether to buffer
        # spans when they are spawned, so flipping the global tracer later
        # does not desynchronize parent and children
        self._trace = obs_trace.enabled() if trace is None else bool(trace)
        self._worker_rss: dict[int, int] = {}
        methods = multiprocessing.get_all_start_methods()
        if start_method is None:
            start_method = "fork" if "fork" in methods else methods[0]
        self._context = multiprocessing.get_context(start_method)
        self._results = self._context.Queue()
        self._task_queues = [self._context.Queue() for _ in range(workers)]
        self._lock = threading.Lock()
        self._tasks: dict[int, _Task] = {}
        self._next_task_id = 0
        self._next_worker = 0
        self._dispatch_seq = 0
        self._closing = False
        self.digest: str | None = None
        self._restarts = Counter()
        self._tasks_retried = Counter()
        self._retries_exhausted = Counter()
        self._deadline_kills = Counter()
        self._breaker_trips = Counter()
        self._deaths: deque = deque()          # monotonic timestamps in the window
        self._dead: set[int] = set()           # indices awaiting respawn (breaker open)
        self._breaker_state = "closed"
        self._breaker_opened_at = 0.0

        self._processes = [self._spawn(index) for index in range(workers)]
        self._await_ready(range(workers), expected_digest)
        self._collector = threading.Thread(target=self._collect, daemon=True,
                                           name="workerpool-collector")
        self._collector.start()
        self._monitor = threading.Thread(target=self._watch, daemon=True,
                                         name="workerpool-monitor")
        self._monitor.start()

    # -- lifecycle ---------------------------------------------------------------------

    def _spawn(self, index: int):
        process = self._context.Process(
            target=_worker_main,
            args=(index, self.bundle_path, self.mmap, self.block_size,
                  self._task_queues[index], self._results, self.faults_spec,
                  self._trace),
            daemon=True,
            name="repro-worker-{}".format(index),
        )
        process.start()
        return process

    def _await_ready(self, indices, expected_digest: str | None) -> None:
        """Block until every listed worker reports a verified cold start."""
        pending = set(indices)
        while pending:
            try:
                kind, _, worker_index, payload, meta = self._results.get(
                    timeout=_READY_TIMEOUT_S)
            except Exception:
                self.close()
                raise ServingError("workers {} never reported ready".format(sorted(pending)))
            self._absorb_meta(worker_index, meta)
            if kind == "failed":
                self.close()
                raise ServingError("worker {} failed to load bundle: {}".format(
                    worker_index, payload))
            if kind != "ready":
                continue
            if expected_digest is not None and payload != expected_digest:
                self.close()
                raise ServingError(
                    "worker {} loaded digest {} but the pool serves {}".format(
                        worker_index, payload, expected_digest))
            if self.digest is None:
                self.digest = payload
            pending.discard(worker_index)

    def close(self) -> None:
        """Stop every worker and fail whatever is still in flight."""
        with self._lock:
            if self._closing:
                return
            self._closing = True
            leftovers = list(self._tasks.values())
            self._tasks.clear()
        for task in leftovers:
            task.error = ServingError("worker pool closed")
            task.event.set()
        for queue in self._task_queues:
            try:
                queue.put(None)
            except Exception:
                pass
        for process in self._processes:
            process.join(timeout=_JOIN_TIMEOUT_S)
            if process.is_alive():
                process.terminate()
                process.join(timeout=_JOIN_TIMEOUT_S)
        self._results.put(None)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- introspection -----------------------------------------------------------------

    @property
    def restarts(self) -> int:
        return self._restarts.value

    @property
    def degraded(self) -> bool:
        """Whether the crash-loop breaker is open (pool refusing work)."""
        with self._lock:
            return self._breaker_state == "open"

    @property
    def breaker_state(self) -> str:
        with self._lock:
            return self._breaker_state

    def stats(self) -> dict:
        with self._lock:
            state = self._breaker_state
            dead = len(self._dead)
            worker_rss = dict(self._worker_rss)
        return {
            "workers": self.workers,
            "retries": self.retries,
            "restarts": self._restarts.value,
            "tasks_retried": self._tasks_retried.value,
            "retries_exhausted": self._retries_exhausted.value,
            "deadline_kills": self._deadline_kills.value,
            "breaker_state": state,
            "breaker_threshold": self.breaker_threshold,
            "breaker_trips": self._breaker_trips.value,
            "dead_workers": dead,
            # per-worker peak RSS piggybacked on the result pipe; string keys
            # so the dict survives the JSON trip through /stats unchanged
            "worker_peak_rss_bytes": {str(index): rss
                                      for index, rss in sorted(worker_rss.items())},
            "max_worker_peak_rss_bytes": max(worker_rss.values(), default=0),
        }

    # -- dispatch ----------------------------------------------------------------------

    def submit(self, method: str, payload, deadline_s: float | None = None) -> _Task:
        context = obs_trace.current_context()
        with self._lock:
            if self._closing:
                raise ServingError("worker pool is closed")
            if self._breaker_state == "open":
                raise PoolDegraded(
                    "worker pool is degraded: {} worker deaths within {:.0f}s tripped "
                    "the crash-loop breaker; retry after the {:.0f}s cooldown".format(
                        len(self._deaths), self.breaker_window_s, self.breaker_cooldown_s))
            task = _Task(self._next_task_id, method, payload, pool=self)
            self._next_task_id += 1
            # the parent assigns work at submit time, so it always knows which
            # worker owns a task — a worker that dies without managing to send
            # anything still fails exactly its own tasks
            task.worker_index = self._pick_worker_locked()
            if deadline_s is not None:
                task.deadline = time.monotonic() + deadline_s
            task.dispatch_seq = self._dispatch_seq
            self._dispatch_seq += 1
            if context is not None:
                task.trace_ctx = (context[0], context[1], obs_trace.monotonic_us())
            self._tasks[task.task_id] = task
            # the put happens under the lock so dispatch_seq order equals
            # queue order — _handle_death relies on it to tell the task the
            # worker was serving apart from ones still waiting in its queue
            self._task_queues[task.worker_index].put(
                (task.task_id, method, payload, task.trace_ctx))
        return task

    def _pick_worker_locked(self) -> int:
        """Round-robin over workers, skipping ones the breaker holds dead."""
        index = self._next_worker
        for _ in range(self.workers):
            index = self._next_worker
            self._next_worker = (self._next_worker + 1) % self.workers
            if index not in self._dead:
                return index
        return index  # every worker dead: the queue survives until respawn

    def _forget(self, task: _Task) -> None:
        """Drop a task a caller abandoned (its ``result`` timed out)."""
        with self._lock:
            self._tasks.pop(task.task_id, None)

    def _count(self, name: str, amount: int = 1, **labels) -> None:
        """Bump a labeled counter when the pool was handed a registry."""
        if self._metrics is not None:
            self._metrics.counter(name, **labels).increment(amount)

    def _absorb_meta(self, worker_index, meta) -> None:
        """Fold one result's sideband into pool-level observability state."""
        if not meta:
            return
        rss = meta.get("rss")
        if rss:
            with self._lock:
                if rss > self._worker_rss.get(worker_index, 0):
                    self._worker_rss[worker_index] = rss
        spans = meta.get("spans")
        if spans:
            for record in spans:
                obs_trace.emit_raw(record)
        fired = meta.get("faults")
        if fired:
            for point, count in fired.items():
                self._count("faults_fired_total", amount=count, point=point,
                            worker=str(worker_index))

    def _collect(self) -> None:
        while True:
            item = self._results.get()
            if item is None:
                return
            kind, task_id, worker_index, payload, meta = item
            self._absorb_meta(worker_index, meta)
            self._count("worker_results_total", worker=str(worker_index), kind=kind)
            if kind in ("ready", "failed"):
                # "ready" proves a respawned worker cold-started; either way the
                # monitor owns death handling — here we only settle the breaker
                if kind == "ready":
                    self._breaker_probe_succeeded()
                continue
            with self._lock:
                task = self._tasks.pop(task_id, None)
            # any task result proves the sending worker is serving
            self._breaker_probe_succeeded()
            if task is None:
                continue  # duplicate of a retried task, or an abandoned one
            if kind == "done":
                task.value = payload
            else:
                task.error = ServingError("worker {} failed {}: {}".format(
                    worker_index, task.method, payload))
            task.event.set()

    def _breaker_transition(self, state: str, **attrs) -> None:
        """Record a breaker state change as a root span + labeled counter."""
        self._count("breaker_transitions_total", state=state)
        obs_trace.emit_span(
            "pool.breaker_" + state, None, obs_trace.monotonic_us(), 0,
            attrs=attrs or None, status="error" if state == "open" else "ok")

    def _breaker_probe_succeeded(self) -> None:
        """A half-open probe came back healthy: close the breaker."""
        with self._lock:
            closed = self._breaker_state == "half_open"
            if closed:
                self._breaker_state = "closed"
                self._deaths.clear()
        if closed:
            self._breaker_transition("closed")

    def _watch(self) -> None:
        """Monitor loop: deadlines, worker deaths, and breaker transitions."""
        while True:
            with self._lock:
                if self._closing:
                    return
                now = time.monotonic()
                overdue = [task for task in self._tasks.values()
                           if task.deadline is not None and now > task.deadline]
                for task in overdue:
                    del self._tasks[task.task_id]
                kill = sorted({task.worker_index for task in overdue} - self._dead)
                respawn = []
                half_opened = False
                if (self._breaker_state == "open"
                        and now - self._breaker_opened_at >= self.breaker_cooldown_s):
                    self._breaker_state = "half_open"
                    half_opened = True
                    respawn = sorted(self._dead)
                candidates = [(index, process)
                              for index, process in enumerate(self._processes)
                              if index not in self._dead]
            if half_opened:
                self._breaker_transition("half_open")
            for task in overdue:
                task.error = DeadlineExceeded(
                    "worker task {!r} missed its deadline; "
                    "the worker holding it is being replaced".format(task.method))
                if task.trace_ctx is not None:
                    now_us = obs_trace.monotonic_us()
                    obs_trace.emit_span(
                        "pool.deadline", task.trace_ctx[:2], now_us, 0,
                        attrs={"method": task.method, "worker": task.worker_index},
                        status="error",
                        events=[{"name": "deadline_exceeded", "t_us": now_us}])
                task.event.set()
            for index in kill:
                self._deadline_kills.increment()
                process = self._processes[index]
                if process.is_alive():
                    process.kill()
            for index in respawn:
                self._respawn(index)
            # a worker that died while this thread was busy handling another
            # death has a non-alive process but never fires its sentinel again
            # for connection_wait — sweep for those explicitly
            newly_dead = [index for index, process in candidates
                          if not process.is_alive()]
            if newly_dead:
                for index in newly_dead:
                    self._handle_death(index)
                continue
            sentinels = {process.sentinel: index for index, process in candidates}
            if not sentinels:
                time.sleep(0.2)  # breaker holds every worker dead; keep ticking
                continue
            fired = connection_wait(list(sentinels), timeout=0.2)
            for sentinel in fired:
                self._handle_death(sentinels[sentinel])

    def _respawn(self, index: int) -> None:
        with self._lock:
            if self._closing:
                return
            self._dead.discard(index)
            self._restarts.increment()
            self._processes[index] = self._spawn(index)

    def _drain_queue(self, index: int) -> None:
        """Empty a dead worker's queue so a respawn does not replay tasks the
        retry path already re-dispatched elsewhere (duplicate work, not
        duplicate results — but the work is real)."""
        queue = self._task_queues[index]
        while True:
            try:
                item = queue.get(timeout=0.05)
            except Empty:
                return
            except Exception:
                return
            if item is None:  # re-queue the close() poison pill
                queue.put(None)
                return

    def _handle_death(self, index: int) -> None:
        """Apply the failure policy for one dead worker."""
        process = self._processes[index]
        process.join(timeout=_JOIN_TIMEOUT_S)
        # give the collector a beat to drain "done" messages the worker
        # managed to send before dying, so finished tasks are not failed
        # retroactively
        time.sleep(0.1)
        self._drain_queue(index)
        with self._lock:
            if self._closing:
                return
            if index in self._dead:
                return
            self._dead.add(index)
            now = time.monotonic()
            self._deaths.append(now)
            while self._deaths and now - self._deaths[0] > self.breaker_window_s:
                self._deaths.popleft()
            tripped = False
            if self._breaker_state == "half_open":
                tripped = True  # the probe respawn died: straight back open
            elif (self.breaker_threshold > 0 and self._breaker_state == "closed"
                    and len(self._deaths) >= self.breaker_threshold):
                tripped = True
            if tripped:
                self._breaker_state = "open"
                self._breaker_opened_at = now
                self._breaker_trips.increment()
            deaths_in_window = len(self._deaths)
            breaker_open = self._breaker_state == "open"
            orphans = [task for task in self._tasks.values()
                       if task.worker_index == index]
            for task in orphans:
                del self._tasks[task.task_id]
            # the worker serves its queue in dispatch order, so the oldest
            # unfinished orphan is the task it died serving — only that task
            # is charged a retry attempt; the rest were still queued and
            # re-dispatch without touching their budget
            charged = min(orphans, key=lambda t: t.dispatch_seq, default=None)
            retry, fail = [], []
            for task in orphans:
                if breaker_open or self.retries == 0:
                    fail.append(task)
                elif task is charged and task.attempts > self.retries:
                    fail.append(task)
                else:
                    retry.append(task)
        self._count("worker_deaths_total", worker=str(index))
        if tripped:
            self._breaker_transition("open", deaths=deaths_in_window)
        if charged is not None and charged.trace_ctx is not None:
            # the attempt the dead worker was serving, visible in the trace
            # even though the worker itself could not ship its spans
            obs_trace.emit_span(
                "pool.attempt_failed", charged.trace_ctx[:2],
                obs_trace.monotonic_us(), 0,
                attrs={"worker": index, "exit_code": process.exitcode,
                       "attempt": charged.attempts, "method": charged.method},
                status="error")
        for task in fail:
            if breaker_open and self.retries > 0 and task.attempts <= self.retries:
                task.error = PoolDegraded(
                    "worker {} died (exit code {}) while serving {} and the "
                    "crash-loop breaker is open".format(index, process.exitcode, task.method))
            else:
                suffix = (" after {} attempts".format(task.attempts)
                          if task.attempts > 1 else "")
                task.error = ServingError(
                    "worker {} died (exit code {}) while serving {}{}".format(
                        index, process.exitcode, task.method, suffix))
                if task.attempts > 1:
                    self._retries_exhausted.increment()
            task.event.set()
        if not breaker_open:
            self._respawn(index)
        if retry:
            # one backoff sleep per death event, exponential in the charged
            # task's attempt count
            attempt = charged.attempts if charged in retry else 1
            delay = self.retry_backoff_s * (2 ** (attempt - 1))
            if delay > 0:
                time.sleep(min(delay, _MAX_BACKOFF_S))
        for task in retry:
            with self._lock:
                if self._closing or self._breaker_state == "open":
                    requeue = False
                else:
                    requeue = True
                    if task is charged:
                        task.attempts += 1
                        self._tasks_retried.increment()
                    task.worker_index = self._pick_worker_locked()
                    task.dispatch_seq = self._dispatch_seq
                    self._dispatch_seq += 1
                    if task.trace_ctx is not None:
                        # restamp the dispatch time so the next queue-wait
                        # span measures from this re-dispatch, not the
                        # original submit
                        task.trace_ctx = (task.trace_ctx[0], task.trace_ctx[1],
                                          obs_trace.monotonic_us())
                    self._tasks[task.task_id] = task
                    self._task_queues[task.worker_index].put(
                        (task.task_id, task.method, task.payload, task.trace_ctx))
            if requeue and task is charged:
                self._count("tasks_retried_total", worker=str(task.worker_index))
                if task.trace_ctx is not None:
                    obs_trace.emit_span(
                        "pool.retry", task.trace_ctx[:2], task.trace_ctx[2], 0,
                        attrs={"attempt": task.attempts, "method": task.method,
                               "worker": task.worker_index})
            if not requeue:
                task.error = PoolDegraded(
                    "worker pool degraded before task {!r} could be retried".format(
                        task.method))
                task.event.set()

    # -- typed helpers -----------------------------------------------------------------

    def sample_blocks(self, blocks, deadline_s: float | None = None) -> list:
        """Run ``sample_block`` tasks for every ``(start, count, seed)`` block."""
        tasks = [self.submit("sample_block", tuple(block), deadline_s=deadline_s)
                 for block in blocks]
        return [decode_table(task.result()) for task in tasks]

    def sample_rows_many(self, requests, deadline_s: float | None = None) -> list:
        """Ship one coalesced row batch to a single worker (one merged pass)."""
        payload = [(request.n, tuple(request.conditions), request.seed)
                   for request in requests]
        task = self.submit("sample_rows_many", payload, deadline_s=deadline_s)
        return [decode_table(blob) for blob in task.result()]

    def sample_database(self, n, seed, deadline_s: float | None = None) -> dict:
        task = self.submit("sample_database", (n, seed), deadline_s=deadline_s)
        return {name: decode_table(blob) for name, blob in task.result().items()}
