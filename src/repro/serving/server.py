"""Asyncio HTTP front end for :class:`SynthesisService`.

A small stdlib-only JSON-over-HTTP server: the asyncio event loop accepts
connections and parses requests, sampling itself runs on a thread pool so
the loop never blocks — and because several requests are in those threads
at once, concurrent conditioned ``sample_rows`` calls from *different
connections* fall into the service's existing leader/follower coalescing
and are served by one merged engine pass.

Backpressure is explicit: at most ``max_queue`` requests may be in flight
(queued or executing); request number ``max_queue + 1`` is rejected
immediately with **429 Too Many Requests** and a JSON error body instead
of being buffered without bound.  The high-water mark of the in-flight
count is tracked so operators can see how close traffic comes to the
limit before rejections start.

Endpoints (all JSON unless noted):

* ``POST /sample_table``    ``{"n": int?, "seed": int?, "stream": bool?, "timeout_s": float?}``
* ``POST /sample_rows``     ``{"n": int, "conditions": {...}?, "seed": int?, "timeout_s": float?}``
* ``POST /sample_database`` ``{"n": int | {table: int}?, "seed": int?, "timeout_s": float?}``
* ``GET  /stats``           service counters + latency histograms + server section
* ``GET  /metrics``         the same metrics plane in Prometheus text format
* ``GET  /trace``           recent spans when tracing uses the in-memory ring sink
* ``GET  /healthz``         liveness and the served bundle digest
* ``GET  /readyz``          readiness — 503 while draining or while the worker
  pool's crash-loop breaker holds the service degraded in fail-fast mode

Observability: every request is answered with an ``X-Request-Id`` header
(honored when the client supplies one; a 16-hex id doubles as the trace id
so client-chosen ids stitch straight into the trace tree), one structured
access-log line per request goes to stderr (method, path, status, request
id, duration), and when tracing is armed (``ServingConfig.trace``) each
request becomes a ``server.request`` span whose children cover executor
queue wait, service work, worker-pool dispatch and per-chunk generation.

Tables come back as ``{"columns": [...], "rows": [{col: value}, ...]}``;
databases as ``{"tables": {name: table}}``.  The ``/stats`` payload embeds
:meth:`SynthesisService.stats` unchanged (same schema as in-process) plus
a ``server`` section with accept/reject counters and queue watermarks.

``"stream": true`` turns the ``/sample_table`` response into a chunked
transfer of newline-delimited JSON: one ``{"columns", "rows"}`` object per
serving block followed by a ``{"done": true, ...}`` summary line.  The
first block is sampled *before* the headers go out, so validation errors
still come back as ordinary JSON error responses; rows never accumulate
server-side, which is the point — a table larger than the server's RAM can
be streamed to the client.

Failure semantics (see the README's "Failure model & operations"): a
request that misses its ``timeout_s`` deadline or hits a degraded worker
pool answers **503 Service Unavailable** with a structured
``{"error", "type"}`` body (``type`` is ``"deadline"`` or ``"degraded"``)
— retryable by contract, unlike a 400.  ``SIGTERM`` (or
:meth:`SynthesisServer.begin_drain`) starts a graceful drain: new sampling
requests get 503 + ``Retry-After`` while in-flight work finishes, then the
process flushes final stats and exits.
"""

from __future__ import annotations

import asyncio
import contextvars
import http.client
import json
import re
import signal
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor

from repro import faults
from repro.obs import access_log, prometheus_text
from repro.obs import trace as obs
from repro.obs.prom import CONTENT_TYPE as PROM_CONTENT_TYPE
from repro.serving.service import (DeadlineExceeded, PoolDegraded, ServingError,
                                   SynthesisService)

#: Default bound on in-flight requests before 429 rejection.
DEFAULT_MAX_QUEUE = 64

#: ``Retry-After`` seconds suggested on 503 responses (drain / degraded).
RETRY_AFTER_S = 5

_MAX_HEADER_BYTES = 64 * 1024
_MAX_START_LINE_BYTES = 8 * 1024
_MAX_BODY_BYTES = 64 * 2**20

#: Client-supplied ``X-Request-Id`` values are honored when they look like a
#: token (no header injection, bounded length); a 16-hex value additionally
#: becomes the trace id so client ids stitch into the trace tree directly.
_REQUEST_ID_RE = re.compile(r"^[A-Za-z0-9._-]{1,64}$")
_TRACE_ID_RE = re.compile(r"^[0-9a-f]{16}$")


class IncompleteStream(RuntimeError):
    """A streamed response ended before its terminating summary line.

    ``lines`` holds the decoded ndjson records received before the drop,
    so callers can tell how far the stream got.
    """

    def __init__(self, message: str, lines: list):
        super().__init__(message)
        self.lines = lines


class _BadRequest(Exception):
    """A malformed HTTP request the server answers with 400 and closes."""

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


def _jsonable(value):
    """Coerce numpy scalars (and anything with ``.item()``) to JSON types."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    item = getattr(value, "item", None)
    if callable(item):
        return item()
    return str(value)


def table_payload(table) -> dict:
    """The wire shape of one table: column order plus row records."""
    columns = list(table.column_names)
    rows = [{name: _jsonable(value) for name, value in record.items()}
            for record in table.to_records()]
    return {"columns": columns, "rows": rows}


class SynthesisServer:
    """Serve one :class:`SynthesisService` over HTTP with bounded queueing."""

    def __init__(self, service: SynthesisService, host: str = "127.0.0.1",
                 port: int = 0, max_queue: int = DEFAULT_MAX_QUEUE):
        if max_queue < 1:
            raise ValueError("max_queue must be at least 1")
        self.service = service
        self.host = host
        self.port = port
        self.max_queue = max_queue
        self._server: asyncio.AbstractServer | None = None
        # sampling threads: enough for the whole admission window so queued
        # requests coalesce in the service instead of serializing here
        self._executor = ThreadPoolExecutor(max_workers=max_queue,
                                            thread_name_prefix="serve")
        self._lock = threading.Lock()
        self._in_flight = 0
        self._draining = False
        self._counters = {"accepted": 0, "rejected": 0, "http_errors": 0,
                          "queue_high_water": 0, "malformed_requests": 0,
                          "deadline_errors": 0}

    # -- lifecycle ---------------------------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self._executor.shutdown(wait=False)

    # -- admission control and drain ---------------------------------------------------

    def _admit(self) -> bool:
        with self._lock:
            if self._in_flight >= self.max_queue:
                self._counters["rejected"] += 1
                return False
            self._in_flight += 1
            self._counters["accepted"] += 1
            if self._in_flight > self._counters["queue_high_water"]:
                self._counters["queue_high_water"] = self._in_flight
            return True

    def _release(self) -> None:
        with self._lock:
            self._in_flight -= 1

    def begin_drain(self) -> None:
        """Stop admitting sampling work (503 + ``Retry-After``); GET
        endpoints keep answering so orchestrators can watch the drain."""
        with self._lock:
            self._draining = True

    @property
    def draining(self) -> bool:
        with self._lock:
            return self._draining

    async def drain(self, timeout_s: float = 30.0) -> bool:
        """Begin draining and wait for in-flight work; True if it hit zero."""
        self.begin_drain()
        deadline = time.monotonic() + max(timeout_s, 0.0)
        while True:
            with self._lock:
                if self._in_flight == 0:
                    return True
            if time.monotonic() >= deadline:
                with self._lock:
                    return self._in_flight == 0
            await asyncio.sleep(0.05)

    def _drain_response(self):
        with self._lock:
            self._counters["rejected"] += 1
        return 503, {"error": "server is draining; no new work accepted",
                     "retry_after_s": RETRY_AFTER_S}, {"Retry-After": str(RETRY_AFTER_S)}

    def stats(self) -> dict:
        """The ``/stats`` payload: service stats plus the server section."""
        out = self.service.stats()
        with self._lock:
            server = dict(self._counters)
            server["in_flight"] = self._in_flight
            server["draining"] = self._draining
        server["max_queue"] = self.max_queue
        out["server"] = server
        return out

    # -- request handling --------------------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except _BadRequest as error:
                    with self._lock:
                        self._counters["malformed_requests"] += 1
                    access_log("-", "-", 400, "-", 0.0, error=error.reason)
                    await self._respond(writer, 400,
                                        {"error": "malformed request: {}".format(error.reason)},
                                        close=True)
                    break
                if request is None:
                    break
                method, path, body, req_headers = request
                started = time.perf_counter()
                supplied = (req_headers.get("x-request-id") or "").strip()
                request_id = (supplied if _REQUEST_ID_RE.fullmatch(supplied)
                              else obs.new_trace_id())
                trace_id = request_id if _TRACE_ID_RE.fullmatch(request_id) else None
                with obs.span("server.request",
                              attrs={"method": method, "path": path,
                                     "request_id": request_id},
                              trace_id=trace_id) as sp:
                    streamed = self._stream_request(method, path, body)
                    if streamed is not None:
                        keep_alive, status = await self._respond_stream(
                            writer, streamed, request_id)
                    else:
                        result = await self._dispatch(method, path, body)
                        status, payload = result[0], result[1]
                        headers = dict(result[2]) if len(result) > 2 else {}
                        headers["X-Request-Id"] = request_id
                        keep_alive = await self._respond(writer, status, payload,
                                                         headers)
                    sp.set_attr("status", status)
                duration_ms = (time.perf_counter() - started) * 1000.0
                access_log(method, path, status, request_id, duration_ms)
                self.service.metrics.counter("http_requests_total", path=path,
                                             status=str(status)).increment()
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError, RuntimeError):
                pass  # RuntimeError: the event loop already shut down

    async def _read_request(self, reader: asyncio.StreamReader):
        """Parse one request head + body; ``None`` on clean connection end.

        Malformed requests raise :class:`_BadRequest` so the caller can
        answer 400 and count them, instead of silently dropping the
        connection: oversized heads or start lines, unparseable request
        lines, and duplicate or invalid ``Content-Length`` headers (the
        classic request-smuggling vector) are all rejected explicitly.
        """
        try:
            header = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError:
            return None  # peer closed (cleanly or mid-head) — nobody to answer
        except asyncio.LimitOverrunError:
            raise _BadRequest("request head exceeds the stream limit")
        if len(header) > _MAX_HEADER_BYTES:
            raise _BadRequest("request head exceeds {} bytes".format(_MAX_HEADER_BYTES))
        lines = header.decode("latin-1").split("\r\n")
        if len(lines[0]) > _MAX_START_LINE_BYTES:
            raise _BadRequest("start line exceeds {} bytes".format(_MAX_START_LINE_BYTES))
        parts = lines[0].split(" ")
        if len(parts) != 3:
            raise _BadRequest("unparseable request line")
        method, path = parts[0].upper(), parts[1]
        lengths = []
        headers: dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, _, value = line.partition(":")
            key = name.strip().lower()
            if key:
                headers[key] = value.strip()
            if key == "content-length":
                try:
                    lengths.append(int(value.strip()))
                except ValueError:
                    raise _BadRequest("invalid Content-Length {!r}".format(value.strip()))
        if len(lengths) > 1:
            raise _BadRequest("{} Content-Length headers in one request".format(len(lengths)))
        length = lengths[0] if lengths else 0
        if length < 0:
            raise _BadRequest("negative Content-Length")
        if length > _MAX_BODY_BYTES:
            raise _BadRequest("body of {} bytes exceeds the {} byte limit".format(
                length, _MAX_BODY_BYTES))
        body = await reader.readexactly(length) if length else b""
        return method, path, body, headers

    async def _respond(self, writer: asyncio.StreamWriter, status: int,
                       payload: dict, extra_headers: dict | None = None,
                       close: bool = False) -> bool:
        reasons = {200: "OK", 400: "Bad Request", 404: "Not Found",
                   405: "Method Not Allowed", 429: "Too Many Requests",
                   500: "Internal Server Error", 503: "Service Unavailable"}
        if isinstance(payload, str):  # pre-rendered text body (/metrics)
            body = payload.encode("utf-8")
            content_type = PROM_CONTENT_TYPE
        else:
            body = json.dumps(payload).encode("utf-8")
            content_type = "application/json"
        head_lines = ["HTTP/1.1 {} {}".format(status, reasons.get(status, "OK")),
                      "Content-Type: {}".format(content_type),
                      "Content-Length: {}".format(len(body))]
        for name, value in (extra_headers or {}).items():
            head_lines.append("{}: {}".format(name, value))
        if close:
            head_lines.append("Connection: close")
        head = "\r\n".join(head_lines) + "\r\n\r\n"
        try:
            writer.write(head.encode("latin-1") + body)
            await writer.drain()
        except (ConnectionError, OSError):
            return False
        return not close

    def _stream_request(self, method: str, path: str, body: bytes) -> dict | None:
        """The parsed request iff this is a ``stream: true`` table request."""
        if method != "POST" or path != "/sample_table" or not body:
            return None
        try:
            request = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return None  # let _dispatch produce the 400
        if isinstance(request, dict) and request.get("stream"):
            return request
        return None

    def _count(self, counter: str) -> None:
        with self._lock:
            self._counters[counter] += 1

    @staticmethod
    def _parse_timeout(request: dict) -> float | None:
        """The request's ``timeout_s`` as a positive float (``ValueError`` else)."""
        value = request.get("timeout_s")
        if value is None:
            return None
        if isinstance(value, bool):
            raise ValueError("timeout_s must be a positive number")
        try:
            value = float(value)
        except (TypeError, ValueError):
            raise ValueError("timeout_s must be a positive number")
        if value <= 0:
            raise ValueError("timeout_s must be a positive number")
        return value

    async def _respond_stream(self, writer: asyncio.StreamWriter, request: dict,
                              request_id: str = "-") -> tuple:
        """Stream one block-chunked ``/sample_table`` response (ndjson over
        chunked transfer encoding).  Returns ``(keep_alive, status)``."""

        async def reply(status, payload, extra=None):
            extra = dict(extra or {})
            extra["X-Request-Id"] = request_id
            return await self._respond(writer, status, payload, extra), status

        if self.draining:
            status, payload, headers = self._drain_response()
            return await reply(status, payload, headers)
        try:
            timeout_s = self._parse_timeout(request)
        except ValueError as error:
            self._count_http_error()
            return await reply(400, {"error": str(error)})
        if not self._admit():
            with self._lock:
                rejected = self._counters["rejected"]
            return await reply(429, {
                "error": "request queue is full",
                "max_queue": self.max_queue, "rejected_total": rejected})
        loop = asyncio.get_running_loop()
        try:
            try:
                # ship the request's trace context onto the executor thread so
                # service spans parent under this request's server.request span
                context = contextvars.copy_context()
                chunks = await loop.run_in_executor(
                    self._executor, context.run,
                    lambda: self.service.iter_sample_table(request.get("n"),
                                                           seed=request.get("seed"),
                                                           timeout_s=timeout_s))
                # pull the first block before committing to a 200: request
                # validation errors surface here and still get a JSON body
                first = await loop.run_in_executor(self._executor, next, chunks, None)
            except DeadlineExceeded as error:
                self._count("deadline_errors")
                return await reply(503, {"error": str(error), "type": "deadline"})
            except PoolDegraded as error:
                self._count_http_error()
                return await reply(503, {"error": str(error), "type": "degraded"},
                                   {"Retry-After": str(RETRY_AFTER_S)})
            except (ServingError, ValueError, TypeError) as error:
                self._count_http_error()
                return await reply(400, {"error": str(error)})
            except Exception as error:  # a bug, not a bad request — keep serving
                self._count_http_error()
                return await reply(500, {
                    "error": "{}: {}".format(type(error).__name__, error)})
            head = ("HTTP/1.1 200 OK\r\n"
                    "Content-Type: application/x-ndjson\r\n"
                    "Transfer-Encoding: chunked\r\n"
                    "X-Request-Id: {}\r\n"
                    "\r\n").format(request_id)
            try:
                writer.write(head.encode("latin-1"))
                total_rows = 0
                total_chunks = 0
                block = first
                while block is not None:
                    data = (json.dumps(table_payload(block)) + "\n").encode("utf-8")
                    writer.write(b"%x\r\n" % len(data) + data + b"\r\n")
                    await writer.drain()
                    total_rows += block.num_rows
                    total_chunks += 1
                    if faults.check("stream_drop") is not None:
                        # chaos hook: hard-drop the connection short of the
                        # terminating chunk, as a mid-transfer network failure
                        writer.transport.abort()
                        return False, 200
                    block = await loop.run_in_executor(self._executor, next, chunks, None)
                summary = {"done": True, "chunks": total_chunks, "rows": total_rows}
                data = (json.dumps(summary) + "\n").encode("utf-8")
                writer.write(b"%x\r\n" % len(data) + data + b"\r\n" + b"0\r\n\r\n")
                await writer.drain()
            except (ConnectionError, OSError):
                return False, 200
            except Exception:  # mid-stream failure: the 200 is already out,
                self._count_http_error()  # so drop the connection short of its
                return False, 200         # terminating chunk — unambiguous to clients
            return True, 200
        finally:
            self._release()

    def _count_http_error(self) -> None:
        self._count("http_errors")

    async def _dispatch(self, method: str, path: str, body: bytes):
        if path == "/healthz":
            if method != "GET":
                return 405, {"error": "use GET"}
            return 200, {"ok": True, "digest": self.service.digest}
        if path == "/readyz":
            if method != "GET":
                return 405, {"error": "use GET"}
            ready, info = self.service.readiness()
            payload = dict(info, ready=ready, digest=self.service.digest)
            if self.draining:
                payload["ready"] = False
                payload["reason"] = "draining"
            if payload["ready"]:
                return 200, payload
            return 503, payload, {"Retry-After": str(RETRY_AFTER_S)}
        if path == "/stats":
            if method != "GET":
                return 405, {"error": "use GET"}
            return 200, self.stats()
        if path == "/metrics":
            if method != "GET":
                return 405, {"error": "use GET"}
            return 200, prometheus_text(self.service.metrics,
                                        extra_stats=self.stats())
        if path == "/trace":
            if method != "GET":
                return 405, {"error": "use GET"}
            snapshot = obs.ring_snapshot()
            if snapshot is None:
                return 404, {"error": "tracing is not using the in-memory ring "
                                      "sink; serve with trace='ring' to expose "
                                      "recent spans here"}
            return 200, snapshot
        if path not in ("/sample_table", "/sample_rows", "/sample_database"):
            return 404, {"error": "unknown path {!r}".format(path)}
        if method != "POST":
            return 405, {"error": "use POST"}
        try:
            request = json.loads(body.decode("utf-8")) if body else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            return 400, {"error": "invalid JSON body: {}".format(error)}
        if not isinstance(request, dict):
            return 400, {"error": "request body must be a JSON object"}
        try:
            timeout_s = self._parse_timeout(request)
        except ValueError as error:
            return 400, {"error": str(error)}
        if self.draining:
            return self._drain_response()
        if not self._admit():
            with self._lock:
                rejected = self._counters["rejected"]
            return 429, {"error": "request queue is full",
                         "max_queue": self.max_queue, "rejected_total": rejected}
        loop = asyncio.get_running_loop()
        try:
            # copy_context ships the request's trace context onto the executor
            # thread; admitted_us lets _execute report how long the request sat
            # waiting for a free sampling thread as a server.queue_wait span
            context = contextvars.copy_context()
            future = loop.run_in_executor(
                self._executor, context.run, self._execute, path, request,
                timeout_s, obs.monotonic_us())
            effective = (timeout_s if timeout_s is not None
                         else self.service.config.timeout_s)
            if effective is not None and self.service.pool is None:
                # thread executors cannot kill a running thread: enforce the
                # deadline at the await; the orphaned thread runs to completion
                # but its queue slot frees and the client gets its 503 now
                try:
                    return await asyncio.wait_for(future, effective)
                except asyncio.TimeoutError:
                    self._count("deadline_errors")
                    return 503, {"error": "request missed its {}s deadline".format(effective),
                                 "type": "deadline"}
            return await future
        finally:
            self._release()

    def _execute(self, path: str, request: dict, timeout_s: float | None = None,
                 admitted_us: int | None = None):
        """Run one sampling request on an executor thread."""
        if admitted_us is not None and obs.enabled():
            now_us = obs.monotonic_us()
            obs.emit_span("server.queue_wait", obs.current_context(), admitted_us,
                          max(0, now_us - admitted_us), attrs={"path": path})
        try:
            seed = request.get("seed")
            if path == "/sample_table":
                table = self.service.sample_table(request.get("n"), seed=seed,
                                                  timeout_s=timeout_s)
                return 200, table_payload(table)
            if path == "/sample_rows":
                if "n" not in request:
                    return 400, {"error": "sample_rows requires n"}
                table = self.service.sample_rows(
                    int(request["n"]), conditions=request.get("conditions"), seed=seed,
                    timeout_s=timeout_s)
                return 200, table_payload(table)
            database = self.service.sample_database(request.get("n"), seed=seed,
                                                    timeout_s=timeout_s)
            return 200, {"tables": {name: table_payload(table)
                                    for name, table in database.items()}}
        except DeadlineExceeded as error:
            self._count("deadline_errors")
            return 503, {"error": str(error), "type": "deadline"}
        except PoolDegraded as error:
            self._count_http_error()
            return 503, {"error": str(error), "type": "degraded"}, \
                {"Retry-After": str(RETRY_AFTER_S)}
        except (ServingError, ValueError, TypeError) as error:
            self._count_http_error()
            return 400, {"error": str(error)}
        except Exception as error:  # a bug, not a bad request — keep serving
            self._count_http_error()
            return 500, {"error": "{}: {}".format(type(error).__name__, error)}


def request_json(host: str, port: int, method: str, path: str,
                 payload: dict | None = None, timeout: float = 60.0,
                 headers: dict | None = None):
    """Blocking JSON client helper; returns ``(status, decoded body)``.

    *headers* are sent in addition to ``Content-Type`` — e.g.
    ``{"X-Request-Id": "..."}`` to pin the request/trace id.
    """
    connection = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        body = None if payload is None else json.dumps(payload).encode("utf-8")
        send_headers = {"Content-Type": "application/json"}
        send_headers.update(headers or {})
        connection.request(method, path, body=body, headers=send_headers)
        response = connection.getresponse()
        raw = response.read().decode("utf-8")
        return response.status, (json.loads(raw) if raw else None)
    finally:
        connection.close()


def request_json_stream(host: str, port: int, payload: dict | None = None,
                        timeout: float = 60.0):
    """Blocking client for the streamed ``/sample_table`` endpoint.

    Returns ``(status, lines)`` where *lines* on success is the decoded
    ndjson sequence: one ``{"columns", "rows"}`` object per streamed block
    plus the trailing ``{"done": true, ...}`` summary.  On an error status
    the second element is the JSON error body, like :func:`request_json`.

    The response is consumed line by line — the client holds one chunk at
    a time, O(chunk) like the server, so a table larger than RAM streams
    through.  A connection that drops before the ``done`` summary raises
    :class:`IncompleteStream` (partial lines on the exception) instead of
    silently returning a truncated table.  ``http.client`` undoes the
    chunked transfer encoding transparently.
    """
    connection = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        body = json.dumps(dict(payload or {}, stream=True)).encode("utf-8")
        connection.request("POST", "/sample_table", body=body,
                           headers={"Content-Type": "application/json"})
        response = connection.getresponse()
        if response.status != 200:
            raw = response.read().decode("utf-8")
            return response.status, (json.loads(raw) if raw else None)
        lines: list = []
        complete = False
        try:
            while True:
                raw_line = response.readline()
                if not raw_line:
                    break
                raw_line = raw_line.strip()
                if not raw_line:
                    continue
                record = json.loads(raw_line.decode("utf-8"))
                lines.append(record)
                if isinstance(record, dict) and "done" in record:
                    complete = True
        except (http.client.IncompleteRead, ConnectionError, OSError, ValueError) as error:
            raise IncompleteStream(
                "stream dropped after {} lines: {}".format(len(lines), error),
                lines) from None
        if not complete:
            raise IncompleteStream(
                "stream ended after {} lines without a done summary".format(len(lines)),
                lines)
        return 200, lines
    finally:
        connection.close()


def run_server(service: SynthesisService, host: str = "127.0.0.1", port: int = 0,
               max_queue: int = DEFAULT_MAX_QUEUE, ready_callback=None,
               max_seconds: float | None = None,
               drain_timeout_s: float = 30.0) -> None:
    """Run the server until interrupted (or for *max_seconds*).

    *ready_callback* (if given) is called with the bound ``(host, port)``
    once the socket is listening — the CLI uses it to publish the
    ephemeral port to scripts and tests.

    ``SIGTERM`` triggers a graceful drain: admission stops (503 +
    ``Retry-After``), in-flight requests get up to *drain_timeout_s* to
    finish, final stats are flushed to stderr, then the process exits.
    ``SIGINT``/Ctrl-C stays an immediate stop.
    """

    async def _main():
        server = SynthesisServer(service, host=host, port=port, max_queue=max_queue)
        await server.start()
        if ready_callback is not None:
            ready_callback(server.host, server.port)
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        installed = False
        try:
            loop.add_signal_handler(signal.SIGTERM, stop.set)
            installed = True
        except (NotImplementedError, RuntimeError, ValueError):
            pass  # not the main thread (tests) or no signal support
        try:
            if max_seconds is None:
                await stop.wait()
            else:
                try:
                    await asyncio.wait_for(stop.wait(), max_seconds)
                except asyncio.TimeoutError:
                    pass
            if stop.is_set():
                drained = await server.drain(drain_timeout_s)
                final = server.stats()
                print("drain {}: in_flight={} final_stats={}".format(
                    "complete" if drained else "timed out",
                    final["server"]["in_flight"], json.dumps(final)), file=sys.stderr)
        except asyncio.CancelledError:
            pass
        finally:
            if installed:
                loop.remove_signal_handler(signal.SIGTERM)
            await server.stop()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass
