"""Asyncio HTTP front end for :class:`SynthesisService`.

A small stdlib-only JSON-over-HTTP server: the asyncio event loop accepts
connections and parses requests, sampling itself runs on a thread pool so
the loop never blocks — and because several requests are in those threads
at once, concurrent conditioned ``sample_rows`` calls from *different
connections* fall into the service's existing leader/follower coalescing
and are served by one merged engine pass.

Backpressure is explicit: at most ``max_queue`` requests may be in flight
(queued or executing); request number ``max_queue + 1`` is rejected
immediately with **429 Too Many Requests** and a JSON error body instead
of being buffered without bound.  The high-water mark of the in-flight
count is tracked so operators can see how close traffic comes to the
limit before rejections start.

Endpoints (all JSON):

* ``POST /sample_table``    ``{"n": int?, "seed": int?, "stream": bool?}``
* ``POST /sample_rows``     ``{"n": int, "conditions": {...}?, "seed": int?}``
* ``POST /sample_database`` ``{"n": int | {table: int}?, "seed": int?}``
* ``GET  /stats``           service counters + latency histograms + server section
* ``GET  /healthz``         liveness and the served bundle digest

Tables come back as ``{"columns": [...], "rows": [{col: value}, ...]}``;
databases as ``{"tables": {name: table}}``.  The ``/stats`` payload embeds
:meth:`SynthesisService.stats` unchanged (same schema as in-process) plus
a ``server`` section with accept/reject counters and queue watermarks.

``"stream": true`` turns the ``/sample_table`` response into a chunked
transfer of newline-delimited JSON: one ``{"columns", "rows"}`` object per
serving block followed by a ``{"done": true, ...}`` summary line.  The
first block is sampled *before* the headers go out, so validation errors
still come back as ordinary JSON error responses; rows never accumulate
server-side, which is the point — a table larger than the server's RAM can
be streamed to the client.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import threading
from concurrent.futures import ThreadPoolExecutor

from repro.serving.service import ServingError, SynthesisService

#: Default bound on in-flight requests before 429 rejection.
DEFAULT_MAX_QUEUE = 64

_MAX_HEADER_BYTES = 64 * 1024
_MAX_BODY_BYTES = 64 * 2**20


def _jsonable(value):
    """Coerce numpy scalars (and anything with ``.item()``) to JSON types."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    item = getattr(value, "item", None)
    if callable(item):
        return item()
    return str(value)


def table_payload(table) -> dict:
    """The wire shape of one table: column order plus row records."""
    columns = list(table.column_names)
    rows = [{name: _jsonable(value) for name, value in record.items()}
            for record in table.to_records()]
    return {"columns": columns, "rows": rows}


class SynthesisServer:
    """Serve one :class:`SynthesisService` over HTTP with bounded queueing."""

    def __init__(self, service: SynthesisService, host: str = "127.0.0.1",
                 port: int = 0, max_queue: int = DEFAULT_MAX_QUEUE):
        if max_queue < 1:
            raise ValueError("max_queue must be at least 1")
        self.service = service
        self.host = host
        self.port = port
        self.max_queue = max_queue
        self._server: asyncio.AbstractServer | None = None
        # sampling threads: enough for the whole admission window so queued
        # requests coalesce in the service instead of serializing here
        self._executor = ThreadPoolExecutor(max_workers=max_queue,
                                            thread_name_prefix="serve")
        self._lock = threading.Lock()
        self._in_flight = 0
        self._counters = {"accepted": 0, "rejected": 0, "http_errors": 0,
                          "queue_high_water": 0}

    # -- lifecycle ---------------------------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self._executor.shutdown(wait=False)

    # -- admission control -------------------------------------------------------------

    def _admit(self) -> bool:
        with self._lock:
            if self._in_flight >= self.max_queue:
                self._counters["rejected"] += 1
                return False
            self._in_flight += 1
            self._counters["accepted"] += 1
            if self._in_flight > self._counters["queue_high_water"]:
                self._counters["queue_high_water"] = self._in_flight
            return True

    def _release(self) -> None:
        with self._lock:
            self._in_flight -= 1

    def stats(self) -> dict:
        """The ``/stats`` payload: service stats plus the server section."""
        out = self.service.stats()
        with self._lock:
            server = dict(self._counters)
            server["in_flight"] = self._in_flight
        server["max_queue"] = self.max_queue
        out["server"] = server
        return out

    # -- request handling --------------------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, path, body = request
                streamed = self._stream_request(method, path, body)
                if streamed is not None:
                    if not await self._respond_stream(writer, streamed):
                        break
                    continue
                status, payload = await self._dispatch(method, path, body)
                if not await self._respond(writer, status, payload):
                    break
        except (ConnectionError, asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader):
        try:
            header = await reader.readuntil(b"\r\n\r\n")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            return None
        if len(header) > _MAX_HEADER_BYTES:
            return None
        lines = header.decode("latin-1").split("\r\n")
        parts = lines[0].split(" ")
        if len(parts) != 3:
            return None
        method, path = parts[0].upper(), parts[1]
        length = 0
        for line in lines[1:]:
            name, _, value = line.partition(":")
            if name.strip().lower() == "content-length":
                try:
                    length = int(value.strip())
                except ValueError:
                    return None
        if length < 0 or length > _MAX_BODY_BYTES:
            return None
        body = await reader.readexactly(length) if length else b""
        return method, path, body

    async def _respond(self, writer: asyncio.StreamWriter, status: int,
                       payload: dict) -> bool:
        reasons = {200: "OK", 400: "Bad Request", 404: "Not Found",
                   405: "Method Not Allowed", 429: "Too Many Requests",
                   500: "Internal Server Error"}
        body = json.dumps(payload).encode("utf-8")
        head = ("HTTP/1.1 {} {}\r\n"
                "Content-Type: application/json\r\n"
                "Content-Length: {}\r\n"
                "\r\n").format(status, reasons.get(status, "OK"), len(body))
        try:
            writer.write(head.encode("latin-1") + body)
            await writer.drain()
        except (ConnectionError, OSError):
            return False
        return True

    def _stream_request(self, method: str, path: str, body: bytes) -> dict | None:
        """The parsed request iff this is a ``stream: true`` table request."""
        if method != "POST" or path != "/sample_table" or not body:
            return None
        try:
            request = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return None  # let _dispatch produce the 400
        if isinstance(request, dict) and request.get("stream"):
            return request
        return None

    def _count_http_error(self) -> None:
        with self._lock:
            self._counters["http_errors"] += 1

    async def _respond_stream(self, writer: asyncio.StreamWriter, request: dict) -> bool:
        """Stream one block-chunked ``/sample_table`` response (ndjson over
        chunked transfer encoding)."""
        if not self._admit():
            with self._lock:
                rejected = self._counters["rejected"]
            return await self._respond(writer, 429, {
                "error": "request queue is full",
                "max_queue": self.max_queue, "rejected_total": rejected})
        loop = asyncio.get_running_loop()
        try:
            try:
                chunks = await loop.run_in_executor(
                    self._executor,
                    lambda: self.service.iter_sample_table(request.get("n"),
                                                           seed=request.get("seed")))
                # pull the first block before committing to a 200: request
                # validation errors surface here and still get a JSON body
                first = await loop.run_in_executor(self._executor, next, chunks, None)
            except (ServingError, ValueError, TypeError) as error:
                self._count_http_error()
                return await self._respond(writer, 400, {"error": str(error)})
            except Exception as error:  # a bug, not a bad request — keep serving
                self._count_http_error()
                return await self._respond(writer, 500, {
                    "error": "{}: {}".format(type(error).__name__, error)})
            head = ("HTTP/1.1 200 OK\r\n"
                    "Content-Type: application/x-ndjson\r\n"
                    "Transfer-Encoding: chunked\r\n"
                    "\r\n")
            try:
                writer.write(head.encode("latin-1"))
                total_rows = 0
                total_chunks = 0
                block = first
                while block is not None:
                    data = (json.dumps(table_payload(block)) + "\n").encode("utf-8")
                    writer.write(b"%x\r\n" % len(data) + data + b"\r\n")
                    await writer.drain()
                    total_rows += block.num_rows
                    total_chunks += 1
                    block = await loop.run_in_executor(self._executor, next, chunks, None)
                summary = {"done": True, "chunks": total_chunks, "rows": total_rows}
                data = (json.dumps(summary) + "\n").encode("utf-8")
                writer.write(b"%x\r\n" % len(data) + data + b"\r\n" + b"0\r\n\r\n")
                await writer.drain()
            except (ConnectionError, OSError):
                return False
            except Exception:  # mid-stream failure: the 200 is already out,
                self._count_http_error()  # so drop the connection short of its
                return False              # terminating chunk — unambiguous to clients
            return True
        finally:
            self._release()

    async def _dispatch(self, method: str, path: str, body: bytes):
        if path == "/healthz":
            if method != "GET":
                return 405, {"error": "use GET"}
            return 200, {"ok": True, "digest": self.service.digest}
        if path == "/stats":
            if method != "GET":
                return 405, {"error": "use GET"}
            return 200, self.stats()
        if path not in ("/sample_table", "/sample_rows", "/sample_database"):
            return 404, {"error": "unknown path {!r}".format(path)}
        if method != "POST":
            return 405, {"error": "use POST"}
        try:
            request = json.loads(body.decode("utf-8")) if body else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            return 400, {"error": "invalid JSON body: {}".format(error)}
        if not isinstance(request, dict):
            return 400, {"error": "request body must be a JSON object"}
        if not self._admit():
            with self._lock:
                rejected = self._counters["rejected"]
            return 429, {"error": "request queue is full",
                         "max_queue": self.max_queue, "rejected_total": rejected}
        loop = asyncio.get_running_loop()
        try:
            return await loop.run_in_executor(
                self._executor, self._execute, path, request)
        finally:
            self._release()

    def _execute(self, path: str, request: dict):
        """Run one sampling request on an executor thread."""
        try:
            seed = request.get("seed")
            if path == "/sample_table":
                table = self.service.sample_table(request.get("n"), seed=seed)
                return 200, table_payload(table)
            if path == "/sample_rows":
                if "n" not in request:
                    return 400, {"error": "sample_rows requires n"}
                table = self.service.sample_rows(
                    int(request["n"]), conditions=request.get("conditions"), seed=seed)
                return 200, table_payload(table)
            database = self.service.sample_database(request.get("n"), seed=seed)
            return 200, {"tables": {name: table_payload(table)
                                    for name, table in database.items()}}
        except (ServingError, ValueError, TypeError) as error:
            with self._lock:
                self._counters["http_errors"] += 1
            return 400, {"error": str(error)}
        except Exception as error:  # a bug, not a bad request — keep serving
            with self._lock:
                self._counters["http_errors"] += 1
            return 500, {"error": "{}: {}".format(type(error).__name__, error)}


def request_json(host: str, port: int, method: str, path: str,
                 payload: dict | None = None, timeout: float = 60.0):
    """Blocking JSON client helper; returns ``(status, decoded body)``."""
    connection = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        body = None if payload is None else json.dumps(payload).encode("utf-8")
        connection.request(method, path, body=body,
                           headers={"Content-Type": "application/json"})
        response = connection.getresponse()
        raw = response.read().decode("utf-8")
        return response.status, (json.loads(raw) if raw else None)
    finally:
        connection.close()


def request_json_stream(host: str, port: int, payload: dict | None = None,
                        timeout: float = 60.0):
    """Blocking client for the streamed ``/sample_table`` endpoint.

    Returns ``(status, lines)`` where *lines* on success is the decoded
    ndjson sequence: one ``{"columns", "rows"}`` object per streamed block
    plus the trailing ``{"done": true, ...}`` summary.  On an error status
    the second element is the JSON error body, like :func:`request_json`.
    ``http.client`` undoes the chunked transfer encoding transparently.
    """
    connection = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        body = json.dumps(dict(payload or {}, stream=True)).encode("utf-8")
        connection.request("POST", "/sample_table", body=body,
                           headers={"Content-Type": "application/json"})
        response = connection.getresponse()
        raw = response.read().decode("utf-8")
        if response.status != 200:
            return response.status, (json.loads(raw) if raw else None)
        return 200, [json.loads(line) for line in raw.splitlines() if line]
    finally:
        connection.close()


def run_server(service: SynthesisService, host: str = "127.0.0.1", port: int = 0,
               max_queue: int = DEFAULT_MAX_QUEUE, ready_callback=None,
               max_seconds: float | None = None) -> None:
    """Run the server until interrupted (or for *max_seconds*).

    *ready_callback* (if given) is called with the bound ``(host, port)``
    once the socket is listening — the CLI uses it to publish the
    ephemeral port to scripts and tests.
    """

    async def _main():
        server = SynthesisServer(service, host=host, port=port, max_queue=max_queue)
        await server.start()
        if ready_callback is not None:
            ready_callback(server.host, server.port)
        try:
            if max_seconds is None:
                await server.serve_forever()
            else:
                async with server._server:
                    await asyncio.sleep(max_seconds)
        except asyncio.CancelledError:
            pass
        finally:
            await server.stop()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass
