"""Synthesis serving layer (the serve-many half of train-once / serve-many).

:class:`SynthesisService` loads a fitted-pipeline bundle once (see
:mod:`repro.store`) and answers ``sample(n, seed, conditions)`` requests:
block-sharded full-table sampling that is bit-identical across worker
counts, coalesced conditioned-row sampling that merges concurrent requests
into one batched engine pass, whole-database sampling from ``multitable``
bundles (level-sharded, identical across shard counts), and an LRU result
cache keyed by ``(bundle digest, request)`` and bounded by approximate
result bytes.
"""

from repro.serving.service import (
    LruCache,
    RowRequest,
    ServingConfig,
    ServingError,
    SynthesisService,
    approx_result_bytes,
    approx_table_bytes,
    derive_seed,
)

__all__ = [
    "LruCache",
    "RowRequest",
    "ServingConfig",
    "ServingError",
    "SynthesisService",
    "approx_result_bytes",
    "approx_table_bytes",
    "derive_seed",
]
