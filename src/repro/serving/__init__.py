"""Synthesis serving layer (the serve-many half of train-once / serve-many).

:class:`SynthesisService` loads a fitted-pipeline bundle once (see
:mod:`repro.store`) and answers ``sample(n, seed, conditions)`` requests:
block-sharded full-table sampling that is bit-identical across worker
counts, coalesced conditioned-row sampling that merges concurrent requests
into one batched engine pass, whole-database sampling from ``multitable``
bundles (level-sharded, identical across shard counts), and an LRU result
cache keyed by ``(bundle digest, request)`` and bounded by approximate
result bytes.

Around the service sit the scale-out pieces: a process
:class:`~repro.serving.workers.WorkerPool` that runs the same deterministic
work units on bundle-loaded worker processes
(``ServingConfig(executor="process")``), the asyncio HTTP front end
:class:`~repro.serving.server.SynthesisServer` with bounded-queue
backpressure, and the :mod:`~repro.serving.metrics` latency histograms both
read paths report in one schema.

The heavy modules (server, workers) resolve lazily so importing the
service does not pull in asyncio/multiprocessing plumbing.
"""

from repro.serving.metrics import (LATENCY_BUCKETS_S, Gauge, LatencyHistogram,
                                   MetricsRegistry)
from repro.serving.service import (
    DeadlineExceeded,
    LruCache,
    PoolDegraded,
    RowRequest,
    ServingConfig,
    ServingError,
    SynthesisService,
    approx_result_bytes,
    approx_table_bytes,
    derive_seed,
    process_peak_rss_bytes,
)

_LAZY = {
    "IncompleteStream": "repro.serving.server",
    "SynthesisServer": "repro.serving.server",
    "request_json": "repro.serving.server",
    "request_json_stream": "repro.serving.server",
    "run_server": "repro.serving.server",
    "table_payload": "repro.serving.server",
    "WorkerPool": "repro.serving.workers",
}

__all__ = sorted([
    "LATENCY_BUCKETS_S",
    "Gauge",
    "LatencyHistogram",
    "LruCache",
    "DeadlineExceeded",
    "MetricsRegistry",
    "PoolDegraded",
    "RowRequest",
    "ServingConfig",
    "ServingError",
    "SynthesisService",
    "approx_result_bytes",
    "approx_table_bytes",
    "derive_seed",
    "process_peak_rss_bytes",
] + list(_LAZY))


def __getattr__(name):
    try:
        module_name = _LAZY[name]
    except KeyError:
        raise AttributeError("module {!r} has no attribute {!r}".format(__name__, name))
    from importlib import import_module

    return getattr(import_module(module_name), name)
