"""Serving metrics: monotonic counters, gauges and latency histograms.

One :class:`LatencyHistogram` per endpoint records every observed request
duration as ``count / total_s / max_s`` plus a fixed-bucket cumulative
histogram — the schema is identical whether it is read in-process through
:meth:`SynthesisService.stats` or over the wire from the server's
``/stats`` endpoint, so dashboards need a single decoder.  Buckets are
upper bounds in seconds; each observation lands in the first bucket whose
bound is >= the duration (the last bucket is unbounded), Prometheus-style
cumulative counts.

:class:`MetricsRegistry` also holds *labeled* counters and gauges
(``registry.counter("requests_total", endpoint="sample_table")``): one
independent series per ``(name, sorted-label-set)``, rendered either as
``name{key="value"}`` strings for the JSON ``/stats`` payload or as native
series by ``repro.obs.prom`` for the ``/metrics`` Prometheus endpoint.

Everything here is thread-safe and append-only: recorders never reset, so
deltas between two snapshots are always meaningful.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager

#: Upper bucket bounds in seconds; the implicit final bucket is +inf.
LATENCY_BUCKETS_S = (0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
                     0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0)

#: Canonical label-set form: sorted ``(key, value)`` pairs.
LabelKey = "tuple[tuple[str, str], ...]"


def format_series(name: str, labels: tuple) -> str:
    """Render ``name{key="value",...}`` for JSON snapshots (no labels → name)."""

    if not labels:
        return name
    rendered = ",".join('{}="{}"'.format(key, value) for key, value in labels)
    return "{}{{{}}}".format(name, rendered)


class Counter:
    """A thread-safe monotonic counter.

    Bare ``int += 1`` from multiple threads happens to survive under the
    GIL today, but the resilience counters (restarts, retries, deadline
    kills, breaker trips) are incremented from collector, monitor, and
    request threads at once — this makes the increment explicit and safe.
    """

    __slots__ = ("_lock", "_value")

    def __init__(self):
        self._lock = threading.Lock()
        self._value = 0

    def increment(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """A thread-safe instantaneous value (last write wins)."""

    __slots__ = ("_lock", "_value")

    def __init__(self):
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def set_max(self, value: float) -> None:
        """Keep the high-water mark (used for peak-RSS style gauges)."""
        value = float(value)
        with self._lock:
            if value > self._value:
                self._value = value

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class LatencyHistogram:
    """Monotonic latency accumulator with fixed buckets."""

    def __init__(self, buckets=LATENCY_BUCKETS_S):
        self.buckets = tuple(buckets)
        self._lock = threading.Lock()
        self.count = 0
        self.total_s = 0.0
        self.max_s = 0.0
        self._bucket_counts = [0] * (len(self.buckets) + 1)

    def observe(self, seconds: float) -> None:
        seconds = max(float(seconds), 0.0)
        index = len(self.buckets)
        for position, bound in enumerate(self.buckets):
            if seconds <= bound:
                index = position
                break
        with self._lock:
            self.count += 1
            self.total_s += seconds
            if seconds > self.max_s:
                self.max_s = seconds
            self._bucket_counts[index] += 1

    @contextmanager
    def time(self):
        """Context manager recording the elapsed wall time of the block."""
        started = time.perf_counter()
        try:
            yield
        finally:
            self.observe(time.perf_counter() - started)

    def quantile(self, q: float) -> float:
        """Approximate quantile, linearly interpolated within its bucket.

        The *q*-quantile rank is located in the cumulative bucket counts,
        then positioned inside the winning bucket assuming observations are
        uniform across it: ``lower + (rank - seen_before) / in_bucket *
        (upper - lower)``.  The overflow bucket has no finite upper bound,
        so ranks landing there report ``max_s``.  Returns 0.0 before any
        observation.  (The previous behaviour — returning the bare bucket
        upper bound — over-reported mid-bucket quantiles by up to a whole
        bucket width.)
        """
        with self._lock:
            total = self.count
            max_s = self.max_s
            counts = list(self._bucket_counts)
        if total == 0:
            return 0.0
        rank = max(1, int(q * total + 0.5))
        seen = 0
        for position, bucket_count in enumerate(counts):
            if bucket_count == 0:
                continue
            if seen + bucket_count >= rank:
                if position >= len(self.buckets):
                    return max_s
                lower = self.buckets[position - 1] if position > 0 else 0.0
                upper = self.buckets[position]
                fraction = (rank - seen) / bucket_count
                return lower + fraction * (upper - lower)
            seen += bucket_count
        return max_s

    def snapshot(self) -> dict:
        """The wire schema: count/total/max plus cumulative bucket counts."""
        with self._lock:
            counts = list(self._bucket_counts)
            out = {
                "count": self.count,
                "total_s": self.total_s,
                "max_s": self.max_s,
            }
        cumulative = []
        seen = 0
        for bucket_count in counts:
            seen += bucket_count
            cumulative.append(seen)
        out["buckets_s"] = list(self.buckets)
        out["cumulative_counts"] = cumulative
        return out


def _label_key(labels: dict) -> tuple:
    return tuple(sorted((str(key), str(value)) for key, value in labels.items()))


class MetricsRegistry:
    """Named histograms plus labeled counters/gauges, created on first use."""

    def __init__(self):
        self._lock = threading.Lock()
        self._histograms: dict[str, LatencyHistogram] = {}
        self._counters: dict[str, dict[tuple, Counter]] = {}
        self._gauges: dict[str, dict[tuple, Gauge]] = {}

    def histogram(self, name: str) -> LatencyHistogram:
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = LatencyHistogram()
            return histogram

    def counter(self, name: str, **labels) -> Counter:
        key = _label_key(labels)
        with self._lock:
            series = self._counters.setdefault(name, {})
            counter = series.get(key)
            if counter is None:
                counter = series[key] = Counter()
            return counter

    def gauge(self, name: str, **labels) -> Gauge:
        key = _label_key(labels)
        with self._lock:
            series = self._gauges.setdefault(name, {})
            gauge = series.get(key)
            if gauge is None:
                gauge = series[key] = Gauge()
            return gauge

    def snapshot(self) -> dict:
        with self._lock:
            items = list(self._histograms.items())
        return {name: histogram.snapshot() for name, histogram in items}

    def counter_series(self) -> dict:
        """``{name: [(label_pairs, value), ...]}`` for the Prometheus renderer."""
        with self._lock:
            names = {name: list(series.items()) for name, series in self._counters.items()}
        return {
            name: [(labels, counter.value) for labels, counter in series]
            for name, series in names.items()
        }

    def gauge_series(self) -> dict:
        with self._lock:
            names = {name: list(series.items()) for name, series in self._gauges.items()}
        return {
            name: [(labels, gauge.value) for labels, gauge in series]
            for name, series in names.items()
        }

    def counters_snapshot(self) -> dict:
        """``{'name{key="value"}': value}`` — the JSON ``/stats`` rendering."""
        return {
            format_series(name, labels): value
            for name, series in sorted(self.counter_series().items())
            for labels, value in sorted(series)
        }

    def gauges_snapshot(self) -> dict:
        return {
            format_series(name, labels): value
            for name, series in sorted(self.gauge_series().items())
            for labels, value in sorted(series)
        }
