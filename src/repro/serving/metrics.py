"""Serving metrics: monotonic counters and fixed-bucket latency histograms.

One :class:`LatencyHistogram` per endpoint records every observed request
duration as ``count / total_s / max_s`` plus a fixed-bucket cumulative
histogram — the schema is identical whether it is read in-process through
:meth:`SynthesisService.stats` or over the wire from the server's
``/stats`` endpoint, so dashboards need a single decoder.  Buckets are
upper bounds in seconds; each observation lands in the first bucket whose
bound is >= the duration (the last bucket is unbounded), Prometheus-style
cumulative counts.

Everything here is thread-safe and append-only: recorders never reset, so
deltas between two snapshots are always meaningful.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager

#: Upper bucket bounds in seconds; the implicit final bucket is +inf.
LATENCY_BUCKETS_S = (0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
                     0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0)


class Counter:
    """A thread-safe monotonic counter.

    Bare ``int += 1`` from multiple threads happens to survive under the
    GIL today, but the resilience counters (restarts, retries, deadline
    kills, breaker trips) are incremented from collector, monitor, and
    request threads at once — this makes the increment explicit and safe.
    """

    __slots__ = ("_lock", "_value")

    def __init__(self):
        self._lock = threading.Lock()
        self._value = 0

    def increment(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class LatencyHistogram:
    """Monotonic latency accumulator with fixed buckets."""

    def __init__(self, buckets=LATENCY_BUCKETS_S):
        self.buckets = tuple(buckets)
        self._lock = threading.Lock()
        self.count = 0
        self.total_s = 0.0
        self.max_s = 0.0
        self._bucket_counts = [0] * (len(self.buckets) + 1)

    def observe(self, seconds: float) -> None:
        seconds = max(float(seconds), 0.0)
        index = len(self.buckets)
        for position, bound in enumerate(self.buckets):
            if seconds <= bound:
                index = position
                break
        with self._lock:
            self.count += 1
            self.total_s += seconds
            if seconds > self.max_s:
                self.max_s = seconds
            self._bucket_counts[index] += 1

    @contextmanager
    def time(self):
        """Context manager recording the elapsed wall time of the block."""
        started = time.perf_counter()
        try:
            yield
        finally:
            self.observe(time.perf_counter() - started)

    def quantile(self, q: float) -> float:
        """Approximate quantile from the bucket counts (bucket upper bound).

        Returns the upper bound of the bucket the *q*-quantile observation
        falls in (the largest finite bound for the overflow bucket), or 0.0
        before any observation.
        """
        with self._lock:
            total = self.count
            counts = list(self._bucket_counts)
        if total == 0:
            return 0.0
        rank = max(1, int(q * total + 0.5))
        seen = 0
        for position, bucket_count in enumerate(counts):
            seen += bucket_count
            if seen >= rank:
                if position < len(self.buckets):
                    return self.buckets[position]
                return self.max_s
        return self.max_s

    def snapshot(self) -> dict:
        """The wire schema: count/total/max plus cumulative bucket counts."""
        with self._lock:
            counts = list(self._bucket_counts)
            out = {
                "count": self.count,
                "total_s": self.total_s,
                "max_s": self.max_s,
            }
        cumulative = []
        seen = 0
        for bucket_count in counts:
            seen += bucket_count
            cumulative.append(seen)
        out["buckets_s"] = list(self.buckets)
        out["cumulative_counts"] = cumulative
        return out


class MetricsRegistry:
    """Named latency histograms, created on first use."""

    def __init__(self):
        self._lock = threading.Lock()
        self._histograms: dict[str, LatencyHistogram] = {}

    def histogram(self, name: str) -> LatencyHistogram:
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = LatencyHistogram()
            return histogram

    def snapshot(self) -> dict:
        with self._lock:
            items = list(self._histograms.items())
        return {name: histogram.snapshot() for name, histogram in items}
