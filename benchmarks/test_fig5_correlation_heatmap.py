"""E1 — Fig. 5: correlation heatmap before/after removing the pseudo-ID columns.

Regenerates the Sec. 4.1.2 preprocessing result: with 'e_et', 'idocid' and
'i_entities' present every feature looks highly associated with everything;
removing them leaves the weakly associated feature set the paper describes.
"""

from benchmarks.conftest import print_rows
from repro.experiments.figures import fig5_correlation_heatmap


def test_fig5_correlation_heatmap(benchmark, experiment_config):
    outcome = benchmark.pedantic(
        fig5_correlation_heatmap, kwargs={"config": experiment_config}, rounds=1, iterations=1
    )
    print_rows("Fig. 5 — association matrix before/after noisy-column removal", outcome["rows"])

    before, after = outcome["rows"]
    assert set(outcome["removed"]) == {"e_et", "idocid", "i_entities"}
    # the pseudo-ID columns' associations are inflated relative to the cleaned matrix
    assert before["mean_association_of_pseudo_id_columns"] > after["mean_offdiag_association"]
    # the cleaned matrix has fewer columns and stays weakly associated overall
    assert after["columns"] < before["columns"]
    assert after["mean_offdiag_association"] < 0.6
