"""E7 — Fig. 4: flattening dimensionality blow-up and engaged-subject bias.

Regenerates the Fig. 4 walk-through on the toy Yin/Grace/Anson tables: direct
flattening produces an 11-row table dominated by Yin, while the Cross-table
Connecting Method yields a smaller table with the same columns.
"""

from benchmarks.conftest import print_rows
from repro.experiments.figures import fig4_flattening_bias


def test_fig4_flattening_bias(benchmark):
    outcome = benchmark.pedantic(fig4_flattening_bias, rounds=1, iterations=1)
    print_rows("Fig. 4 — direct flattening vs cross-table connecting", outcome["rows"])

    flattened_row, connected_row = outcome["rows"]
    report = outcome["flattening_report"]
    # the engaged subject ('Yin') dominates the flattened table
    assert report.max_subject_share > 0.5
    assert report.engagement_ratio >= 4.0
    # connecting never produces more rows than flattening and reduces the bias
    assert connected_row["rows"] <= flattened_row["rows"]
    assert connected_row["max_subject_share"] <= flattened_row["max_subject_share"]
