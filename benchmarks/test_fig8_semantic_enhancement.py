"""E3 — Fig. 8: impact of the Data Semantic Enhancement System.

With the connecting method held fixed, both transformation modules should
improve fidelity over the no-mapping baseline; understandability is expected
to be at least comparable to differentiability (the paper reports a slight
edge, attributed to GPT-2's pre-trained knowledge, which the offline substrate
does not have — see EXPERIMENTS.md).
"""

from benchmarks.conftest import print_rows
from repro.experiments.figures import fig8_semantic_enhancement


def test_fig8_semantic_enhancement(benchmark, experiment_config):
    outcome = benchmark.pedantic(
        fig8_semantic_enhancement, kwargs={"config": experiment_config}, rounds=1, iterations=1
    )
    print_rows("Fig. 8 — semantic enhancement setups", outcome["rows"])

    rows = {row["configuration"]: row for row in outcome["rows"]}
    none = rows["greater_no_mapping"]
    diff = rows["greater_differentiability"]
    under = rows["greater_understandability"]

    # At the quick default scale the per-run noise is of the same order as the
    # effect size, so the assertions check the enhanced setups are at least
    # competitive with the no-mapping baseline; EXPERIMENTS.md records the
    # measured direction at larger scales (REPRO_BENCH_SCALE >= 2).
    best_enhanced_p = max(diff["mean_p_value"], under["mean_p_value"])
    best_enhanced_w = min(diff["mean_w_distance"], under["mean_w_distance"])
    assert best_enhanced_p > none["mean_p_value"] - 0.03
    assert best_enhanced_w < none["mean_w_distance"] + 0.05
    # all three setups score the same pairs
    assert diff["pairs"] == under["pairs"] == none["pairs"]
