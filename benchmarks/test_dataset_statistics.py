"""E9 — Sec. 4.1.1/4.1.2: the DIGIX-like generator reproduces the dataset shape.

Checks the published facts the experiments rely on: a click-through rate of
roughly 1.55% (heavily imbalanced), task-ID subgroups used as independent
trials, and two child tables sharing user IDs.
"""

from benchmarks.conftest import print_rows
from repro.datasets.digix import DigixConfig, generate_digix_like
from repro.experiments.figures import dataset_statistics


def test_dataset_statistics(benchmark):
    dataset = generate_digix_like(DigixConfig(
        n_tasks=8, n_users_per_task=40, ads_rows_per_user=(3, 7),
        feeds_rows_per_user=(3, 8), seed=7,
    ))
    outcome = benchmark.pedantic(dataset_statistics, kwargs={"dataset": dataset},
                                 rounds=1, iterations=1)
    print_rows("Sec. 4.1.1 — dataset statistics", outcome["rows"])

    row = outcome["rows"][0]
    assert row["n_task_subgroups"] == 8
    # the label is heavily imbalanced, in the neighbourhood of the published 1.55%
    assert 0.002 <= row["click_through_rate"] <= 0.05
    assert row["min_rows_per_subgroup"] > 0
