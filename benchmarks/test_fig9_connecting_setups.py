"""E4 — Fig. 9: cross-table connecting setups.

Direct flattening vs DEREC vs the three connecting setups (threshold mean,
threshold median, hierarchical clustering), on both the KS p-value and the
Wasserstein distance.
"""

from statistics import mean

from benchmarks.conftest import print_rows
from repro.experiments.figures import fig9_connecting_setups


def test_fig9_connecting_setups(benchmark, experiment_config):
    outcome = benchmark.pedantic(
        fig9_connecting_setups, kwargs={"config": experiment_config}, rounds=1, iterations=1
    )
    print_rows("Fig. 9 — cross-table connecting setups", outcome["rows"])

    rows = {row["configuration"]: row for row in outcome["rows"]}
    connecting = [rows["connect_threshold_mean"], rows["connect_threshold_median"],
                  rows["connect_hierarchical"]]
    derec = rows["derec"]
    flatten = rows["direct_flatten"]

    # every connecting setup beats the DEREC benchmark on the primary score
    for setup in connecting:
        assert setup["mean_p_value"] > derec["mean_p_value"]
    # the connecting setups are, on average, at least as good as direct flattening
    assert mean(s["mean_p_value"] for s in connecting) >= flatten["mean_p_value"] - 0.02
    # the three connecting setups behave similarly (Fig. 9's "similar graphical outperformance")
    p_values = [s["mean_p_value"] for s in connecting]
    assert max(p_values) - min(p_values) < 0.15
