"""E8 — Sec. 4.4.2: the dataset-specific caret→'and' transformation.

The four interest-list columns hold values like '20^35^42'; rewriting the
separator as 'and' makes them natural-language-like.  The benchmark checks the
transform selects exactly those columns and that the pipeline with the rewrite
remains competitive with the standard GReaTER setup.
"""

from benchmarks.conftest import print_rows
from repro.datasets.digix import INTEREST_COLUMNS
from repro.experiments.figures import sec442_special_transform


def test_sec442_special_transform(benchmark, experiment_config):
    outcome = benchmark.pedantic(
        sec442_special_transform, kwargs={"config": experiment_config}, rounds=1, iterations=1
    )
    print_rows("Sec. 4.4.2 — caret -> 'and' transformation", outcome["rows"])
    print_rows("Sec. 4.4.2 — example rewrites", outcome["examples"])

    # the transform targets exactly the caret-separated interest columns
    assert set(outcome["selected_columns"]) == set(INTEREST_COLUMNS)
    for example in outcome["examples"]:
        assert " and " in example["transformed"]
        assert "^" not in example["transformed"]

    rows = {row["configuration"]: row for row in outcome["rows"]}
    standard = rows["greater_standard"]
    special = rows["greater_special_transform"]
    # the rewrite does not collapse fidelity (the paper reports it helps the lower tail)
    assert special["mean_p_value"] > standard["mean_p_value"] - 0.1
