"""Before/after timings for the compiled training engine.

Runs the training hot path — corpus encode, n-gram count accumulation,
per-epoch validation scoring, CSR compile — twice: once with the legacy
object engine (per-sentence tokenisation + dict updates + object scoring),
once with the compiled engine (one-pass batch encode + array reduction +
batched CSR scoring).  Asserts that both produce **bit-identical results**
(vocabulary ids, perplexity traces, frozen count arrays, and — for the
end-to-end path — identical synthetic tables for identical seeds), and
records the timings to ``BENCH_training.json``.

Usage::

    PYTHONPATH=src python -m benchmarks.perf.bench_training --rows 50000
    PYTHONPATH=src python -m benchmarks.perf.bench_training --smoke   # CI-sized

The ``speedup`` column is object-engine time divided by compiled-engine time;
the acceptance bar for the refactor is >=10x on the 50k-row
fit + compile + perplexity-trace path.
"""

from __future__ import annotations

import argparse
import json
import random
import time
from pathlib import Path

import numpy as np

from repro.frame.table import Table
from repro.great.synthesizer import GReaTConfig, GReaTSynthesizer
from repro.llm.finetune import FineTuneConfig, FineTuner
from repro.llm.ngram_model import ModelConfig
from repro.llm.sampler import SamplerConfig
from repro.llm.tokenizer import WordTokenizer
from repro.textenc.corpus import CorpusBuilder
from repro.textenc.encoder import EncoderConfig, TextualEncoder

#: The benchmark counted toward the >=10x acceptance bar.
TARGET_PATH = "fit_trace"

_CITIES = ["austin", "boston", "denver", "seattle", "miami", "portland",
           "chicago", "phoenix", "atlanta", "nashville", "tucson", "omaha"]
_DEVICES = ["phone", "tablet", "desktop", "watch", "console", "kiosk"]
_GENRES = ["country", "rock", "folk", "grunge", "jazz", "blues", "pop", "metal"]


def _training_table(n_rows: int, seed: int) -> Table:
    """A mixed categorical/int table with realistic per-column cardinalities."""
    rng = random.Random(seed)
    names = ["person_{}".format(i) for i in range(40)]
    return Table({
        "name": [rng.choice(names) for _ in range(n_rows)],
        "city": [rng.choice(_CITIES) for _ in range(n_rows)],
        "device": [rng.choice(_DEVICES) for _ in range(n_rows)],
        "genre": [rng.choice(_GENRES) for _ in range(n_rows)],
        "clicks": [rng.randrange(30) for _ in range(n_rows)],
        "rating": [rng.randrange(1, 6) for _ in range(n_rows)],
    })


def _model_config() -> ModelConfig:
    return ModelConfig(order=6, smoothing=0.005,
                       interpolation=(0.42, 0.24, 0.14, 0.1, 0.06, 0.04))


def _corpus(rows: int, seed: int) -> list[str]:
    encoder = TextualEncoder(EncoderConfig(seed=seed))
    builder = CorpusBuilder(encoder=encoder, permutation_passes=2)
    corpus, _ = builder.build(_training_table(rows, seed))
    return corpus


def _compiled_fingerprint(model) -> list:
    """Hashable view of the frozen CSR arrays (the canonical count state)."""
    compiled = model.compiled_model()
    out = []
    for k in range(1, compiled.order):
        out.append((k,
                    compiled._keys[k].tolist(), compiled._row_ptr[k].tolist(),
                    compiled._tokens[k].tolist(), compiled._counts[k].tolist(),
                    compiled._totals[k].tolist()))
    out.append((0, compiled._tokens0.tolist(), compiled._counts0.tolist(),
                compiled._total0))
    return out


# -- benchmark bodies: each returns a timed callable -------------------------------------

def bench_fit_trace(engine: str, rows: int, seed: int):
    """Fine-tune + per-epoch perplexity trace + CSR compile on the full corpus."""
    corpus = _corpus(rows, seed)
    config = FineTuneConfig(epochs=3, batches=3, validation_fraction=0.1,
                            seed=seed, model=_model_config(), engine=engine)

    def body():
        tuner = FineTuner(WordTokenizer(), config)
        result = tuner.fine_tune(corpus)
        compiled = result.model.compiled_model()
        return {
            "vocabulary": dict(tuner.tokenizer.vocabulary.token_to_id),
            "trace": result.perplexity_trace,
            "counts": _compiled_fingerprint(result.model),
            "engine": result.engine,
            "n_contexts": int(sum(compiled._keys[k].size
                                  for k in range(1, compiled.order))),
        }

    return body


def bench_encode(engine: str, rows: int, seed: int):
    """Table -> corpus -> token ids: per-row sentence formatting plus a
    per-sentence tokenizer loop vs the factorize-gather ``encode_table`` path
    plus the shared one-scan ``fit_encode_corpus`` path."""
    table = _training_table(rows, seed)

    if engine == "object":
        def body():
            encoder = TextualEncoder(EncoderConfig(seed=seed))
            names = table.column_names
            corpus = [encoder.encode_row(table.row(i), columns=names, permute=False)
                      for i in range(table.num_rows)]
            corpus.extend(encoder.encode_row(table.row(i), columns=names)
                          for i in range(table.num_rows))
            tokenizer = WordTokenizer().fit(corpus)
            flat: list[int] = []
            for sentence in corpus:
                flat.extend(tokenizer.encode(sentence))
            return dict(tokenizer.vocabulary.token_to_id), flat
    else:
        def body():
            encoder = TextualEncoder(EncoderConfig(seed=seed))
            builder = CorpusBuilder(encoder=encoder, permutation_passes=2)
            corpus, _ = builder.build(table)
            tokenizer = WordTokenizer()
            encoded = tokenizer.fit_encode_corpus(corpus)
            return dict(tokenizer.vocabulary.token_to_id), encoded.ids
    return body


def bench_fit_sample(engine: str, rows: int, seed: int):
    """End to end: fit a GReaT synthesizer and sample rows (identical tables)."""
    table = _training_table(max(rows // 10, 50), seed)
    config = GReaTConfig(
        fine_tune=FineTuneConfig(epochs=3, batches=3, seed=seed,
                                 model=_model_config(), engine=engine),
        sampler=SamplerConfig(temperature=0.85, top_k=12, seed=seed),
        seed=seed,
    )

    def body():
        synth = GReaTSynthesizer(config).fit(table)
        return synth.sample(max(rows // 50, 20), seed=seed + 1).to_records()

    return body


BENCHMARKS = [
    ("fit_trace", bench_fit_trace),
    ("encode", bench_encode),
    ("fit_sample", bench_fit_sample),
]


def run(rows: int, seed: int = 7, repeats: int = 1) -> dict:
    """Run every benchmark on both engines and return the report dict."""
    results: dict[str, dict] = {}
    outputs: dict[str, dict] = {"object": {}, "compiled": {}}
    timings: dict[str, dict] = {"object": {}, "compiled": {}}

    for engine in ("object", "compiled"):
        for name, build in BENCHMARKS:
            body = build(engine, rows, seed)
            best = float("inf")
            for _ in range(max(repeats, 1)):
                start = time.perf_counter()
                outputs[engine][name] = body()
                best = min(best, time.perf_counter() - start)
            timings[engine][name] = best

    for name, _ in BENCHMARKS:
        object_out = outputs["object"][name]
        compiled_out = outputs["compiled"][name]
        if name == "fit_trace":
            # the engine label legitimately differs; everything else must not
            identical = all(object_out[key] == compiled_out[key]
                            for key in ("vocabulary", "trace", "counts"))
        elif name == "encode":
            identical = (object_out[0] == compiled_out[0]
                         and np.array_equal(np.asarray(object_out[1], dtype=np.int64),
                                            compiled_out[1]))
        else:
            identical = object_out == compiled_out
        object_s = timings["object"][name]
        compiled_s = timings["compiled"][name]
        results[name] = {
            "object_s": round(object_s, 6),
            "compiled_s": round(compiled_s, 6),
            "speedup": round(object_s / compiled_s, 2) if compiled_s > 0 else float("inf"),
            "identical_output": identical,
        }
    results["fit_trace"]["n_contexts"] = outputs["compiled"]["fit_trace"]["n_contexts"]
    results["fit_trace"]["trace"] = outputs["compiled"]["fit_trace"]["trace"]

    return {
        "rows": rows,
        "seed": seed,
        "numpy_version": np.__version__,
        "benchmarks": results,
        "all_identical": all(entry["identical_output"] for entry in results.values()),
        "target_path": TARGET_PATH,
        "meets_10x_target": results[TARGET_PATH]["speedup"] >= 10.0,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark the object vs compiled training engines."
    )
    parser.add_argument("--rows", type=int, default=50_000,
                        help="training-table rows for the fit benchmarks (default 50000)")
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run (500 rows, no speedup requirement)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--repeats", type=int, default=1,
                        help="timing repetitions per benchmark (best-of)")
    parser.add_argument("--out", type=Path, default=Path("BENCH_training.json"),
                        help="output JSON path (default ./BENCH_training.json)")
    args = parser.parse_args(argv)

    rows = 500 if args.smoke else args.rows
    report = run(rows, seed=args.seed, repeats=args.repeats)
    report["mode"] = "smoke" if args.smoke else "full"
    args.out.write_text(json.dumps(report, indent=2) + "\n")

    width = max(len(name) for name, _ in BENCHMARKS)
    print(f"rows={rows}  (object vs compiled training engine)")
    for name, _ in BENCHMARKS:
        entry = report["benchmarks"][name]
        flag = "*" if name == TARGET_PATH else " "
        print("{}{:<{width}}  object {:>9.3f}s  compiled {:>9.3f}s  speedup {:>7.2f}x  identical={}".format(
            flag, name, entry["object_s"], entry["compiled_s"], entry["speedup"],
            entry["identical_output"], width=width,
        ))
    print("wrote {}".format(args.out))

    if not report["all_identical"]:
        print("ERROR: engines disagree on at least one training result")
        return 1
    if not args.smoke and not report["meets_10x_target"]:
        print("ERROR: the fit+trace path did not reach the 10x target")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
