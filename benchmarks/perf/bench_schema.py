"""Relational-schema subsystem benchmark.

Exercises the whole ``repro.schema`` path on a 3-level, 5-table synthetic
retail database (customers -> orders -> items, plus reviews under
customers with a secondary store key, plus a standalone stores table):

* **inference** — primary/foreign keys discovered from the raw tables,
  with a hard assertion that the known ground-truth graph is recovered;
* **fit / sample throughput** — whole-database fitting and sampling on
  both the ``object`` and ``compiled`` engines, reporting rows/s;
* **persistence identity** — fit -> save -> load -> ``sample_database``
  asserted byte-identical (CSV bytes, per table) to the pre-save sample,
  per engine, and the two engines asserted identical to each other;
* **referential integrity + seed determinism** — every foreign key of
  every sampled database present in its referenced table; same seed ->
  byte-identical, different seed -> different;
* **served database sharding** — ``SynthesisService.sample_database`` at
  1/2/4 shards, asserting every shard count yields the identical database.

Usage::

    PYTHONPATH=src python -m benchmarks.perf.bench_schema
    PYTHONPATH=src python -m benchmarks.perf.bench_schema --smoke   # CI-sized

The report lands in ``BENCH_schema.json``; the process exits non-zero on
any identity, integrity or recovery mismatch (CI runs ``--smoke``).
"""

from __future__ import annotations

import argparse
import io
import json
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.datasets.relational import RetailConfig, generate_retail_like
from repro.frame.table import Table
from repro.pipelines.multitable import (
    FittedMultiTablePipeline,
    MultiTablePipelineConfig,
    MultiTableSchemaPipeline,
)
from repro.schema import infer_schema
from repro.serving import ServingConfig, SynthesisService

SHARD_COUNTS = (1, 2, 4)

#: ground-truth edges of the retail schema (see repro.datasets.relational)
EXPECTED_EDGES = {
    "items.order_id->orders.order_id",
    "orders.customer_id->customers.customer_id",
    "reviews.customer_id->customers.customer_id",
    "reviews.store_id->stores.store_id",
}


def _csv_bytes(table: Table) -> bytes:
    import csv

    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(table.column_names)
    for row in table.iter_rows():
        writer.writerow(["" if row[name] is None else row[name]
                         for name in table.column_names])
    return buffer.getvalue().encode("utf-8")


def _database_bytes(database: dict[str, Table]) -> dict[str, bytes]:
    return {name: _csv_bytes(table) for name, table in database.items()}


def _referentially_intact(database: dict[str, Table], graph) -> bool:
    for fk in graph.foreign_keys:
        parent_keys = set(database[fk.parent_table].column(fk.parent_column).values)
        if not set(database[fk.table].column(fk.column).values) <= parent_keys:
            return False
    return True


def run(n_customers: int, seed: int = 7) -> dict:
    tables = generate_retail_like(RetailConfig(n_customers=n_customers, seed=seed))
    workdir = Path(tempfile.mkdtemp(prefix="bench_schema_"))
    training_rows = sum(table.num_rows for table in tables.values())
    report: dict = {"n_customers": n_customers, "training_rows": training_rows,
                    "seed": seed, "numpy_version": np.__version__}

    # -- schema inference -----------------------------------------------------------
    start = time.perf_counter()
    graph = infer_schema(tables)
    infer_s = time.perf_counter() - start
    recovered = ({fk.edge_name for fk in graph.foreign_keys} == EXPECTED_EDGES
                 and all(t.primary_key is not None for t in graph.tables))
    report["inference"] = {
        "infer_s": round(infer_s, 6),
        "tables": graph.table_names,
        "foreign_keys": sorted(fk.edge_name for fk in graph.foreign_keys),
        "depth_levels": graph.depth_levels(),
        "graph_recovered": recovered,
    }

    # -- fit / save / load / sample, per engine ---------------------------------------
    engines: dict[str, dict] = {}
    engine_bytes: dict[str, dict[str, bytes]] = {}
    for engine in ("object", "compiled"):
        config = MultiTablePipelineConfig(seed=seed, generation_engine=engine,
                                          training_engine=engine)
        start = time.perf_counter()
        fitted = MultiTableSchemaPipeline(config).fit(tables, graph)
        fit_s = time.perf_counter() - start

        start = time.perf_counter()
        warm = fitted.sample_database(seed=seed + 1)
        sample_s = time.perf_counter() - start
        synthetic_rows = sum(table.num_rows for table in warm.values())

        bundle_path = workdir / "bundle_{}".format(engine)
        start = time.perf_counter()
        digest = fitted.save(bundle_path)
        save_s = time.perf_counter() - start

        start = time.perf_counter()
        loaded = FittedMultiTablePipeline.load(bundle_path)
        load_s = time.perf_counter() - start

        cold = loaded.sample_database(seed=seed + 1)
        warm_bytes = _database_bytes(warm)
        identical = _database_bytes(cold) == warm_bytes
        deterministic = (_database_bytes(fitted.sample_database(seed=seed + 1)) == warm_bytes
                         and _database_bytes(fitted.sample_database(seed=seed + 2)) != warm_bytes)
        engine_bytes[engine] = warm_bytes
        engines[engine] = {
            "digest": digest[:12],
            "fit_s": round(fit_s, 6),
            "sample_s": round(sample_s, 6),
            "save_s": round(save_s, 6),
            "load_s": round(load_s, 6),
            "synthetic_rows": synthetic_rows,
            "rows_per_s": round(synthetic_rows / sample_s, 1) if sample_s > 0 else float("inf"),
            "load_sample_identical": identical,
            "seed_deterministic": deterministic,
            "referentially_intact": _referentially_intact(warm, graph),
        }
    report["engines"] = engines
    report["engines_identical"] = engine_bytes["object"] == engine_bytes["compiled"]

    # -- served database sampling at several shard counts ------------------------------
    bundle_path = workdir / "bundle_compiled"
    serving: list[dict] = []
    reference: dict[str, bytes] | None = None
    for shards in SHARD_COUNTS:
        service = SynthesisService.from_bundle(bundle_path, ServingConfig(
            shards=shards, cache_bytes=0))
        start = time.perf_counter()
        database = service.sample_database(seed=seed + 3)
        elapsed = time.perf_counter() - start
        as_bytes = _database_bytes(database)
        if reference is None:
            reference = as_bytes
        total_rows = sum(table.num_rows for table in database.values())
        serving.append({
            "shards": shards,
            "seconds": round(elapsed, 6),
            "rows_per_s": round(total_rows / elapsed, 1) if elapsed > 0 else float("inf"),
            "identical_across_shards": as_bytes == reference,
        })
    report["serving"] = serving

    report["all_identical"] = (
        report["inference"]["graph_recovered"]
        and report["engines_identical"]
        and all(entry["load_sample_identical"] and entry["seed_deterministic"]
                and entry["referentially_intact"] for entry in engines.values())
        and all(entry["identical_across_shards"] for entry in serving)
    )
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark the relational schema subsystem."
    )
    parser.add_argument("--customers", type=int, default=120,
                        help="customers in the training database (default 120)")
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run (16 customers)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--out", type=Path, default=Path("BENCH_schema.json"),
                        help="output JSON path (default ./BENCH_schema.json)")
    args = parser.parse_args(argv)

    n_customers = 16 if args.smoke else args.customers
    report = run(n_customers, seed=args.seed)
    report["mode"] = "smoke" if args.smoke else "full"
    args.out.write_text(json.dumps(report, indent=2) + "\n")

    print("schema inference: {:.4f}s  edges={}  recovered={}".format(
        report["inference"]["infer_s"],
        len(report["inference"]["foreign_keys"]),
        report["inference"]["graph_recovered"]))
    for engine, entry in report["engines"].items():
        print("{:9s} fit {:>8.3f}s  sample {:>8.3f}s ({:>9.1f} rows/s)  "
              "save {:>7.3f}s  load {:>7.3f}s  identical={}  intact={}".format(
                  engine, entry["fit_s"], entry["sample_s"], entry["rows_per_s"],
                  entry["save_s"], entry["load_s"], entry["load_sample_identical"],
                  entry["referentially_intact"]))
    print("engines identical: {}".format(report["engines_identical"]))
    for entry in report["serving"]:
        print("serving shards={shards}  {seconds:>8.3f}s  {rows_per_s:>9.1f} rows/s  "
              "identical={identical_across_shards}".format(**entry))
    if not report["all_identical"]:
        print("ERROR: identity, integrity or recovery assertion failed")
        return 1
    print("report written to {}".format(args.out))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
