"""Artifact-registry benchmark: fit-as-cache-hit, dedup, format migrations.

Measures the three things the content-addressed registry buys over plain
bundle files:

* **fit as cache hit** — ``Registry.fit_or_load`` on a spec the registry
  has already seen must come back as a verified load instead of a retrain,
  with the cached pipeline's samples **bit-identical** (columnar
  fingerprints compared) to the fresh fit's on both engines.  The speedup
  gate is engine-aware: the ``object`` engine — the reference
  implementation whose retrain is the expensive case a cache exists for —
  must hit at least ``--cache-hit-margin`` times faster (default 10x); the
  ``compiled`` engine trains in fractions of a second at benchmark sizes,
  so its win is gated at the smaller ``--compiled-margin`` (default 2x)
  and reported alongside;
* **shared-part dedup** — saving the fitted 5-table retail multitable
  pipeline must store at least one part once for several referencing part
  names (the edge synthesizers share config/vocabulary parts), i.e.
  ``bytes_reused > 0`` on a fresh save, and a second save of the same
  artifact must write **zero** parts (incremental re-save);
* **migration round trip** — a bundle downgraded to the synthetic v0
  format must load transparently (migrated in memory on read) with
  bit-identical samples, and batch-migrating it back must reproduce the
  native v1 file **byte for byte**.

Usage::

    PYTHONPATH=src python -m benchmarks.perf.bench_registry
    PYTHONPATH=src python -m benchmarks.perf.bench_registry --smoke  # CI-sized

The report lands in ``BENCH_registry.json``; the process exits non-zero on
a missed cache-hit margin, zero dedup savings, a non-incremental re-save,
or any identity mismatch.
"""

from __future__ import annotations

import argparse
import json
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.connecting.connector import ConnectorConfig
from repro.datasets.digix import DigixConfig, generate_digix_like
from repro.datasets.relational import RetailConfig, generate_retail_like
from repro.enhancement.enhancer import EnhancerConfig
from repro.pipelines.config import PipelineConfig
from repro.pipelines.greater import GReaTERPipeline
from repro.pipelines.multitable import MultiTablePipelineConfig, MultiTableSchemaPipeline
from repro.registry import Registry, downgrade_bundle_to_v0, fingerprint_table, migrate_bundle

ENGINES = ("object", "compiled")


def _trial(n_users: int, seed: int):
    dataset = generate_digix_like(DigixConfig(
        n_tasks=1,
        n_users_per_task=n_users,
        ads_rows_per_user=(2, 4),
        feeds_rows_per_user=(2, 4),
        seed=seed,
    ))
    return dataset.trials()[0]


def _pipeline_config(seed: int, engine: str) -> PipelineConfig:
    return PipelineConfig(
        seed=seed,
        drop_columns=("task_id",),
        enhancer=EnhancerConfig(semantic_level="understandability", seed=seed),
        connector=ConnectorConfig(remove_noisy_columns=False),
        generation_engine=engine,
        training_engine=engine,
    )


def run(n_users: int, n_customers: int, seed: int = 7,
        cache_hit_margin: float = 10.0, compiled_margin: float = 2.0) -> dict:
    trial = _trial(n_users, seed)
    workdir = Path(tempfile.mkdtemp(prefix="bench_registry_"))
    report: dict = {"n_users": n_users, "n_customers": n_customers, "seed": seed,
                    "numpy_version": np.__version__}

    # -- fit as cache hit, bit identity, both engines -----------------------------------
    # The first fit_or_load trains and records; the second must resolve the
    # spec to the recorded artifact and come back as a verified load.  The
    # hit time is min-of-3 (load is fast enough to be noise-dominated).
    engines: dict[str, dict] = {}
    for engine in ENGINES:
        registry = Registry(workdir / "reg_{}".format(engine))
        pipeline = GReaTERPipeline(_pipeline_config(seed, engine))

        start = time.perf_counter()
        miss = registry.fit_or_load(pipeline, trial.ads, trial.feeds)
        miss_s = time.perf_counter() - start
        assert not miss.cache_hit

        hit_s = float("inf")
        hit = None
        for _ in range(3):
            start = time.perf_counter()
            hit = registry.fit_or_load(pipeline, trial.ads, trial.feeds)
            hit_s = min(hit_s, time.perf_counter() - start)
        assert hit is not None and hit.cache_hit

        fresh = miss.fitted.sample(n_users, seed=seed + 1).synthetic_flat
        cached = hit.fitted.sample(n_users, seed=seed + 1).synthetic_flat
        engines[engine] = {
            "miss_s": round(miss_s, 6),
            "hit_s": round(hit_s, 6),
            "speedup": round(miss_s / hit_s, 2) if hit_s > 0 else float("inf"),
            "artifact_digest": miss.digest,
            "spec_digest": miss.spec_digest,
            "parts_written": miss.report.parts_written,
            "bytes_written": miss.report.bytes_written,
            "identical_output": (fingerprint_table(fresh) == fingerprint_table(cached)
                                 and hit.digest == miss.digest),
        }
    report["cache_hit"] = {
        "margin": cache_hit_margin,
        "compiled_margin": compiled_margin,
        "engines": engines,
        "identical_output": all(entry["identical_output"]
                                for entry in engines.values()),
        "within_margin": (engines["object"]["speedup"] >= cache_hit_margin
                          and engines["compiled"]["speedup"] >= compiled_margin),
    }

    # -- shared-part dedup on the 5-table retail database -------------------------------
    # The multitable pipeline trains one parent-child synthesizer per schema
    # edge; edges with identical backbone configs produce byte-identical
    # config parts, which the CAS stores once.  A second save of the same
    # artifact must touch nothing.
    retail = generate_retail_like(RetailConfig(n_customers=n_customers, seed=seed))
    registry = Registry(workdir / "reg_retail")
    fitted = MultiTableSchemaPipeline(MultiTablePipelineConfig(
        seed=seed, generation_engine="compiled",
        training_engine="compiled")).fit(retail)
    first = registry.save(fitted)
    second = registry.save(fitted)
    report["dedup"] = {
        "tables": sorted(retail),
        "artifact_digest": first.digest,
        "parts": len(first.parts),
        "objects_stored": first.parts_written,
        "total_bytes": first.total_bytes,
        "bytes_stored": first.bytes_written,
        "dedup_bytes_saved": first.bytes_reused,
        "shared_objects": len(first.shared),
        "shared_parts": sorted(name for names in first.shared.values()
                               for name in names),
        "resave_parts_written": second.parts_written,
        "resave_bytes_written": second.bytes_written,
        "incremental_resave": second.parts_written == 0,
    }

    # -- migration round trip ----------------------------------------------------------
    # v1 bundle -> synthetic v0 -> transparent load (migrated on read, same
    # samples) -> batch migrate -> byte-identical to the native v1 file.
    from repro.store.bundle import load_bundle

    native = workdir / "native_v1"
    pipeline = GReaTERPipeline(_pipeline_config(seed, "compiled"))
    fitted_single = pipeline.fit(trial.ads, trial.feeds)
    fitted_single.save(native)
    reference = fitted_single.sample(n_users, seed=seed + 2).synthetic_flat

    old = workdir / "downgraded_v0"
    downgrade_bundle_to_v0(native, old)

    start = time.perf_counter()
    loaded, _ = load_bundle(old)
    legacy_load_s = time.perf_counter() - start
    legacy_flat = loaded.sample(n_users, seed=seed + 2).synthetic_flat

    migrated = workdir / "migrated_v1"
    result = migrate_bundle(old, out=migrated)
    report["migration"] = {
        "from_version": result["from_version"],
        "to_version": result["to_version"],
        "digest": result["digest"],
        "legacy_load_s": round(legacy_load_s, 6),
        "transparent_load_identical": (
            fingerprint_table(legacy_flat) == fingerprint_table(reference)),
        "round_trip_identical": migrated.read_bytes() == native.read_bytes(),
    }

    report["all_identical"] = (
        report["cache_hit"]["identical_output"]
        and report["migration"]["transparent_load_identical"]
        and report["migration"]["round_trip_identical"]
    )
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark the content-addressed artifact registry.")
    parser.add_argument("--users", type=int, default=48,
                        help="users in the training trial (default 48)")
    parser.add_argument("--customers", type=int, default=20,
                        help="customers in the retail database (default 20)")
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run (8 users, 8 customers)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--cache-hit-margin", type=float, default=10.0,
                        help="required fit-time over cache-hit-time ratio on "
                             "the object engine (default 10)")
    parser.add_argument("--compiled-margin", type=float, default=2.0,
                        help="required ratio on the compiled engine, whose "
                             "sub-second retrain caps the gap (default 2)")
    parser.add_argument("--out", type=Path, default=Path("BENCH_registry.json"),
                        help="output JSON path (default ./BENCH_registry.json)")
    args = parser.parse_args(argv)

    users, customers = (8, 8) if args.smoke else (args.users, args.customers)
    report = run(users, customers, seed=args.seed,
                 cache_hit_margin=args.cache_hit_margin,
                 compiled_margin=args.compiled_margin)
    report["mode"] = "smoke" if args.smoke else "full"
    args.out.write_text(json.dumps(report, indent=2) + "\n")

    for engine, entry in report["cache_hit"]["engines"].items():
        print("{:9s} fit {:>8.3f}s  cache hit {:>8.4f}s  speedup {:>8.1f}x  "
              "identical={}".format(engine, entry["miss_s"], entry["hit_s"],
                                    entry["speedup"], entry["identical_output"]))
    dedup = report["dedup"]
    print("dedup: {} parts -> {} objects  {} bytes logical, {} stored "
          "({} saved, {} shared objects)  resave wrote {} parts".format(
              dedup["parts"], dedup["objects_stored"], dedup["total_bytes"],
              dedup["bytes_stored"], dedup["dedup_bytes_saved"],
              dedup["shared_objects"], dedup["resave_parts_written"]))
    migration = report["migration"]
    print("migration: v{} -> v{}  transparent load {:.4f}s identical={}  "
          "round trip identical={}".format(
              migration["from_version"], migration["to_version"],
              migration["legacy_load_s"], migration["transparent_load_identical"],
              migration["round_trip_identical"]))
    print("wrote {}".format(args.out))

    if not report["all_identical"]:
        print("ERROR: cached/migrated output does not match the fresh fit")
        return 1
    if not report["cache_hit"]["within_margin"]:
        print("ERROR: cache hit under the margin (object >= {}x, compiled "
              ">= {}x): {}".format(
                  report["cache_hit"]["margin"],
                  report["cache_hit"]["compiled_margin"],
                  {engine: entry["speedup"]
                   for engine, entry in report["cache_hit"]["engines"].items()}))
        return 1
    if report["dedup"]["dedup_bytes_saved"] <= 0:
        print("ERROR: no shared-part dedup on the retail multitable bundle")
        return 1
    if not report["dedup"]["incremental_resave"]:
        print("ERROR: re-saving an unchanged artifact wrote {} parts".format(
            report["dedup"]["resave_parts_written"]))
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
