"""Before/after timings for the vectorized frame substrate.

Runs the stats / connecting / fidelity hot paths twice — once with every
column forced onto the legacy object-list backend, once with the typed numpy
backends — asserts that both produce identical numbers (within float
tolerance), and records the timings to ``BENCH_frame.json``.

Usage::

    PYTHONPATH=src python -m benchmarks.perf.bench_frame --rows 100000
    PYTHONPATH=src python -m benchmarks.perf.bench_frame --smoke   # CI-sized

The ``speedup`` column is object-backend time divided by numpy-backend time;
the acceptance bar for the refactor is >=5x on at least two stats/fidelity
paths at 100k rows.
"""

from __future__ import annotations

import argparse
import json
import random
import time
from pathlib import Path

import numpy as np

from repro.connecting.independence import ThresholdSeparation
from repro.evaluation.fidelity import FidelityEvaluator
from repro.frame.backend import using_backend
from repro.frame.ops import inner_join, value_counts
from repro.frame.table import Table
from repro.stats.correlation import association_matrix

#: Benchmarks counted toward the >=5x stats/fidelity acceptance bar.
STATS_FIDELITY_PATHS = ("association_matrix", "fidelity_evaluate", "independence_threshold")


def _make_dataset(rows: int, seed: int) -> dict[str, dict[str, list]]:
    """Raw column lists for one original and one synthetic-like table."""
    rng = random.Random(seed)
    n_subjects = max(rows // 20, 1)

    def table_data(shift: float) -> dict[str, list]:
        subjects = [f"user{rng.randrange(n_subjects)}" for _ in range(rows)]
        city = [rng.choice(["austin", "boston", "denver", "seattle"]) for _ in range(rows)]
        device = [rng.choice(["phone", "tablet", "desktop"]) for _ in range(rows)]
        genre = [
            {"austin": "country", "boston": "rock", "denver": "folk", "seattle": "grunge"}[c]
            if rng.random() > 0.2 + shift else rng.choice(["country", "rock", "folk", "grunge"])
            for c in city
        ]
        clicks = [rng.randrange(50) if rng.random() > 0.01 else None for _ in range(rows)]
        score = [rng.gauss(shift, 1.0) if rng.random() > 0.01 else None for _ in range(rows)]
        return {
            "subject": subjects,
            "city": city,
            "device": device,
            "genre": genre,
            "clicks": clicks,
            "score": score,
        }

    return {"original": table_data(0.0), "synthetic": table_data(0.15)}


def _build_tables(raw: dict[str, dict[str, list]]) -> dict[str, Table]:
    return {name: Table({k: list(v) for k, v in data.items()}) for name, data in raw.items()}


# -- benchmark bodies: each returns a comparable result object ----------------

def bench_association_matrix(tables: dict[str, Table]):
    matrix, names = association_matrix(
        tables["original"], ["city", "device", "genre", "clicks"]
    )
    return matrix.tolist(), names


def bench_fidelity_evaluate(tables: dict[str, Table]):
    report = FidelityEvaluator(max_conditioning_values=60).evaluate(
        tables["original"], tables["synthetic"],
        columns=["city", "device", "genre", "clicks", "score"],
    )
    return [
        (p.pair, p.p_value, p.w_distance, p.n_conditioning_values) for p in report.pairs
    ]


def bench_independence_threshold(tables: dict[str, Table]):
    result = ThresholdSeparation(threshold="mean").determine(
        tables["original"], ["city", "device", "genre", "clicks"]
    )
    return result.independent_columns, result.dependent_columns, result.threshold


def bench_inner_join(tables: dict[str, Table]):
    joined = inner_join(
        tables["original"][["subject", "city", "clicks"]],
        tables["synthetic"][["subject", "genre"]],
        on="subject",
    )
    return joined.shape, joined.column("clicks").missing_count()


def bench_group_by_subject(tables: dict[str, Table]):
    groups = tables["original"].group_indices("subject")
    return len(groups), sum(len(v) for v in groups.values())


def bench_drop_duplicates(tables: dict[str, Table]):
    reduced = tables["original"].drop_duplicates(subset=["city", "device", "genre", "clicks"])
    return reduced.shape, reduced.column("city").values[:50]


def bench_sort_by_score(tables: dict[str, Table]):
    ordered = tables["original"].sort_by("score")
    return ordered.column("score").values[:100], ordered.column("score").values[-100:]


def bench_value_counts(tables: dict[str, Table]):
    return dict(value_counts(tables["original"], "genre"))


BENCHMARKS = [
    ("association_matrix", bench_association_matrix),
    ("fidelity_evaluate", bench_fidelity_evaluate),
    ("independence_threshold", bench_independence_threshold),
    ("inner_join", bench_inner_join),
    ("group_by_subject", bench_group_by_subject),
    ("drop_duplicates", bench_drop_duplicates),
    ("sort_by_score", bench_sort_by_score),
    ("value_counts", bench_value_counts),
]


def _equivalent(a, b, atol=1e-9) -> bool:
    if isinstance(a, (list, tuple)):
        return (
            isinstance(b, (list, tuple))
            and len(a) == len(b)
            and all(_equivalent(x, y, atol) for x, y in zip(a, b))
        )
    if isinstance(a, dict):
        return (
            isinstance(b, dict)
            and sorted(map(str, a)) == sorted(map(str, b))
            and all(_equivalent(a[k], b[k], atol) for k in a)
        )
    if isinstance(a, float) or isinstance(b, float):
        if a is None or b is None:
            return a is None and b is None
        return abs(float(a) - float(b)) <= atol * max(1.0, abs(float(a)), abs(float(b)))
    return a == b


def run(rows: int, seed: int = 7, repeats: int = 1) -> dict:
    """Run every benchmark on both backends and return the report dict."""
    raw = _make_dataset(rows, seed)
    results: dict[str, dict] = {}
    outputs: dict[str, dict] = {"object": {}, "numpy": {}}
    timings: dict[str, dict] = {"object": {}, "numpy": {}}

    for backend in ("object", "numpy"):
        with using_backend(backend):
            tables = _build_tables(raw)
            for name, body in BENCHMARKS:
                best = float("inf")
                for _ in range(max(repeats, 1)):
                    start = time.perf_counter()
                    outputs[backend][name] = body(tables)
                    best = min(best, time.perf_counter() - start)
                timings[backend][name] = best

    for name, _ in BENCHMARKS:
        equivalent = _equivalent(outputs["object"][name], outputs["numpy"][name])
        object_s = timings["object"][name]
        numpy_s = timings["numpy"][name]
        results[name] = {
            "object_s": round(object_s, 6),
            "numpy_s": round(numpy_s, 6),
            "speedup": round(object_s / numpy_s, 2) if numpy_s > 0 else float("inf"),
            "equivalent": equivalent,
            "stats_fidelity_path": name in STATS_FIDELITY_PATHS,
        }

    fast_paths = [
        name for name in STATS_FIDELITY_PATHS if results[name]["speedup"] >= 5.0
    ]
    return {
        "rows": rows,
        "seed": seed,
        "numpy_version": np.__version__,
        "benchmarks": results,
        "all_equivalent": all(entry["equivalent"] for entry in results.values()),
        "stats_fidelity_paths_at_5x": fast_paths,
        "meets_5x_target": len(fast_paths) >= 2,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark the object vs numpy frame backends."
    )
    parser.add_argument("--rows", type=int, default=100_000,
                        help="rows per generated table (default 100000)")
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run (2000 rows, no speedup requirement)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--repeats", type=int, default=1,
                        help="timing repetitions per benchmark (best-of)")
    parser.add_argument("--out", type=Path, default=Path("BENCH_frame.json"),
                        help="output JSON path (default ./BENCH_frame.json)")
    args = parser.parse_args(argv)

    rows = 2_000 if args.smoke else args.rows
    report = run(rows, seed=args.seed, repeats=args.repeats)
    report["mode"] = "smoke" if args.smoke else "full"
    args.out.write_text(json.dumps(report, indent=2) + "\n")

    width = max(len(name) for name, _ in BENCHMARKS)
    print(f"rows={rows}  (object vs numpy backend)")
    for name, _ in BENCHMARKS:
        entry = report["benchmarks"][name]
        flag = "*" if entry["stats_fidelity_path"] else " "
        print("{}{:<{width}}  object {:>9.4f}s  numpy {:>9.4f}s  speedup {:>7.2f}x  equivalent={}".format(
            flag, name, entry["object_s"], entry["numpy_s"], entry["speedup"],
            entry["equivalent"], width=width,
        ))
    print("wrote {}".format(args.out))

    if not report["all_equivalent"]:
        print("ERROR: backends disagree on at least one benchmark result")
        return 1
    if not args.smoke and not report["meets_5x_target"]:
        print("ERROR: fewer than two stats/fidelity paths reached the 5x target")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
