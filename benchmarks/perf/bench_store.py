"""Artifact-store + serving benchmark.

Measures the three things the train-once / serve-many split buys:

* **save/load latency** — persisting a fitted GReaTER pipeline as a bundle
  and loading it back;
* **cold start vs retrain** — ``load + sample`` in a fresh synthesizer
  state against ``fit + sample`` from scratch, with a hard assertion that
  the loaded pipeline produces the **byte-identical** synthetic flat table
  (CSV bytes compared) for the same seed, on both the ``object`` and
  ``compiled`` engines;
* **serving throughput** — block-sharded ``sample_table`` requests through
  :class:`repro.serving.SynthesisService` at 1/2/4 shards, asserting every
  shard count yields the identical table;
* **process-worker scaling** — the same requests through the process
  executor (``ServingConfig(executor="process", mmap=True)``) at 1/2/4
  workers: rows/s plus p50/p95 from the serving latency histograms, a
  sha256 digest of the output per worker count (all must match the serial
  reference), and the 4-vs-1 worker throughput ratio.  The ratio is only
  *asserted* (>= ``--scaling-margin``) when the machine actually has >= 4
  CPU cores — on smaller boxes it is recorded but cannot be meaningful;
* **out-of-core streaming** — a table >= 10x the chunk budget streamed
  through :class:`repro.store.stream.CsvTableSink` on both engines: the
  streamed CSV must be sha256-identical to the in-memory materialization
  of the same blocks, and the tracemalloc allocation peak of the chunked
  walk must stay O(chunk), not O(table) — asserted by streaming 4x the
  rows and requiring the peak to grow by at most ``--stream-growth-bound``
  (in-memory peaks grow with the table; streamed peaks must not).
  Process peak RSS is recorded alongside.  The compiled engine's per-block
  lane cap is asserted too: one small block sampled through
  ``sample_block`` (batch width capped at the block's subject count) must
  peak at no more than ``--lane-cap-bound`` times the uncapped path;
* **observability overhead** — the same ``sample_table`` workload with
  request tracing disabled and enabled (in-memory ring sink), interleaved
  over several rounds with min-of-round timings: the enabled/disabled
  ratio must stay under ``--trace-overhead-bound`` (default 1.05, i.e.
  < 5% overhead), the traced output must be byte-identical to the
  untraced output, and every captured span must pass the documented
  schema (:mod:`repro.obs.schema`);
* **resilience under a crash storm** — the same deterministic workload
  through a 4-worker process pool with the :mod:`repro.faults` harness
  killing a worker every 25th task (``worker_crash%25``): a single
  1000-block ``sample_table`` must complete with retries enabled and be
  CSV byte-identical to the fault-free serial reference, and a storm of
  smaller requests must reach a 100% success rate with retries on (the
  retries-off failure rate and the p95 latency overhead versus a
  fault-free pool are recorded alongside).

Usage::

    PYTHONPATH=src python -m benchmarks.perf.bench_store
    PYTHONPATH=src python -m benchmarks.perf.bench_store --smoke   # CI-sized

The report lands in ``BENCH_store.json``; the process exits non-zero on any
load/sample, shard or worker mismatch, on a chaos-run failure or digest
mismatch, and on a sub-100% retries-on storm success rate (CI runs
``--smoke`` and fails on mismatch, and on a missed scaling margin when
enough cores are present).
"""

from __future__ import annotations

import argparse
import hashlib
import io
import json
import os
import tempfile
import time
import tracemalloc
from pathlib import Path

import numpy as np

from repro.connecting.connector import ConnectorConfig
from repro.datasets.digix import DigixConfig, generate_digix_like
from repro.enhancement.enhancer import EnhancerConfig
from repro.frame.io import write_csv
from repro.frame.ops import concat_rows
from repro.frame.table import Table
from repro.pipelines.base import FittedPipeline
from repro.pipelines.config import PipelineConfig
from repro.pipelines.greater import GReaTERPipeline
from repro.serving import ServingConfig, SynthesisService, process_peak_rss_bytes
from repro.store.bundle import load_fitted_pipeline
from repro.store.stream import CsvTableSink

SHARD_COUNTS = (1, 2, 4)
WORKER_COUNTS = (1, 2, 4)


def _trial(n_users: int, seed: int):
    dataset = generate_digix_like(DigixConfig(
        n_tasks=1,
        n_users_per_task=n_users,
        ads_rows_per_user=(2, 4),
        feeds_rows_per_user=(2, 4),
        seed=seed,
    ))
    return dataset.trials()[0]


def _pipeline_config(seed: int, engine: str) -> PipelineConfig:
    return PipelineConfig(
        seed=seed,
        drop_columns=("task_id",),
        enhancer=EnhancerConfig(semantic_level="understandability", seed=seed),
        connector=ConnectorConfig(remove_noisy_columns=False),
        generation_engine=engine,
        training_engine=engine,
    )


def _csv_bytes(table: Table) -> bytes:
    """Canonical CSV rendering used for the byte-identity assertions."""
    import csv

    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(table.column_names)
    for row in table.iter_rows():
        writer.writerow(["" if row[name] is None else row[name] for name in table.column_names])
    return buffer.getvalue().encode("utf-8")


def _tables_digest(tables: list[Table]) -> str:
    """One sha256 over the canonical CSV bytes of a sequence of tables."""
    digest = hashlib.sha256()
    for table in tables:
        digest.update(_csv_bytes(table))
    return digest.hexdigest()


def _sha256_file(path: Path) -> str:
    return hashlib.sha256(path.read_bytes()).hexdigest()


def run(n_users: int, n_sample: int, requests: int, seed: int = 7,
        scaling_margin: float = 2.5, stream_growth_bound: float = 1.5,
        lane_cap_bound: float = 0.9) -> dict:
    trial = _trial(n_users, seed)
    workdir = Path(tempfile.mkdtemp(prefix="bench_store_"))
    report: dict = {"n_users": n_users, "n_sample": n_sample, "seed": seed,
                    "numpy_version": np.__version__}

    # -- cold start vs retrain, byte identity, both engines ---------------------------
    # "cold start" is time-to-ready-to-serve: loading the bundle instead of
    # retraining from scratch.  The sampled output is then asserted to be
    # byte-identical (CSV bytes) between the retrained and the loaded state.
    engines: dict[str, dict] = {}
    for engine in ("object", "compiled"):
        config = _pipeline_config(seed, engine)
        start = time.perf_counter()
        fitted = GReaTERPipeline(config).fit(trial.ads, trial.feeds)
        fit_s = time.perf_counter() - start
        warm_result = fitted.sample(n_subjects=n_sample, seed=seed + 1)

        bundle_path = workdir / "bundle_{}".format(engine)
        start = time.perf_counter()
        digest = fitted.save(bundle_path)
        save_s = time.perf_counter() - start

        start = time.perf_counter()
        loaded, loaded_digest = load_fitted_pipeline(bundle_path)
        load_s = time.perf_counter() - start

        start = time.perf_counter()
        cold_result = loaded.sample(n_subjects=n_sample, seed=seed + 1)
        first_sample_s = time.perf_counter() - start

        identical = (_csv_bytes(cold_result.synthetic_flat)
                     == _csv_bytes(warm_result.synthetic_flat)
                     and cold_result.synthetic_parent == warm_result.synthetic_parent
                     and cold_result.synthetic_child == warm_result.synthetic_child)
        engines[engine] = {
            "digest": digest[:12],
            "digest_stable": digest == loaded_digest,
            "save_s": round(save_s, 6),
            "load_s": round(load_s, 6),
            "retrain_s": round(fit_s, 6),
            "first_sample_s": round(first_sample_s, 6),
            "cold_start_speedup": round(fit_s / load_s, 2) if load_s > 0 else float("inf"),
            "identical_output": identical,
            "synthetic_rows": warm_result.synthetic_flat.num_rows,
        }
    report["engines"] = engines

    # -- serving throughput at several shard counts -----------------------------------
    bundle_path = workdir / "bundle_compiled"
    serving: list[dict] = []
    reference: list[Table] | None = None
    for shards in SHARD_COUNTS:
        service = SynthesisService.from_bundle(bundle_path, ServingConfig(
            shards=shards, block_size=max(8, n_sample // 8), cache_bytes=0))
        start = time.perf_counter()
        tables = [service.sample_table(n_sample, seed=seed + index)
                  for index in range(requests)]
        elapsed = time.perf_counter() - start
        if reference is None:
            reference = tables
        identical = all(a == b for a, b in zip(tables, reference))
        total_rows = sum(table.num_rows for table in tables)
        serving.append({
            "shards": shards,
            "requests": requests,
            "seconds": round(elapsed, 6),
            "requests_per_s": round(requests / elapsed, 3) if elapsed > 0 else float("inf"),
            "rows_per_s": round(total_rows / elapsed, 1) if elapsed > 0 else float("inf"),
            "identical_across_shards": identical,
        })
    report["serving"] = serving

    # -- coalesced conditioned-row serving ----------------------------------------------
    service = SynthesisService.from_bundle(bundle_path, ServingConfig(cache_bytes=0))
    row_requests = [service._normalize_request(max(4, n_sample // 8), None, seed + index)
                    for index in range(requests)]
    start = time.perf_counter()
    merged = service.sample_rows_many(row_requests)
    merged_s = time.perf_counter() - start
    start = time.perf_counter()
    solo = [service.sample_rows_many([request])[0] for request in row_requests]
    solo_s = time.perf_counter() - start
    report["coalescing"] = {
        "requests": len(row_requests),
        "rows_per_request": row_requests[0].n,
        "merged_s": round(merged_s, 6),
        "solo_s": round(solo_s, 6),
        "coalescing_speedup": round(solo_s / merged_s, 2) if merged_s > 0 else float("inf"),
        "identical_output": all(a == b for a, b in zip(merged, solo)),
    }

    # -- process-worker scaling ---------------------------------------------------------
    # Each request block-shards across the pool's worker processes; workers
    # cold-start by loading the bundle themselves (memory-mapped, so the big
    # count tables share page cache).  Every worker count must reproduce the
    # serial reference digest; throughput scaling is recorded always but only
    # meaningful on machines with enough cores.
    proc_sample = max(n_sample, 16 * max(WORKER_COUNTS))
    proc_block = max(4, proc_sample // (2 * max(WORKER_COUNTS)))
    proc_requests = max(2, requests)
    with SynthesisService.from_bundle(bundle_path, ServingConfig(
            shards=1, block_size=proc_block, cache_bytes=0)) as serial_service:
        expected_digest = _tables_digest(
            [serial_service.sample_table(proc_sample, seed=seed + index)
             for index in range(proc_requests)])
    workers_out: list[dict] = []
    throughput: dict[int, float] = {}
    for workers in WORKER_COUNTS:
        start = time.perf_counter()
        service = SynthesisService.from_bundle(bundle_path, ServingConfig(
            shards=workers, block_size=proc_block, cache_bytes=0,
            executor="process", mmap=True))
        startup_s = time.perf_counter() - start
        try:
            service.sample_table(proc_sample, seed=seed)  # warm-up pass
            start = time.perf_counter()
            tables = [service.sample_table(proc_sample, seed=seed + index)
                      for index in range(proc_requests)]
            elapsed = time.perf_counter() - start
            histogram = service.metrics.histogram("sample_table")
            p50_s, p95_s = histogram.quantile(0.5), histogram.quantile(0.95)
        finally:
            service.close()
        total_rows = sum(table.num_rows for table in tables)
        throughput[workers] = total_rows / elapsed if elapsed > 0 else float("inf")
        workers_out.append({
            "workers": workers,
            "startup_s": round(startup_s, 6),
            "seconds": round(elapsed, 6),
            "rows_per_s": round(throughput[workers], 1),
            "p50_s": round(p50_s, 6),
            "p95_s": round(p95_s, 6),
            "output_digest": _tables_digest(tables),
        })
    cpu_count = os.cpu_count() or 1
    report["process_serving"] = {
        "cpu_count": cpu_count,
        "mmap": True,
        "sample": proc_sample,
        "block_size": proc_block,
        "requests": proc_requests,
        "expected_digest": expected_digest,
        "workers": workers_out,
        "identical_across_workers": all(
            entry["output_digest"] == expected_digest for entry in workers_out),
        "scaling_4w_over_1w": round(
            throughput[max(WORKER_COUNTS)] / throughput[min(WORKER_COUNTS)], 2),
        "scaling_margin": scaling_margin,
        "scaling_asserted": cpu_count >= max(WORKER_COUNTS),
    }

    # -- out-of-core streaming: O(chunk) memory, byte-identical CSV ---------------------
    # A table >= 10x the chunk budget is streamed block by block through the
    # CSV sink; the in-memory path materializes the identical blocks first,
    # so the two CSVs must be sha256-identical.  The memory gate runs on
    # tracemalloc peaks (process peak RSS is monotonic over the whole
    # benchmark, so it is recorded for the report only): streaming 4x the
    # rows must not grow the streamed peak meaningfully — the signature of
    # O(chunk) rather than O(table) memory.
    chunk_rows = max(4, n_sample // 8)
    n_stream = 12 * chunk_rows
    stream_engines: dict[str, dict] = {}

    def _streamed(fitted, path: Path, n: int) -> tuple[int, float, int, int]:
        tracemalloc.start()
        start = time.perf_counter()
        with CsvTableSink(path) as sink:
            sink.write_all(fitted.iter_sample_flat(
                n_subjects=n, seed=seed + 2, chunk_rows=chunk_rows))
            rows, chunks = sink.rows_written, sink.chunks_written
        elapsed = time.perf_counter() - start
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        return peak, elapsed, rows, chunks

    for engine in ("object", "compiled"):
        fitted, _ = load_fitted_pipeline(workdir / "bundle_{}".format(engine))

        whole_path = workdir / "whole_{}.csv".format(engine)
        tracemalloc.start()
        start = time.perf_counter()
        whole = concat_rows(list(fitted.iter_sample_flat(
            n_subjects=n_stream, seed=seed + 2, chunk_rows=chunk_rows)))
        write_csv(whole, whole_path)
        in_memory_s = time.perf_counter() - start
        _, full_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()

        stream_path = workdir / "stream_{}.csv".format(engine)
        stream_peak, streamed_s, rows_written, chunks_written = _streamed(
            fitted, stream_path, n_stream)
        big_peak, _, big_rows, _ = _streamed(
            fitted, workdir / "stream4x_{}.csv".format(engine), 4 * n_stream)

        stream_engines[engine] = {
            "rows": rows_written,
            "chunks": chunks_written,
            "in_memory_s": round(in_memory_s, 6),
            "streamed_s": round(streamed_s, 6),
            "in_memory_peak_bytes": full_peak,
            "streamed_peak_bytes": stream_peak,
            "peak_ratio": round(stream_peak / full_peak, 4) if full_peak else None,
            "rows_4x": big_rows,
            "streamed_peak_bytes_4x": big_peak,
            "peak_growth_4x": round(big_peak / stream_peak, 4) if stream_peak else None,
            "identical_output": _sha256_file(stream_path) == _sha256_file(whole_path),
        }
    # -- lane-cap headroom: per-block buffers scale with the block ----------------------
    # ``sample_block`` caps the engine batch width at the block's subject
    # count; replaying the same small block through the uncapped path (the
    # pre-cap behavior — full-fanout child-round mass buffers) must allocate
    # measurably more, even though the capped path also pays for decoding.
    fitted, _ = load_fitted_pipeline(workdir / "bundle_compiled")
    fitted.sample_block(0, chunk_rows, seed + 3)  # warm lazily-built state
    tracemalloc.start()
    fitted.sample_block(0, chunk_rows, seed + 3)
    _, capped_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    tracemalloc.start()
    if len(fitted.synthesizers) == 2:
        fitted._two_round_flat(chunk_rows, seed + 3, subject_offset=0)
    else:
        fitted.synthesizers[0].sample_flat(chunk_rows, seed=seed + 3,
                                           subject_offset=0)
    _, uncapped_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    lane_cap = {
        "block_subjects": chunk_rows,
        "capped_peak_bytes": capped_peak,
        "uncapped_peak_bytes": uncapped_peak,
        "peak_ratio": round(capped_peak / uncapped_peak, 4) if uncapped_peak else None,
        "bound": lane_cap_bound,
    }
    lane_cap["within_bound"] = (lane_cap["peak_ratio"] is not None
                                and lane_cap["peak_ratio"] <= lane_cap_bound)

    report["streaming"] = {
        "chunk_rows": chunk_rows,
        "n_subjects": n_stream,
        "chunks_over_budget": n_stream // chunk_rows,
        "growth_bound": stream_growth_bound,
        "peak_rss_bytes": process_peak_rss_bytes(),
        "engines": stream_engines,
        "lane_cap": lane_cap,
        "identical_output": all(
            entry["identical_output"] for entry in stream_engines.values()),
        "within_memory_bound": all(
            entry["peak_growth_4x"] is not None
            and entry["peak_growth_4x"] <= stream_growth_bound
            for entry in stream_engines.values()),
    }

    # -- observability: tracing must be (nearly) free -----------------------------------
    # Disabled tracing is the default and must cost nothing; enabled tracing
    # buys per-stage spans for < 5% end-to-end overhead.  Modes alternate
    # within each round so drift (page cache, thermal) hits both equally,
    # and min-of-rounds is compared — the min is the least-noisy estimate.
    from repro.obs import trace as obs_trace
    from repro.obs.schema import validate_lines

    obs_rounds, obs_requests = 3, max(2, requests)
    obs_config = ServingConfig(shards=1, block_size=max(8, n_sample // 8),
                               cache_bytes=0)
    times: dict[str, list[float]] = {"disabled": [], "enabled": []}
    outputs: dict[str, str] = {}
    spans_captured = 0
    schema_errors: list[str] = []
    with SynthesisService.from_bundle(bundle_path, obs_config) as service:
        service.sample_table(n_sample, seed=seed + 50)  # warm-up
        for _ in range(obs_rounds):
            for mode in ("disabled", "enabled"):
                if mode == "enabled":
                    obs_trace.configure("ring:8192")
                else:
                    obs_trace.disable()
                try:
                    start = time.perf_counter()
                    tables = [service.sample_table(n_sample, seed=seed + 50 + index)
                              for index in range(obs_requests)]
                    times[mode].append(time.perf_counter() - start)
                    outputs.setdefault(mode, _tables_digest(tables))
                    if mode == "enabled":
                        snapshot = obs_trace.ring_snapshot() or {}
                        spans = snapshot.get("spans", [])
                        spans_captured = max(spans_captured, len(spans))
                        if not schema_errors:
                            schema_errors = validate_lines(spans)
                finally:
                    obs_trace.disable()
    overhead_ratio = (min(times["enabled"]) / min(times["disabled"])
                      if min(times["disabled"]) > 0 else None)
    report["observability"] = {
        "rounds": obs_rounds,
        "requests_per_round": obs_requests,
        "disabled_s": [round(value, 6) for value in times["disabled"]],
        "enabled_s": [round(value, 6) for value in times["enabled"]],
        "min_disabled_s": round(min(times["disabled"]), 6),
        "min_enabled_s": round(min(times["enabled"]), 6),
        "overhead_ratio": round(overhead_ratio, 4) if overhead_ratio else None,
        "spans_captured": spans_captured,
        "schema_errors": schema_errors[:10],
        "identical_output": outputs.get("enabled") == outputs.get("disabled"),
    }

    # -- resilience: availability under a worker-crash storm ----------------------------
    # The fault plan kills a worker on every 25th task of each worker life;
    # retries re-dispatch the dead worker's orphaned blocks.  Because every
    # block's seed derives from the request seed alone, a retried block is
    # bit-identical to a first-try block — asserted by comparing CSV digests
    # against a fault-free serial reference.
    resil_workers = 4
    resil_faults = "worker_crash%25"
    resil_retries = 3
    resil_blocks = 1000
    storm_requests, storm_blocks = 24, 25
    chaos_kwargs = dict(shards=resil_workers, block_size=1, cache_bytes=0,
                        executor="process", mmap=True, breaker_threshold=0,
                        retry_backoff_s=0.01)

    with SynthesisService.from_bundle(bundle_path, ServingConfig(
            shards=1, block_size=1, cache_bytes=0)) as serial_service:
        reference_digest = _tables_digest(
            [serial_service.sample_table(resil_blocks, seed=seed + 31)])
        storm_reference = _tables_digest(
            [serial_service.sample_table(storm_blocks, seed=seed + 200 + index)
             for index in range(storm_requests)])

    with SynthesisService.from_bundle(bundle_path, ServingConfig(
            retries=resil_retries, faults=resil_faults, **chaos_kwargs)) as service:
        start = time.perf_counter()
        try:
            table = service.sample_table(resil_blocks, seed=seed + 31)
            single_success = True
            single_digest_equal = _tables_digest([table]) == reference_digest
        except Exception as error:  # noqa: BLE001 - the failure IS the measurement
            single_success, single_digest_equal = False, False
            print("chaos single request failed: {}".format(error))
        chaos_s = time.perf_counter() - start
        pool_stats = service.pool.stats()

    def _storm(retries: int, faults: str | None) -> dict:
        with SynthesisService.from_bundle(bundle_path, ServingConfig(
                retries=retries, faults=faults, **chaos_kwargs)) as service:
            tables: list[Table | None] = []
            start = time.perf_counter()
            for index in range(storm_requests):
                try:
                    tables.append(service.sample_table(
                        storm_blocks, seed=seed + 200 + index))
                except Exception:  # noqa: BLE001 - failed requests are counted
                    tables.append(None)
            elapsed = time.perf_counter() - start
            histogram = service.metrics.histogram("sample_table")
            stats = service.pool.stats()
        succeeded = [entry for entry in tables if entry is not None]
        return {
            "success_rate": round(len(succeeded) / storm_requests, 4),
            "failed": storm_requests - len(succeeded),
            "seconds": round(elapsed, 6),
            "p95_s": round(histogram.quantile(0.95), 6),
            "digest_equal": (len(succeeded) == storm_requests
                             and _tables_digest(succeeded) == storm_reference),
            "worker_restarts": stats["restarts"],
            "tasks_retried": stats["tasks_retried"],
            "retries_exhausted": stats["retries_exhausted"],
        }

    fault_free = _storm(retries=0, faults=None)
    with_retries = _storm(retries=resil_retries, faults=resil_faults)
    without_retries = _storm(retries=0, faults=resil_faults)
    report["resilience"] = {
        "workers": resil_workers,
        "faults": resil_faults,
        "retries": resil_retries,
        "single_request": {
            "blocks": resil_blocks,
            "success": single_success,
            "digest_equal": single_digest_equal,
            "seconds": round(chaos_s, 6),
            "worker_restarts": pool_stats["restarts"],
            "tasks_retried": pool_stats["tasks_retried"],
            "retries_exhausted": pool_stats["retries_exhausted"],
        },
        "storm": {
            "requests": storm_requests,
            "blocks_per_request": storm_blocks,
            "fault_free": fault_free,
            "with_retries": with_retries,
            "without_retries": without_retries,
            "p95_overhead": (round(with_retries["p95_s"] / fault_free["p95_s"], 2)
                             if fault_free["p95_s"] > 0 else None),
        },
    }

    report["all_identical"] = (
        all(entry["identical_output"] for entry in engines.values())
        and all(entry["identical_across_shards"] for entry in serving)
        and report["coalescing"]["identical_output"]
        and report["process_serving"]["identical_across_workers"]
        and report["streaming"]["identical_output"]
    )
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark the artifact store and the synthesis serving layer."
    )
    parser.add_argument("--users", type=int, default=48,
                        help="users in the training trial (default 48)")
    parser.add_argument("--sample", type=int, default=96,
                        help="synthetic subjects per sampling request (default 96)")
    parser.add_argument("--requests", type=int, default=4,
                        help="serving requests per shard count (default 4)")
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run (8 users, 16 subjects)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--scaling-margin", type=float, default=2.5,
                        help="required 4-worker over 1-worker rows/s ratio, "
                             "asserted only on machines with >= 4 cores (default 2.5)")
    parser.add_argument("--stream-growth-bound", type=float, default=1.5,
                        help="max allowed growth of the streaming allocation "
                             "peak when the table grows 4x (default 1.5)")
    parser.add_argument("--lane-cap-bound", type=float, default=0.9,
                        help="max allowed capped/uncapped allocation-peak ratio "
                             "for one small block (default 0.9)")
    parser.add_argument("--trace-overhead-bound", type=float, default=1.05,
                        help="max allowed enabled/disabled tracing time ratio "
                             "(default 1.05 = < 5%% overhead)")
    parser.add_argument("--out", type=Path, default=Path("BENCH_store.json"),
                        help="output JSON path (default ./BENCH_store.json)")
    args = parser.parse_args(argv)

    if args.smoke:
        users, sample, requests = 8, 16, 2
    else:
        users, sample, requests = args.users, args.sample, args.requests
    report = run(users, sample, requests, seed=args.seed,
                 scaling_margin=args.scaling_margin,
                 stream_growth_bound=args.stream_growth_bound,
                 lane_cap_bound=args.lane_cap_bound)
    report["mode"] = "smoke" if args.smoke else "full"
    report["observability"]["overhead_bound"] = args.trace_overhead_bound
    args.out.write_text(json.dumps(report, indent=2) + "\n")

    for engine, entry in report["engines"].items():
        print("{:9s} save {:>8.3f}s  load {:>8.3f}s  retrain {:>8.3f}s  "
              "cold-start speedup {:>8.2f}x  identical={}".format(
                  engine, entry["save_s"], entry["load_s"], entry["retrain_s"],
                  entry["cold_start_speedup"], entry["identical_output"]))
    for entry in report["serving"]:
        print("serving shards={:d}  {:>8.3f}s  {:>8.1f} rows/s  identical={}".format(
            entry["shards"], entry["seconds"], entry["rows_per_s"],
            entry["identical_across_shards"]))
    coalescing = report["coalescing"]
    print("coalescing {} requests: merged {:.3f}s vs solo {:.3f}s ({}x)  identical={}".format(
        coalescing["requests"], coalescing["merged_s"], coalescing["solo_s"],
        coalescing["coalescing_speedup"], coalescing["identical_output"]))
    process = report["process_serving"]
    for entry in process["workers"]:
        print("process workers={:d}  startup {:>7.3f}s  {:>8.3f}s  {:>8.1f} rows/s  "
              "p50 {:.3f}s  p95 {:.3f}s".format(
                  entry["workers"], entry["startup_s"], entry["seconds"],
                  entry["rows_per_s"], entry["p50_s"], entry["p95_s"]))
    print("process scaling 4w/1w = {}x on {} cores  identical_across_workers={}".format(
        process["scaling_4w_over_1w"], process["cpu_count"],
        process["identical_across_workers"]))
    streaming = report["streaming"]
    for engine, entry in streaming["engines"].items():
        print("streaming {:9s} {:d} rows in {:d} chunks of {:d}  "
              "peak {:.0f} KiB (in-memory {:.0f} KiB)  "
              "4x rows -> peak x{:.2f}  identical={}".format(
                  engine, entry["rows"], entry["chunks"], streaming["chunk_rows"],
                  entry["streamed_peak_bytes"] / 1024,
                  entry["in_memory_peak_bytes"] / 1024,
                  entry["peak_growth_4x"], entry["identical_output"]))
    lane_cap = streaming["lane_cap"]
    print("lane cap: {}-subject block peak {:.0f} KiB capped vs {:.0f} KiB "
          "uncapped (x{}, bound x{})".format(
              lane_cap["block_subjects"], lane_cap["capped_peak_bytes"] / 1024,
              lane_cap["uncapped_peak_bytes"] / 1024, lane_cap["peak_ratio"],
              lane_cap["bound"]))
    observability = report["observability"]
    print("observability: tracing off {:.3f}s  on {:.3f}s  overhead x{}  "
          "{} spans  schema_errors={}  identical={}".format(
              observability["min_disabled_s"], observability["min_enabled_s"],
              observability["overhead_ratio"], observability["spans_captured"],
              len(observability["schema_errors"]),
              observability["identical_output"]))
    resilience = report["resilience"]
    single = resilience["single_request"]
    storm = resilience["storm"]
    print("chaos single request: {} blocks under {} in {:.3f}s  "
          "restarts={} retried={}  success={} digest_equal={}".format(
              single["blocks"], resilience["faults"], single["seconds"],
              single["worker_restarts"], single["tasks_retried"],
              single["success"], single["digest_equal"]))
    print("chaos storm ({} x {} blocks): retries-on success {:.0%} "
          "(digest_equal={})  retries-off success {:.0%}  "
          "p95 {:.3f}s vs fault-free {:.3f}s ({}x)".format(
              storm["requests"], storm["blocks_per_request"],
              storm["with_retries"]["success_rate"],
              storm["with_retries"]["digest_equal"],
              storm["without_retries"]["success_rate"],
              storm["with_retries"]["p95_s"], storm["fault_free"]["p95_s"],
              storm["p95_overhead"]))
    print("wrote {}".format(args.out))

    if not report["all_identical"]:
        print("ERROR: loaded/served output does not match the in-process fit")
        return 1
    if (process["scaling_asserted"]
            and process["scaling_4w_over_1w"] < process["scaling_margin"]):
        print("ERROR: 4-worker throughput only {}x of 1-worker "
              "(margin {}x, {} cores)".format(
                  process["scaling_4w_over_1w"], process["scaling_margin"],
                  process["cpu_count"]))
        return 1
    if not streaming["within_memory_bound"]:
        print("ERROR: streaming allocation peak grew more than {}x on a 4x "
              "larger table: {}".format(
                  streaming["growth_bound"],
                  {engine: entry["peak_growth_4x"]
                   for engine, entry in streaming["engines"].items()}))
        return 1
    if not lane_cap["within_bound"]:
        print("ERROR: capping the engine batch at the block size left the "
              "small-block allocation peak at x{} of the uncapped path "
              "(bound x{})".format(lane_cap["peak_ratio"], lane_cap["bound"]))
        return 1
    if not (single["success"] and single["digest_equal"]):
        print("ERROR: the chaos single request must survive the crash storm "
              "with a byte-identical table (success={}, digest_equal={})".format(
                  single["success"], single["digest_equal"]))
        return 1
    if (observability["overhead_ratio"] is None
            or observability["overhead_ratio"] > args.trace_overhead_bound):
        print("ERROR: enabled tracing costs x{} of the untraced run "
              "(bound x{})".format(observability["overhead_ratio"],
                                   args.trace_overhead_bound))
        return 1
    if not observability["identical_output"]:
        print("ERROR: tracing changed the sampled output")
        return 1
    if observability["schema_errors"]:
        print("ERROR: captured spans violate the documented schema: {}".format(
            observability["schema_errors"][:3]))
        return 1
    if observability["spans_captured"] == 0:
        print("ERROR: enabled tracing captured no spans")
        return 1
    if storm["with_retries"]["success_rate"] < 1.0 or not storm["with_retries"]["digest_equal"]:
        print("ERROR: the retries-on crash storm must reach 100% success with "
              "byte-identical output (success_rate={}, digest_equal={})".format(
                  storm["with_retries"]["success_rate"],
                  storm["with_retries"]["digest_equal"]))
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
