"""Artifact-store + serving benchmark.

Measures the three things the train-once / serve-many split buys:

* **save/load latency** — persisting a fitted GReaTER pipeline as a bundle
  and loading it back;
* **cold start vs retrain** — ``load + sample`` in a fresh synthesizer
  state against ``fit + sample`` from scratch, with a hard assertion that
  the loaded pipeline produces the **byte-identical** synthetic flat table
  (CSV bytes compared) for the same seed, on both the ``object`` and
  ``compiled`` engines;
* **serving throughput** — block-sharded ``sample_table`` requests through
  :class:`repro.serving.SynthesisService` at 1/2/4 shards, asserting every
  shard count yields the identical table.

Usage::

    PYTHONPATH=src python -m benchmarks.perf.bench_store
    PYTHONPATH=src python -m benchmarks.perf.bench_store --smoke   # CI-sized

The report lands in ``BENCH_store.json``; the process exits non-zero on any
load/sample or shard mismatch (CI runs ``--smoke`` and fails on mismatch).
"""

from __future__ import annotations

import argparse
import io
import json
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.connecting.connector import ConnectorConfig
from repro.datasets.digix import DigixConfig, generate_digix_like
from repro.enhancement.enhancer import EnhancerConfig
from repro.frame.table import Table
from repro.pipelines.base import FittedPipeline
from repro.pipelines.config import PipelineConfig
from repro.pipelines.greater import GReaTERPipeline
from repro.serving import ServingConfig, SynthesisService
from repro.store.bundle import load_fitted_pipeline

SHARD_COUNTS = (1, 2, 4)


def _trial(n_users: int, seed: int):
    dataset = generate_digix_like(DigixConfig(
        n_tasks=1,
        n_users_per_task=n_users,
        ads_rows_per_user=(2, 4),
        feeds_rows_per_user=(2, 4),
        seed=seed,
    ))
    return dataset.trials()[0]


def _pipeline_config(seed: int, engine: str) -> PipelineConfig:
    return PipelineConfig(
        seed=seed,
        drop_columns=("task_id",),
        enhancer=EnhancerConfig(semantic_level="understandability", seed=seed),
        connector=ConnectorConfig(remove_noisy_columns=False),
        generation_engine=engine,
        training_engine=engine,
    )


def _csv_bytes(table: Table) -> bytes:
    """Canonical CSV rendering used for the byte-identity assertions."""
    import csv

    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(table.column_names)
    for row in table.iter_rows():
        writer.writerow(["" if row[name] is None else row[name] for name in table.column_names])
    return buffer.getvalue().encode("utf-8")


def run(n_users: int, n_sample: int, requests: int, seed: int = 7) -> dict:
    trial = _trial(n_users, seed)
    workdir = Path(tempfile.mkdtemp(prefix="bench_store_"))
    report: dict = {"n_users": n_users, "n_sample": n_sample, "seed": seed,
                    "numpy_version": np.__version__}

    # -- cold start vs retrain, byte identity, both engines ---------------------------
    # "cold start" is time-to-ready-to-serve: loading the bundle instead of
    # retraining from scratch.  The sampled output is then asserted to be
    # byte-identical (CSV bytes) between the retrained and the loaded state.
    engines: dict[str, dict] = {}
    for engine in ("object", "compiled"):
        config = _pipeline_config(seed, engine)
        start = time.perf_counter()
        fitted = GReaTERPipeline(config).fit(trial.ads, trial.feeds)
        fit_s = time.perf_counter() - start
        warm_result = fitted.sample(n_subjects=n_sample, seed=seed + 1)

        bundle_path = workdir / "bundle_{}".format(engine)
        start = time.perf_counter()
        digest = fitted.save(bundle_path)
        save_s = time.perf_counter() - start

        start = time.perf_counter()
        loaded, loaded_digest = load_fitted_pipeline(bundle_path)
        load_s = time.perf_counter() - start

        start = time.perf_counter()
        cold_result = loaded.sample(n_subjects=n_sample, seed=seed + 1)
        first_sample_s = time.perf_counter() - start

        identical = (_csv_bytes(cold_result.synthetic_flat)
                     == _csv_bytes(warm_result.synthetic_flat)
                     and cold_result.synthetic_parent == warm_result.synthetic_parent
                     and cold_result.synthetic_child == warm_result.synthetic_child)
        engines[engine] = {
            "digest": digest[:12],
            "digest_stable": digest == loaded_digest,
            "save_s": round(save_s, 6),
            "load_s": round(load_s, 6),
            "retrain_s": round(fit_s, 6),
            "first_sample_s": round(first_sample_s, 6),
            "cold_start_speedup": round(fit_s / load_s, 2) if load_s > 0 else float("inf"),
            "identical_output": identical,
            "synthetic_rows": warm_result.synthetic_flat.num_rows,
        }
    report["engines"] = engines

    # -- serving throughput at several shard counts -----------------------------------
    bundle_path = workdir / "bundle_compiled"
    serving: list[dict] = []
    reference: list[Table] | None = None
    for shards in SHARD_COUNTS:
        service = SynthesisService.from_bundle(bundle_path, ServingConfig(
            shards=shards, block_size=max(8, n_sample // 8), cache_bytes=0))
        start = time.perf_counter()
        tables = [service.sample_table(n_sample, seed=seed + index)
                  for index in range(requests)]
        elapsed = time.perf_counter() - start
        if reference is None:
            reference = tables
        identical = all(a == b for a, b in zip(tables, reference))
        total_rows = sum(table.num_rows for table in tables)
        serving.append({
            "shards": shards,
            "requests": requests,
            "seconds": round(elapsed, 6),
            "requests_per_s": round(requests / elapsed, 3) if elapsed > 0 else float("inf"),
            "rows_per_s": round(total_rows / elapsed, 1) if elapsed > 0 else float("inf"),
            "identical_across_shards": identical,
        })
    report["serving"] = serving

    # -- coalesced conditioned-row serving ----------------------------------------------
    service = SynthesisService.from_bundle(bundle_path, ServingConfig(cache_bytes=0))
    row_requests = [service._normalize_request(max(4, n_sample // 8), None, seed + index)
                    for index in range(requests)]
    start = time.perf_counter()
    merged = service.sample_rows_many(row_requests)
    merged_s = time.perf_counter() - start
    start = time.perf_counter()
    solo = [service.sample_rows_many([request])[0] for request in row_requests]
    solo_s = time.perf_counter() - start
    report["coalescing"] = {
        "requests": len(row_requests),
        "rows_per_request": row_requests[0].n,
        "merged_s": round(merged_s, 6),
        "solo_s": round(solo_s, 6),
        "coalescing_speedup": round(solo_s / merged_s, 2) if merged_s > 0 else float("inf"),
        "identical_output": all(a == b for a, b in zip(merged, solo)),
    }

    report["all_identical"] = (
        all(entry["identical_output"] for entry in engines.values())
        and all(entry["identical_across_shards"] for entry in serving)
        and report["coalescing"]["identical_output"]
    )
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark the artifact store and the synthesis serving layer."
    )
    parser.add_argument("--users", type=int, default=48,
                        help="users in the training trial (default 48)")
    parser.add_argument("--sample", type=int, default=96,
                        help="synthetic subjects per sampling request (default 96)")
    parser.add_argument("--requests", type=int, default=4,
                        help="serving requests per shard count (default 4)")
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run (8 users, 16 subjects)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--out", type=Path, default=Path("BENCH_store.json"),
                        help="output JSON path (default ./BENCH_store.json)")
    args = parser.parse_args(argv)

    if args.smoke:
        users, sample, requests = 8, 16, 2
    else:
        users, sample, requests = args.users, args.sample, args.requests
    report = run(users, sample, requests, seed=args.seed)
    report["mode"] = "smoke" if args.smoke else "full"
    args.out.write_text(json.dumps(report, indent=2) + "\n")

    for engine, entry in report["engines"].items():
        print("{:9s} save {:>8.3f}s  load {:>8.3f}s  retrain {:>8.3f}s  "
              "cold-start speedup {:>8.2f}x  identical={}".format(
                  engine, entry["save_s"], entry["load_s"], entry["retrain_s"],
                  entry["cold_start_speedup"], entry["identical_output"]))
    for entry in report["serving"]:
        print("serving shards={:d}  {:>8.3f}s  {:>8.1f} rows/s  identical={}".format(
            entry["shards"], entry["seconds"], entry["rows_per_s"],
            entry["identical_across_shards"]))
    coalescing = report["coalescing"]
    print("coalescing {} requests: merged {:.3f}s vs solo {:.3f}s ({}x)  identical={}".format(
        coalescing["requests"], coalescing["merged_s"], coalescing["solo_s"],
        coalescing["coalescing_speedup"], coalescing["identical_output"]))
    print("wrote {}".format(args.out))

    if not report["all_identical"]:
        print("ERROR: loaded/served output does not match the in-process fit")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
