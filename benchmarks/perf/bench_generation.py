"""Before/after timings for the batched generation engine.

Runs the synthesis hot paths twice — once with the legacy object-walk engine,
once with the compiled CSR engine — asserts that both produce **identical
tables for identical seeds** (the engines share one RNG protocol and compute
bit-identical mass matrices, so the outputs must match exactly, not just
statistically), and records the timings to ``BENCH_generation.json``.

Usage::

    PYTHONPATH=src python -m benchmarks.perf.bench_generation --rows 50000
    PYTHONPATH=src python -m benchmarks.perf.bench_generation --smoke   # CI-sized

The ``speedup`` column is object-engine time divided by compiled-engine time;
the acceptance bar for the refactor is >=10x on the 50k-row guided sampling
path (the default strategy every pipeline uses).
"""

from __future__ import annotations

import argparse
import json
import random
import time
from pathlib import Path

import numpy as np

from repro.frame.table import Table
from repro.great.synthesizer import GReaTConfig, GReaTSynthesizer
from repro.llm.finetune import FineTuneConfig
from repro.llm.ngram_model import ModelConfig
from repro.llm.sampler import SamplerConfig
from repro.relational.parent_child import ParentChildConfig, ParentChildSynthesizer

#: The benchmark counted toward the >=10x acceptance bar.
TARGET_PATH = "guided_sample"

_CITIES = ["austin", "boston", "denver", "seattle", "miami", "portland",
           "chicago", "phoenix", "atlanta", "nashville", "tucson", "omaha"]
_DEVICES = ["phone", "tablet", "desktop", "watch", "console", "kiosk"]
_GENRES = ["country", "rock", "folk", "grunge", "jazz", "blues", "pop", "metal"]


def _training_table(n_rows: int, seed: int) -> Table:
    """A mixed categorical/int table with realistic per-column cardinalities."""
    rng = random.Random(seed)
    names = ["person_{}".format(i) for i in range(40)]
    return Table({
        "name": [rng.choice(names) for _ in range(n_rows)],
        "city": [rng.choice(_CITIES) for _ in range(n_rows)],
        "device": [rng.choice(_DEVICES) for _ in range(n_rows)],
        "genre": [rng.choice(_GENRES) for _ in range(n_rows)],
        "clicks": [rng.randrange(30) for _ in range(n_rows)],
        "rating": [rng.randrange(1, 6) for _ in range(n_rows)],
    })


def _parent_child_tables(n_subjects: int, seed: int) -> tuple[Table, Table]:
    rng = random.Random(seed)
    subjects = ["user_{}".format(i) for i in range(n_subjects)]
    parent = Table({
        "user_id": subjects,
        "city": [rng.choice(_CITIES) for _ in subjects],
        "device": [rng.choice(_DEVICES) for _ in subjects],
    })
    child_records = []
    for subject in subjects:
        for _ in range(rng.randrange(1, 4)):
            child_records.append({
                "user_id": subject,
                "genre": rng.choice(_GENRES),
                "clicks": rng.randrange(30),
            })
    return parent, Table.from_records(child_records,
                                      columns=["user_id", "genre", "clicks"])


def _backbone(engine: str, strategy: str, seed: int) -> GReaTConfig:
    model = ModelConfig(order=6, smoothing=0.005,
                        interpolation=(0.42, 0.24, 0.14, 0.1, 0.06, 0.04))
    fine_tune = FineTuneConfig(epochs=3, batches=3, seed=seed, model=model)
    sampler = SamplerConfig(temperature=0.85, top_k=12, seed=seed, engine=engine)
    return GReaTConfig(fine_tune=fine_tune, sampler=sampler,
                       sampling_strategy=strategy, seed=seed)


# -- benchmark bodies: each returns (timed_callable, result_to_compare) -------------

def bench_guided_sample(engine: str, rows: int, seed: int):
    synth = GReaTSynthesizer(_backbone(engine, "guided", seed))
    synth.fit(_training_table(400, seed))
    return lambda: synth.sample(rows, seed=seed + 1).to_records()


def bench_free_sample(engine: str, rows: int, seed: int):
    synth = GReaTSynthesizer(_backbone(engine, "free", seed))
    synth.fit(_training_table(400, seed))
    n = max(rows // 10, 1)  # free generation retries internally; keep runtime sane
    return lambda: synth.sample(n, seed=seed + 1).to_records()


def bench_parent_child_sample(engine: str, rows: int, seed: int):
    parent, child = _parent_child_tables(200, seed)
    config = ParentChildConfig(parent=_backbone(engine, "guided", seed),
                               child=_backbone(engine, "guided", seed), seed=seed)
    synth = ParentChildSynthesizer(config).fit(parent, child, "user_id")
    n_parents = max(rows // 20, 1)  # ~2 children per parent on average
    def body():
        parent_table, child_table, flat = synth.sample_all(n_parents, seed=seed + 1)
        return parent_table.to_records() + child_table.to_records() + flat.to_records()
    return body


BENCHMARKS = [
    ("guided_sample", bench_guided_sample),
    ("free_sample", bench_free_sample),
    ("parent_child_sample", bench_parent_child_sample),
]


def run(rows: int, seed: int = 7, repeats: int = 1) -> dict:
    """Run every benchmark on both engines and return the report dict."""
    results: dict[str, dict] = {}
    outputs: dict[str, dict] = {"object": {}, "compiled": {}}
    timings: dict[str, dict] = {"object": {}, "compiled": {}}

    for engine in ("object", "compiled"):
        for name, build in BENCHMARKS:
            body = build(engine, rows, seed)
            best = float("inf")
            for _ in range(max(repeats, 1)):
                start = time.perf_counter()
                outputs[engine][name] = body()
                best = min(best, time.perf_counter() - start)
            timings[engine][name] = best

    for name, _ in BENCHMARKS:
        identical = outputs["object"][name] == outputs["compiled"][name]
        object_s = timings["object"][name]
        compiled_s = timings["compiled"][name]
        results[name] = {
            "object_s": round(object_s, 6),
            "compiled_s": round(compiled_s, 6),
            "speedup": round(object_s / compiled_s, 2) if compiled_s > 0 else float("inf"),
            "identical_output": identical,
            "generated_rows": len(outputs["compiled"][name]),
        }

    return {
        "rows": rows,
        "seed": seed,
        "numpy_version": np.__version__,
        "benchmarks": results,
        "all_identical": all(entry["identical_output"] for entry in results.values()),
        "target_path": TARGET_PATH,
        "meets_10x_target": results[TARGET_PATH]["speedup"] >= 10.0,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark the object vs compiled generation engines."
    )
    parser.add_argument("--rows", type=int, default=50_000,
                        help="rows generated by the guided-sampling path (default 50000)")
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run (500 rows, no speedup requirement)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--repeats", type=int, default=1,
                        help="timing repetitions per benchmark (best-of)")
    parser.add_argument("--out", type=Path, default=Path("BENCH_generation.json"),
                        help="output JSON path (default ./BENCH_generation.json)")
    args = parser.parse_args(argv)

    rows = 500 if args.smoke else args.rows
    report = run(rows, seed=args.seed, repeats=args.repeats)
    report["mode"] = "smoke" if args.smoke else "full"
    args.out.write_text(json.dumps(report, indent=2) + "\n")

    width = max(len(name) for name, _ in BENCHMARKS)
    print(f"rows={rows}  (object vs compiled generation engine)")
    for name, _ in BENCHMARKS:
        entry = report["benchmarks"][name]
        flag = "*" if name == TARGET_PATH else " "
        print("{}{:<{width}}  object {:>9.3f}s  compiled {:>9.3f}s  speedup {:>7.2f}x  identical={}".format(
            flag, name, entry["object_s"], entry["compiled_s"], entry["speedup"],
            entry["identical_output"], width=width,
        ))
    print("wrote {}".format(args.out))

    if not report["all_identical"]:
        print("ERROR: engines disagree on at least one generated table")
        return 1
    if not args.smoke and not report["meets_10x_target"]:
        print("ERROR: the guided sampling path did not reach the 10x target")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
